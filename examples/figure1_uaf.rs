//! The paper's motivating example (Fig. 1/2): an inter-procedural
//! use-after-free hidden behind pointer indirection, calling contexts,
//! and path conditions.
//!
//! `bar` stores a freshly freed pointer `c` into the caller's cell
//! `*ptr` (under condition θ₃); `foo` reloads it as `f` and dereferences
//! it at `print(*f)` (under θ₂), but only on the θ₁ branch that called
//! `bar` in the first place. The holistic analysis finds exactly one
//! value-flow path — ⟨free(c), c, Y, return Y, L, f, print(*f)⟩ in the
//! paper's notation — and proves its condition θ₁ ∧ θ₃ ∧ θ₂ satisfiable,
//! while the alternative flow through `qux` is never explored.
//!
//! ```sh
//! cargo run --example figure1_uaf
//! ```

use pinpoint::{AnalysisBuilder, CheckerKind};

const FIGURE1: &str = r#"
    global gb: int;

    fn foo(a: int*) {
        let ptr: int** = malloc();
        *ptr = a;
        if (nondet_bool()) {      // theta1
            bar(ptr);
        } else {
            qux(ptr);
        }
        let f: int* = *ptr;
        if (nondet_bool()) {      // theta2
            print(*f);
        }
        return;
    }

    fn bar(q: int**) {
        let c: int* = malloc();
        let t3: bool = *q != null;  // theta3
        if (t3) {
            *q = c;
            free(c);
        } else {
            if (nondet_bool()) {    // theta4
                *q = gb;
            }
        }
        return;
    }

    fn qux(r: int**) {
        if (nondet_bool()) {        // theta5
            *r = null;
        } else {
            *r = null;
        }
        return;
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let analysis = AnalysisBuilder::new().build_source(FIGURE1)?;

    // The connector model at work: bar reads and writes *(q,1), so the
    // Fig. 3 transformation gave it an Aux formal parameter (X) and an
    // Aux return value (Y); foo's call site was rewritten to
    //   K = *ptr; {L} = bar(ptr, K); *ptr = L;
    let bar = analysis.module.func_by_name("bar").expect("bar exists");
    let shape = analysis.pta.shape(bar);
    println!(
        "bar's connectors: {} Aux formal parameter(s), {} Aux return value(s)",
        shape.aux_params.len(),
        shape.aux_rets.len()
    );

    let reports = analysis.check(CheckerKind::UseAfterFree);
    println!("\nuse-after-free reports: {}", reports.len());
    for r in &reports {
        println!("  {r}");
        println!(
            "  source in `{}`, sink in `{}`, path of {} steps, {} conjuncts solved",
            analysis.module.func(r.source_func).name,
            analysis.module.func(r.sink_func).name,
            r.path.len(),
            r.condition_size,
        );
    }

    assert_eq!(reports.len(), 1, "exactly the Fig. 1 bug");
    println!(
        "\nquasi path-sensitive pruning at the points-to stage: {} facts pruned, {} kept",
        analysis.stats.pta.pruned, analysis.stats.pta.kept
    );
    Ok(())
}
