//! Taint checking (§4.1): path-traversal and data-transmission defects
//! modelled as value-flow paths, on a small "server" scenario.
//!
//! ```sh
//! cargo run --example taint_analysis
//! ```

use pinpoint::{AnalysisBuilder, CheckerKind};

const SERVER: &str = r#"
    // A request handler: reads a path component from the network,
    // normalises it, and opens the file — a path-traversal defect
    // (CWE-23) unless validation intervenes. A second endpoint leaks
    // the stored credential over the wire (CWE-402).

    fn read_request() -> int {
        let raw: int = recv();
        let trimmed: int = raw - 32;
        return trimmed;
    }

    fn serve_file() {
        let component: int = read_request();
        // BUG: untrusted data reaches fopen through two calls and
        // an arithmetic transformation.
        let handle: int = fopen(component + 1);
        print(handle);
        return;
    }

    fn telemetry(debug: bool) {
        let secret: int = getpass();
        let masked: int = 0;
        if (debug) {
            masked = secret;
        }
        if (debug) {
            // BUG: the credential escapes when debug is on.
            sendto(masked);
        }
        return;
    }

    fn telemetry_safe(debug: bool) {
        let secret: int = getpass();
        let masked: int = 0;
        if (debug) {
            masked = secret;
        }
        if (!debug) {
            // Infeasible: masked is never the secret here. The SMT
            // solver refutes debug ∧ ¬debug.
            sendto(masked);
        }
        return;
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let analysis = AnalysisBuilder::new().build_source(SERVER)?;
    let mut session = analysis.session();

    let pt = session.check(CheckerKind::PathTraversal);
    println!("path-traversal reports: {}", pt.len());
    for r in &pt {
        println!("  {r}");
    }
    assert_eq!(pt.len(), 1, "recv → fopen across two functions");

    let dt = session.check(CheckerKind::DataTransmission);
    println!("\ndata-transmission reports: {}", dt.len());
    for r in &dt {
        println!("  {r}");
    }
    assert_eq!(
        dt.len(),
        1,
        "only the feasible leak; telemetry_safe's flow is refuted"
    );

    println!(
        "\nSMT refuted {} infeasible candidate(s) — that is the path \
         sensitivity a layered checker gives up",
        session.stats().detect.refuted
    );
    Ok(())
}
