//! Memory-leak hunting on a small resource-manager scenario, showing the
//! two report grades (never-freed and conditionally-freed) and the SMT
//! witness on the conditional one.
//!
//! ```sh
//! cargo run --example leak_hunting
//! ```

use pinpoint::core::LeakKind;
use pinpoint::AnalysisBuilder;

const MANAGER: &str = r#"
    // A connection manager: sessions are pooled, buffers are scratch.

    fn open_session() -> int* {
        let s: int* = malloc();
        return s;
    }

    fn close_session(s: int*) {
        free(s);
        return;
    }

    fn handle(keepalive: bool) {
        let s: int* = malloc();
        *s = 1;
        // LEAK (conditional): a kept-alive session is never released —
        // the "keepalive cache" was never implemented. (The free must be
        // local to the allocating function for the SMT-refined grade;
        // cross-function ownership like open/close_session below is
        // handled by the reachability grade only.)
        if (!keepalive) {
            free(s);
        }
        return;
    }

    fn render() {
        // LEAK (never freed): the scratch buffer has no free anywhere.
        let scratch: int* = malloc();
        *scratch = 0;
        let v: int = *scratch;
        print(v);
        return;
    }

    fn roundtrip() {
        // Not a leak: allocated through the pool API, used, released —
        // the traversal follows the pointer out of open_session's return
        // and into close_session's free.
        let tmp: int* = open_session();
        *tmp = 7;
        close_session(tmp);
        return;
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let analysis = AnalysisBuilder::new().build_source(MANAGER)?;
    let leaks = analysis.check_leaks();

    println!("{} leak(s) found:\n", leaks.len());
    for l in &leaks {
        let f = analysis.module.func(l.func);
        match l.kind {
            LeakKind::NeverFreed => {
                println!(
                    "  [never freed] allocation at {} in `{}`",
                    l.alloc_site, f.name
                );
            }
            LeakKind::ConditionallyFreed => {
                let witness: Vec<String> = l
                    .witness
                    .iter()
                    .map(|(n, v)| format!("{n} = {v}"))
                    .collect();
                println!(
                    "  [conditionally freed] allocation at {} in `{}` — leaks when {}",
                    l.alloc_site,
                    f.name,
                    witness.join(", ")
                );
            }
        }
    }

    assert_eq!(leaks.len(), 2, "{leaks:?}");
    assert!(leaks.iter().any(|l| l.kind == LeakKind::NeverFreed));
    let conditional = leaks
        .iter()
        .find(|l| l.kind == LeakKind::ConditionallyFreed)
        .expect("the keepalive leak");
    assert!(
        conditional
            .witness
            .iter()
            .any(|(n, v)| n.ends_with(":keepalive") && *v),
        "the witness pins keepalive = true: {:?}",
        conditional.witness
    );
    println!("\nroundtrip's pooled session is correctly silent: the traversal");
    println!("follows the pointer out of open_session's return and into");
    println!("close_session's free before deciding anything.");
    Ok(())
}
