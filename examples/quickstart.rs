//! Quick start: compile a small program and run every checker.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pinpoint::{Analysis, CheckerKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        // A tiny session handler with two defects: a use-after-free of
        // the connection buffer, and tainted user input reaching fopen.
        fn main() {
            let buf: int* = malloc();
            handle(buf);
            return;
        }

        fn handle(buf: int*) {
            let n: int = fgetc();
            if (n < 0) {
                free(buf);
            }
            // Bug 1: buf may already be freed here.
            *buf = n;

            // Bug 2: untrusted n flows into a file open.
            let h: int = fopen(n);
            print(h);
            return;
        }
    "#;

    let mut analysis = Analysis::from_source(source)?;
    println!(
        "analysed {} functions / {} instructions ({} SEG edges, {} terms)\n",
        analysis.module.funcs.len(),
        analysis.module.inst_count(),
        analysis.stats.seg_edges,
        analysis.stats.terms,
    );

    for kind in CheckerKind::ALL {
        let reports = analysis.check(kind);
        println!("{kind}: {} report(s)", reports.len());
        for r in &reports {
            println!("  {}", r.describe(&analysis.module));
        }
    }

    println!(
        "\nsearch: {} vertices visited, {} candidates, {} refuted by SMT",
        analysis.stats.detect.visited,
        analysis.stats.detect.candidates,
        analysis.stats.detect.refuted,
    );
    Ok(())
}
