//! Quick start: compile a small program and run every checker.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pinpoint::{AnalysisBuilder, CheckerKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        // A tiny session handler with two defects: a use-after-free of
        // the connection buffer, and tainted user input reaching fopen.
        fn main() {
            let buf: int* = malloc();
            handle(buf);
            return;
        }

        fn handle(buf: int*) {
            let n: int = fgetc();
            if (n < 0) {
                free(buf);
            }
            // Bug 1: buf may already be freed here.
            *buf = n;

            // Bug 2: untrusted n flows into a file open.
            let h: int = fopen(n);
            print(h);
            return;
        }
    "#;

    // The builder configures the pipeline (worker count, solver budgets,
    // checker selection); the artefact it produces is immutable and
    // queried through `&self`.
    let analysis = AnalysisBuilder::new().build_source(source)?;
    println!(
        "analysed {} functions / {} instructions ({} SEG edges, {} terms)\n",
        analysis.module.funcs.len(),
        analysis.module.inst_count(),
        analysis.stats.seg_edges,
        analysis.stats.terms,
    );

    // Per-query scratch state lives on a session, which also accumulates
    // detection statistics across the checkers it runs.
    let mut session = analysis.session();
    for kind in CheckerKind::ALL {
        let reports = session.check(kind);
        println!("{kind}: {} report(s)", reports.len());
        for r in &reports {
            println!("  {r}"); // reports are self-describing
        }
    }

    let stats = session.stats();
    println!(
        "\nsearch: {} vertices visited, {} candidates, {} refuted by SMT",
        stats.detect.visited, stats.detect.candidates, stats.detect.refuted,
    );
    Ok(())
}
