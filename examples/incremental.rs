//! Incremental re-analysis: edit one function, pay for one caller chain.
//!
//! The paper frames its performance target against the industrial
//! requirement of checking millions of lines within hours; day-to-day,
//! that only works if a one-function edit does not re-run the whole
//! pipeline. Pinpoint's bottom-up architecture makes the dependency
//! structure explicit: a function's analysis depends on its own IR and
//! its callees' connector shapes — so an edit dirties exactly its
//! transitive caller chain.
//!
//! ```sh
//! cargo run --release --example incremental
//! ```

use pinpoint::workload::{generate, GenConfig};
use pinpoint::{Analysis, CheckerKind};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let project = generate(&GenConfig {
        seed: 5,
        real_bugs: 2,
        decoys: 2,
        taint: false,
        ..GenConfig::default().with_target_kloc(20.0)
    });
    println!(
        "project: {} lines, {} functions",
        project.lines,
        project.source.matches("fn ").count()
    );

    // Full analysis.
    let t0 = Instant::now();
    let mut analysis = Analysis::from_source(&project.source)?;
    let full_time = t0.elapsed();
    let baseline: usize = analysis.check(CheckerKind::UseAfterFree).len();
    println!("full analysis: {full_time:?}, {baseline} reports");

    // Edit one leaf-ish filler function.
    let edited = {
        let needle = "fn filler1(";
        let start = project.source.find(needle).expect("filler1 exists");
        let brace = project.source[start..].find('{').unwrap() + start + 1;
        format!(
            "{}\n    let hotfix: int = 1;\n    print(hotfix);{}",
            &project.source[..brace],
            &project.source[brace..]
        )
    };
    let t1 = Instant::now();
    let reanalyzed = analysis.update_incremental(&edited, &["filler1".into()])?;
    let inc_time = t1.elapsed();
    let after = analysis.check(CheckerKind::UseAfterFree).len();
    let total = analysis.module.funcs.len();
    println!(
        "incremental update: {inc_time:?}, {reanalyzed}/{total} functions re-analysed, {after} reports"
    );
    assert_eq!(baseline, after, "verdicts stable across the edit");
    assert!(reanalyzed < total / 4, "most of the project was reused");
    println!(
        "\nend-to-end speedup: ~{:.1}x (the floor is re-lowering the edited\n\
         source text; the analysis stages themselves — points-to,\n\
         transformation, SEG construction — ran for {}/{} functions only)",
        full_time.as_secs_f64() / inc_time.as_secs_f64().max(1e-9),
        reanalyzed,
        total
    );
    Ok(())
}
