//! Incremental re-analysis: edit one function, pay for one caller chain.
//!
//! The paper frames its performance target against the industrial
//! requirement of checking millions of lines within hours; day-to-day,
//! that only works if a one-function edit does not re-run the whole
//! pipeline. Pinpoint's bottom-up architecture makes the dependency
//! structure explicit: a function's analysis depends on its own IR and
//! its callees' connector shapes — so an edit dirties exactly its
//! transitive caller chain.
//!
//! Two mechanisms deliver that, demonstrated below:
//!
//! 1. **in-process** — a long-lived [`Workspace`] accepts edits, detects
//!    what changed by diffing content fingerprints, splices the clean
//!    functions' artefacts, and re-answers checks reusing every cached
//!    per-source query whose *cone* (the set of functions its search
//!    visited) the edit did not touch;
//! 2. **cross-run** — [`AnalysisBuilder::cache_dir`] persists
//!    per-function artifacts keyed by content fingerprints, so even a
//!    fresh process re-analyzes only what changed.
//!
//! ```sh
//! cargo run --release --example incremental
//! ```

use pinpoint::workload::{generate, GenConfig};
use pinpoint::{AnalysisBuilder, CheckerKind, Query, Workspace};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let project = generate(&GenConfig {
        seed: 5,
        real_bugs: 2,
        decoys: 2,
        taint: false,
        ..GenConfig::default().with_target_kloc(20.0)
    });
    println!(
        "project: {} lines, {} functions",
        project.lines,
        project.source.matches("fn ").count()
    );

    // Open a workspace: full analysis once, then live across edits.
    let t0 = Instant::now();
    let mut ws = Workspace::open(&project.source)?;
    let full_time = t0.elapsed();
    let uaf = Query::Check(CheckerKind::UseAfterFree);
    let baseline: usize = ws.query(&uaf).len();
    println!("cold open + check: {full_time:?}, {baseline} reports");

    // Edit one leaf-ish filler function.
    let edited = {
        let needle = "fn filler1(";
        let start = project.source.find(needle).expect("filler1 exists");
        let brace = project.source[start..].find('{').unwrap() + start + 1;
        format!(
            "{}\n    let hotfix: int = 1;\n    print(hotfix);{}",
            &project.source[..brace],
            &project.source[brace..]
        )
    };
    let t1 = Instant::now();
    // No need to say what changed: the workspace diffs per-function
    // fingerprints and dirties exactly the edit's caller chain.
    let outcome = ws.update_source(&edited)?;
    let after = ws.query(&uaf).len();
    let warm_time = t1.elapsed();
    let total = ws.analysis().module.funcs.len();
    let c = ws.counters();
    println!(
        "warm update + check: {warm_time:?}, {}/{total} functions re-analysed, \
         {}/{} source queries answered from cache, {after} reports",
        outcome.reanalyzed,
        c.queries_reused,
        c.queries_reused + c.queries_rerun,
    );
    assert_eq!(baseline, after, "verdicts stable across the edit");
    assert!(outcome.reanalyzed < total / 4, "most of the project reused");
    assert!(c.queries_reused > 0, "warm check replayed cached queries");
    println!(
        "\nend-to-end speedup: ~{:.1}x (the floor is re-lowering the edited\n\
         source text; the analysis stages themselves — points-to,\n\
         transformation, SEG construction — ran for {}/{} functions only)",
        full_time.as_secs_f64() / warm_time.as_secs_f64().max(1e-9),
        outcome.reanalyzed,
        total
    );

    // The same reuse across *runs*: a persistent cache keyed by content
    // fingerprints. The first build populates it; a later build (here,
    // of the edited source — imagine a fresh process after the edit)
    // loads every clean function's artifacts from disk.
    let dir = std::env::temp_dir().join(format!("pinpoint-example-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let t2 = Instant::now();
    let cold = AnalysisBuilder::new()
        .cache_dir(&dir)
        .build_source(&project.source)?;
    let populate_time = t2.elapsed();
    let t3 = Instant::now();
    let warm = AnalysisBuilder::new()
        .cache_dir(&dir)
        .build_source(&edited)?;
    let warm_time = t3.elapsed();
    let c = warm.stats.cache;
    println!(
        "\npersistent cache ({}):\n  populate run: {populate_time:?} ({} artifacts stored)\n  \
         warm run after the edit: {warm_time:?} — {} hits, {} misses ({:.1}% reuse)",
        dir.display(),
        cold.stats.cache.misses,
        c.hits,
        c.misses,
        100.0 * c.hits as f64 / (c.hits + c.misses) as f64,
    );
    assert_eq!(
        warm.check(CheckerKind::UseAfterFree).len(),
        baseline,
        "warm verdicts identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
