//! Defining a project-specific checker (§4.1: "we have been continuously
//! adding checkers … problems that can be modeled as value-flow paths are
//! straightforward to solve").
//!
//! Here the "project" has its own API: `read_form` returns untrusted form
//! data, `db_exec` runs a query. Untrusted data reaching the query engine
//! is an injection defect — a value-flow property Pinpoint checks with
//! the same machinery as the built-ins, including path sensitivity.
//!
//! ```sh
//! cargo run --example custom_checker
//! ```

use pinpoint::core::spec::{SinkSpec, SourceSpec, Spec};
use pinpoint::AnalysisBuilder;

const APP: &str = r#"
    // The project's own API surface (ordinary functions).
    fn read_form() -> int {
        let raw: int = recv();
        return raw;
    }

    fn db_exec(query: int) -> int {
        print(query);
        return 0;
    }

    fn sanitize(v: int) -> int {
        // Not modelled as cleansing (matching the paper's taint
        // checkers, which skip sanitizer modelling) — it is just a
        // function the value flows through.
        return v + 1;
    }

    fn handle_request(admin: bool) {
        let input: int = read_form();
        let cleaned: int = sanitize(input);
        if (admin) {
            // BUG: form data reaches the query engine.
            let r1: int = db_exec(cleaned);
            print(r1);
        }
        return;
    }

    fn handle_static(admin: bool) {
        let input: int = read_form();
        let fixed: int = 42;
        if (!admin) {
            // Safe: only the constant reaches the engine.
            let r2: int = db_exec(fixed);
            print(r2);
        }
        return;
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = Spec {
        name: "form-injection".into(),
        source: SourceSpec::CallReceiver(vec!["read_form".into()]),
        sink: SinkSpec::Calls(vec!["db_exec".into()]),
        traverses_transforms: true,
    };

    let analysis = AnalysisBuilder::new().build_source(APP)?;
    let reports = analysis.check_custom(&spec);

    println!(
        "custom checker `{}`: {} report(s)",
        spec.name,
        reports.len()
    );
    for r in &reports {
        println!("  {r}");
        if !r.witness.is_empty() {
            let w: Vec<String> = r
                .witness
                .iter()
                .map(|(n, v)| format!("{n} = {v}"))
                .collect();
            println!("  witness: {}", w.join(", "));
        }
    }

    assert_eq!(reports.len(), 1, "only the admin path leaks form data");
    assert!(
        reports[0]
            .witness
            .iter()
            .any(|(n, v)| n.ends_with(":admin") && *v),
        "the witness must enable the admin branch"
    );
    Ok(())
}
