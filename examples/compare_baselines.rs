//! Head-to-head on a generated project with ground truth: Pinpoint vs
//! the layered (SVF-style) checker vs the dense per-unit (Infer/CSA-
//! style) checker — a miniature of the paper's Table 1 / Table 3
//! contrast.
//!
//! ```sh
//! cargo run --release --example compare_baselines
//! ```

use pinpoint::baseline::{dense_check, layered_check_uaf, Fsvfg};
use pinpoint::workload::{generate, GenConfig};
use pinpoint::{AnalysisBuilder, CheckerKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let project = generate(&GenConfig {
        seed: 7,
        real_bugs: 3,
        decoys: 3,
        taint: false,
        ..GenConfig::default().with_target_kloc(2.0)
    });
    let real = project.bugs.iter().filter(|b| b.real).count();
    let decoys = project.bugs.len() - real;
    println!(
        "generated project: {} lines, {real} real memory bugs, {decoys} infeasible decoys\n",
        project.lines
    );

    // Pinpoint.
    let analysis = AnalysisBuilder::new().build_source(&project.source)?;
    let reports = analysis.check(CheckerKind::UseAfterFree);
    let hit = |marker: &str| {
        reports.iter().any(|r| {
            analysis.module.func(r.source_func).name.contains(marker)
                || analysis.module.func(r.sink_func).name.contains(marker)
        })
    };
    let found_real = project
        .bugs
        .iter()
        .filter(|b| b.real && hit(&b.marker))
        .count();
    let flagged_decoys = project
        .bugs
        .iter()
        .filter(|b| !b.real && hit(&b.marker))
        .count();
    println!(
        "Pinpoint      : {:>5} reports | {found_real}/{real} real bugs found | {flagged_decoys}/{decoys} decoys flagged",
        reports.len()
    );

    // Layered (Andersen + FSVFG, no conditions).
    let module = pinpoint::compile(&project.source)?;
    let g = Fsvfg::build(&module);
    let layered = layered_check_uaf(&module, &g);
    println!(
        "Layered (SVF) : {:>5} warnings | flow/context/path-insensitive traversal",
        layered.len()
    );

    // Dense per-unit checker.
    let dense = dense_check(&module);
    println!(
        "Dense (CSA)   : {:>5} warnings | per-function only, no path correlation",
        dense.len()
    );

    println!(
        "\nThe shape of the paper's result: Pinpoint reports few, precise \
         findings;\nthe layered checker floods (every decoy and many filler \
         flows);\nthe dense checker is quiet but misses every cross-function bug."
    );
    Ok(())
}
