//! `pinpoint-baseline`: the comparator analyses of the Pinpoint
//! reproduction's evaluation (PLDI 2018, §5).
//!
//! Two baselines are implemented from their published designs:
//!
//! * [`svfg`] — the **layered** sparse value-flow analysis in the style
//!   of SVF: a whole-program, flow- and context-insensitive Andersen
//!   points-to analysis followed by full sparse value-flow graph (FSVFG)
//!   construction and a path-insensitive source–sink traversal. This is
//!   the subject of the Fig. 7–9 scalability comparison and the SVF
//!   column of Table 1.
//! * [`dense`] — a compilation-unit-confined, path-correlation-free
//!   checker standing in for Infer/CSA in the Table 3 comparison: fast,
//!   blind to cross-unit bugs, and noisy on branch-exclusive patterns.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dense;
pub mod svfg;

pub use dense::{check_module as dense_check, DenseWarning};
pub use svfg::{check_uaf as layered_check_uaf, Fsvfg, LayeredWarning};
