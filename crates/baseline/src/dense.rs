//! A compilation-unit-confined, path-correlation-free checker — the
//! stand-in for Infer/CSA in the Table 3 comparison.
//!
//! The paper attributes the speed of those tools to two confinements:
//! they stay within a compilation unit (here: a single function) and do
//! not fully track path correlations. This checker reproduces both
//! properties: it walks each function's blocks in topological order,
//! accumulates the set of may-freed SSA values, and flags any later
//! dereference or re-free of such a value — with no branch conditions
//! consulted and no inter-procedural reasoning at all. The consequences
//! match Table 3: it is very fast, it misses every cross-unit bug, and it
//! reports false positives whenever branch exclusivity matters.

use pinpoint_ir::{intrinsics, Cfg, FuncId, Function, Inst, InstId, Module};
use std::collections::HashSet;

/// A warning of the dense per-unit checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DenseWarning {
    /// The function (compilation unit).
    pub func: FuncId,
    /// The `free` site.
    pub free_site: InstId,
    /// The later use site.
    pub use_site: InstId,
}

/// Runs the dense checker over one function.
pub fn check_function(fid: FuncId, f: &Function) -> Vec<DenseWarning> {
    let cfg = Cfg::new(f);
    let mut freed: HashSet<pinpoint_ir::ValueId> = HashSet::new();
    let mut free_site_of: std::collections::HashMap<pinpoint_ir::ValueId, InstId> =
        std::collections::HashMap::new();
    let mut warnings = Vec::new();
    for b in cfg.topo_order(f.entry()) {
        for (i, inst) in f.block(b).insts.iter().enumerate() {
            let site = InstId {
                block: b,
                index: i as u32,
            };
            match inst {
                Inst::Load { ptr, .. } | Inst::Store { ptr, .. } if freed.contains(ptr) => {
                    warnings.push(DenseWarning {
                        func: fid,
                        free_site: free_site_of[ptr],
                        use_site: site,
                    });
                }
                Inst::Call { callee, args, .. } if callee == intrinsics::FREE => {
                    if let Some(&p) = args.first() {
                        if freed.contains(&p) {
                            warnings.push(DenseWarning {
                                func: fid,
                                free_site: free_site_of[&p],
                                use_site: site,
                            });
                        } else {
                            freed.insert(p);
                            free_site_of.insert(p, site);
                        }
                    }
                }
                _ => {}
            }
        }
    }
    warnings
}

/// Runs the dense checker over every function of a module.
pub fn check_module(module: &Module) -> Vec<DenseWarning> {
    module
        .iter_funcs()
        .flat_map(|(fid, f)| check_function(fid, f))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_ir::compile;

    #[test]
    fn finds_local_uaf() {
        let m = compile(
            "fn main() {
                let p: int* = malloc();
                free(p);
                let x: int = *p;
                print(x);
                return;
            }",
        )
        .unwrap();
        assert_eq!(check_module(&m).len(), 1);
    }

    #[test]
    fn misses_cross_unit_bug() {
        // The Fig. 1 bug spans foo and bar: invisible per-unit.
        let m = compile(
            "fn release(p: int*) { free(p); return; }
             fn main() {
                let p: int* = malloc();
                release(p);
                let x: int = *p;
                print(x);
                return;
             }",
        )
        .unwrap();
        assert!(
            check_module(&m).is_empty(),
            "per-unit confinement misses the cross-function bug"
        );
    }

    #[test]
    fn exclusive_branches_yield_false_positive() {
        // free in one arm, use in the join: topological order visits the
        // free before the use, and no conditions are tracked.
        let m = compile(
            "fn main(c: bool) {
                let p: int* = malloc();
                if (c) { free(p); }
                if (!c) { let x: int = *p; print(x); }
                return;
            }",
        )
        .unwrap();
        assert_eq!(
            check_module(&m).len(),
            1,
            "no path correlation: reports the infeasible pair"
        );
    }

    #[test]
    fn double_free_found_locally() {
        let m = compile(
            "fn main() {
                let p: int* = malloc();
                free(p);
                free(p);
                return;
            }",
        )
        .unwrap();
        assert_eq!(check_module(&m).len(), 1);
    }

    #[test]
    fn clean_function_is_quiet() {
        let m = compile(
            "fn main() {
                let p: int* = malloc();
                let x: int = *p;
                print(x);
                free(p);
                return;
            }",
        )
        .unwrap();
        assert!(check_module(&m).is_empty());
    }
}
