//! The full sparse value-flow graph (FSVFG) of the *layered* design.
//!
//! This is the comparator of the paper's evaluation (§5.1): a whole-
//! program sparse value-flow graph built on top of an independent,
//! flow- and context-insensitive Andersen points-to analysis, in the
//! style of SVF. Memory def-use edges are materialised per abstract
//! object: every store that may write object `o` feeds every load that
//! may read `o`. With an imprecise points-to analysis this is exactly the
//! "pointer trap": spurious points-to facts multiply into spurious
//! value-flow edges, blowing up both construction cost and the number of
//! paths the checker must traverse.

use pinpoint_ir::{intrinsics, FuncId, Inst, InstId, Module, ValueId};
use pinpoint_pta::andersen::{self, Andersen, Node};
use std::collections::HashMap;

/// A vertex of the FSVFG: an SSA value of a function.
pub type Vertex = (FuncId, ValueId);

/// The whole-program sparse value-flow graph.
#[derive(Debug, Default)]
pub struct Fsvfg {
    /// Forward edges.
    pub succs: HashMap<Vertex, Vec<Vertex>>,
    /// Total edge count.
    pub edge_count: usize,
    /// The underlying points-to analysis (kept for accounting).
    pub points_to_facts: usize,
    /// Object → sites that dereference a pointer targeting it: every
    /// level of a k-level load/store chain plus `free` arguments. The
    /// checker needs this object layer because a deep access like
    /// `**w` dereferences *loaded* pointer values that never appear as
    /// SSA vertices of the graph.
    pub deref_sites: HashMap<Node, Vec<(FuncId, InstId)>>,
    /// Every `free` site with the objects its argument may point to.
    pub freed_objects: Vec<(Vertex, InstId, Vec<Node>)>,
}

impl Fsvfg {
    /// Builds the FSVFG of `module` (runs Andersen internally).
    pub fn build(module: &Module) -> Self {
        let pt = andersen::analyze(module);
        Self::build_with(module, &pt)
    }

    /// Like [`Fsvfg::build`], but gives up when `deadline` passes —
    /// reproducing the timeout band of the paper's Fig. 7/8 on large
    /// subjects.
    pub fn build_with_deadline(
        module: &Module,
        deadline: Option<std::time::Instant>,
    ) -> Option<Self> {
        Self::build_within(module, deadline, None)
    }

    /// Like [`Fsvfg::build`], bounded by an optional wall-clock deadline
    /// *and* an optional edge budget. The edge budget models memory
    /// exhaustion: the paper's layered baseline fails some subjects by
    /// blowing past physical memory rather than the time limit.
    pub fn build_within(
        module: &Module,
        deadline: Option<std::time::Instant>,
        max_edges: Option<usize>,
    ) -> Option<Self> {
        let pt = andersen::analyze_with_deadline(module, deadline)?;
        let g = Self::build_bounded(module, &pt, deadline, max_edges)?;
        Some(g)
    }

    /// Builds the FSVFG from a precomputed points-to analysis.
    pub fn build_with(module: &Module, pt: &Andersen) -> Self {
        Self::build_bounded(module, pt, None, None).expect("no bounds set")
    }

    fn build_bounded(
        module: &Module,
        pt: &Andersen,
        deadline: Option<std::time::Instant>,
        max_edges: Option<usize>,
    ) -> Option<Self> {
        let mut g = Fsvfg {
            points_to_facts: pt.fact_count(),
            ..Fsvfg::default()
        };
        // Per-object store/load indexes.
        let mut stores_of: HashMap<Node, Vec<Vertex>> = HashMap::new();
        let mut loads_of: HashMap<Node, Vec<Vertex>> = HashMap::new();
        for (fid, f) in module.iter_funcs() {
            for (site, inst) in f.iter_insts() {
                match inst {
                    Inst::Copy { dst, src } => g.add_edge((fid, *src), (fid, *dst)),
                    Inst::Phi { dst, incomings } => {
                        for &(_, v) in incomings {
                            g.add_edge((fid, v), (fid, *dst));
                        }
                    }
                    Inst::Load { dst, ptr, depth } => {
                        // A k-level load reads a cell at every level of
                        // its chain; value flow into `dst` is attributed
                        // to each read over-approximately.
                        for objs in chain_objects(pt, fid, *ptr, *depth) {
                            for &o in &objs {
                                loads_of.entry(o).or_default().push((fid, *dst));
                                g.deref_sites.entry(o).or_default().push((fid, site));
                            }
                        }
                    }
                    Inst::Store { ptr, src, depth } => {
                        let levels = chain_objects(pt, fid, *ptr, *depth);
                        if let Some(last) = levels.last() {
                            for &o in last {
                                stores_of.entry(o).or_default().push((fid, *src));
                            }
                        }
                        for objs in &levels {
                            for &o in objs {
                                g.deref_sites.entry(o).or_default().push((fid, site));
                            }
                        }
                    }
                    Inst::Call { callee, args, .. } if callee == intrinsics::FREE => {
                        if let Some(&p) = args.first() {
                            let mut objs: Vec<Node> = pt.pt(fid, p).collect();
                            objs.sort_unstable();
                            objs.dedup();
                            for &o in &objs {
                                g.deref_sites.entry(o).or_default().push((fid, site));
                            }
                            g.freed_objects.push(((fid, p), site, objs));
                        }
                    }
                    Inst::Call { dsts, callee, args } => {
                        if intrinsics::is_intrinsic(callee) {
                            continue;
                        }
                        let Some(target) = module.func_by_name(callee) else {
                            continue;
                        };
                        let gfn = module.func(target);
                        for (&a, &p) in args.iter().zip(gfn.params.iter()) {
                            g.add_edge((fid, a), (target, p));
                        }
                        let rets = gfn.return_values();
                        for (&d, &r) in dsts.iter().zip(rets.iter()) {
                            g.add_edge((target, r), (fid, d));
                        }
                    }
                    _ => {}
                }
            }
        }
        // Memory def-use: stores × loads per object. This cross product
        // is where the pointer trap bites: imprecise points-to sets make
        // it quadratic.
        let mut last_checked_edges = 0usize;
        for (o, stores) in &stores_of {
            if let Some(loads) = loads_of.get(o) {
                for &s in stores {
                    if g.edge_count - last_checked_edges >= 65_536 {
                        last_checked_edges = g.edge_count;
                        if let Some(d) = deadline {
                            if std::time::Instant::now() > d {
                                return None;
                            }
                        }
                        if let Some(cap) = max_edges {
                            if g.edge_count > cap {
                                return None; // would exhaust memory
                            }
                        }
                    }
                    for &l in loads {
                        g.add_edge(s, l);
                    }
                }
            }
        }
        for v in g.deref_sites.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        Some(g)
    }

    fn add_edge(&mut self, from: Vertex, to: Vertex) {
        self.succs.entry(from).or_default().push(to);
        self.edge_count += 1;
    }

    /// Successors of a vertex.
    pub fn succs(&self, v: Vertex) -> &[Vertex] {
        self.succs.get(&v).map_or(&[], Vec::as_slice)
    }

    /// Structural memory proxy in bytes.
    pub fn structural_bytes(&self) -> usize {
        self.edge_count * std::mem::size_of::<Vertex>() * 2 + self.points_to_facts * 24
    }
}

/// Objects whose cells are read at each level of dereferencing `ptr`
/// `depth` times: level 1 reads the cells of `pt(ptr)`, level k the
/// cells of the (flow-insensitive) contents of level k−1.
fn chain_objects(pt: &Andersen, f: FuncId, ptr: ValueId, depth: u32) -> Vec<Vec<Node>> {
    let mut cur: Vec<Node> = pt.pt(f, ptr).collect();
    cur.sort_unstable();
    cur.dedup();
    let mut levels = Vec::with_capacity(depth as usize);
    for _ in 0..depth {
        levels.push(cur.clone());
        let mut next: Vec<Node> = cur
            .iter()
            .filter_map(|o| pt.points_to.get(o))
            .flatten()
            .copied()
            .collect();
        next.sort_unstable();
        next.dedup();
        cur = next;
    }
    levels
}

/// A warning from the layered checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayeredWarning {
    /// Function containing the source (`free`).
    pub source_func: FuncId,
    /// The `free` site.
    pub source_site: InstId,
    /// Function containing the use.
    pub sink_func: FuncId,
    /// The use site.
    pub sink_site: InstId,
}

/// The layered use-after-free checker: flow-, context- and path-
/// insensitive traversal of the FSVFG from every freed pointer.
///
/// Mirrors the SVF-based checker the paper compares against (§5.1.2):
/// with no conditions to prune anything, every deref reachable from a
/// freed value in the graph becomes a warning.
pub fn check_uaf(module: &Module, g: &Fsvfg) -> Vec<LayeredWarning> {
    // Index deref/free uses per vertex.
    let mut uses: HashMap<Vertex, Vec<InstId>> = HashMap::new();
    let mut frees: Vec<(Vertex, InstId)> = Vec::new();
    for (fid, f) in module.iter_funcs() {
        for (site, inst) in f.iter_insts() {
            match inst {
                Inst::Load { ptr, .. } | Inst::Store { ptr, .. } => {
                    uses.entry((fid, *ptr)).or_default().push(site);
                }
                Inst::Call { callee, args, .. } if callee == intrinsics::FREE => {
                    if let Some(&p) = args.first() {
                        frees.push(((fid, p), site));
                        uses.entry((fid, p)).or_default().push(site);
                    }
                }
                _ => {}
            }
        }
    }
    let mut warnings = Vec::new();
    for &(src, site) in &frees {
        let mut visited: std::collections::HashSet<Vertex> = std::collections::HashSet::new();
        let mut stack = vec![src];
        while let Some(v) = stack.pop() {
            if !visited.insert(v) {
                continue;
            }
            if let Some(sites) = uses.get(&v) {
                for &u in sites {
                    if v == src && u == site {
                        continue; // the free itself
                    }
                    warnings.push(LayeredWarning {
                        source_func: src.0,
                        source_site: site,
                        sink_func: v.0,
                        sink_site: u,
                    });
                }
            }
            stack.extend(g.succs(v).iter().copied());
        }
    }
    // Object layer: with no flow to prune anything, every site that
    // dereferences a pointer targeting a freed object is a warning —
    // including deep-chain reads whose intermediate pointer values are
    // not SSA vertices of the graph.
    for (src, site, objs) in &g.freed_objects {
        for o in objs {
            for &(sf, u) in g.deref_sites.get(o).map_or(&[][..], Vec::as_slice) {
                if sf == src.0 && u == *site {
                    continue; // the free itself
                }
                warnings.push(LayeredWarning {
                    source_func: src.0,
                    source_site: *site,
                    sink_func: sf,
                    sink_site: u,
                });
            }
        }
    }
    warnings.sort_unstable_by_key(|w| (w.source_func, w.source_site, w.sink_func, w.sink_site));
    warnings.dedup();
    warnings
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_ir::compile;

    #[test]
    fn finds_real_uaf() {
        let m = compile(
            "fn main() {
                let p: int* = malloc();
                free(p);
                let x: int = *p;
                print(x);
                return;
            }",
        )
        .unwrap();
        let g = Fsvfg::build(&m);
        let w = check_uaf(&m, &g);
        assert!(!w.is_empty());
    }

    #[test]
    fn flow_insensitivity_causes_false_positive() {
        // Use strictly before free: Pinpoint's ordering filter and path
        // conditions suppress this; the layered checker cannot.
        let m = compile(
            "fn main() {
                let p: int* = malloc();
                let x: int = *p;
                print(x);
                free(p);
                return;
            }",
        )
        .unwrap();
        let g = Fsvfg::build(&m);
        let w = check_uaf(&m, &g);
        assert!(
            !w.is_empty(),
            "the layered checker flags the use-before-free (a FP)"
        );
    }

    #[test]
    fn path_insensitivity_causes_false_positive() {
        let m = compile(
            "fn main(c: bool) {
                let p: int* = malloc();
                if (c) { free(p); }
                if (!c) { let x: int = *p; print(x); }
                return;
            }",
        )
        .unwrap();
        let g = Fsvfg::build(&m);
        let w = check_uaf(&m, &g);
        assert!(!w.is_empty(), "exclusive branches not pruned (a FP)");
    }

    #[test]
    fn context_insensitivity_conflates_call_sites() {
        // a is freed; only p == id(a) is dangerous. Context-insensitive
        // return binding makes the freed a flow to q == id(b) as well,
        // so dereferencing the innocent q draws a warning (a FP that
        // Pinpoint's context-sensitive search avoids).
        let m = compile(
            "fn id(x: int*) -> int* { return x; }
             fn main() {
                let a: int* = malloc();
                let b: int* = malloc();
                let p: int* = id(a);
                let q: int* = id(b);
                free(a);
                let y: int = *q;
                print(y);
                return;
             }",
        )
        .unwrap();
        let g = Fsvfg::build(&m);
        let w = check_uaf(&m, &g);
        assert!(!w.is_empty(), "context conflation yields a warning");
    }

    #[test]
    fn edge_counts_grow_with_aliasing() {
        // Many stores and loads through the same imprecise pointer set.
        let src = "fn main(c: bool) {
            let p: int** = malloc();
            let q: int** = p;
            let a: int* = malloc();
            let b: int* = malloc();
            *p = a;
            *q = b;
            let x: int* = *p;
            let y: int* = *q;
            print(x);
            print(y);
            return;
        }";
        let m = compile(src).unwrap();
        let g = Fsvfg::build(&m);
        // 2 stores × 2 loads through the same object = 4 memory edges
        // (plus copies).
        assert!(g.edge_count >= 4 + 2);
    }
}
