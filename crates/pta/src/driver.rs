//! The module-level points-to pipeline.
//!
//! Functions are processed bottom-up on the call graph (§3.3.2). For each
//! function:
//!
//! 1. call sites are rewritten against the already-final connector shapes
//!    of the callees (Fig. 3(b); same-SCC calls are skipped — the §4.2
//!    rule of unrolling call-graph cycles once);
//! 2. a first quasi path-sensitive points-to pass collects the function's
//!    referenced/modified parameter-rooted access paths (Mod/Ref);
//! 3. connectors (Aux formal parameters / Aux return values) are inserted
//!    (Fig. 3(a));
//! 4. a second pass over the transformed body produces the final guarded
//!    points-to sets and the conditional memory def-use edges consumed by
//!    the SEG builder.

use crate::intra::{analyze_function_with, AuxParamBinding, FuncPta, PtaStats};
use crate::symbols::Symbols;
use crate::transform::{insert_connectors, rewrite_call_sites, AuxShape};
use pinpoint_ir::{CallGraph, FuncId, Function, Module, ValueId};
use pinpoint_obs::TraceBuf;
use pinpoint_smt::{LinearSolver, TermArena, TermTranslator};
use std::collections::HashMap;

/// Result of the whole-module pipeline.
#[derive(Debug)]
pub struct ModuleAnalysis {
    /// Shared term arena (conditions of every function live here).
    pub arena: TermArena,
    /// Value-to-term cache.
    pub symbols: Symbols,
    /// The call graph used for ordering.
    pub callgraph: CallGraph,
    /// Connector shape per function (indexed by `FuncId`).
    pub shapes: Vec<AuxShape>,
    /// Points-to result per function (indexed by `FuncId`).
    pub pta: Vec<FuncPta>,
    /// The linear-time solver, retaining its statistics.
    pub linear: LinearSolver,
}

impl ModuleAnalysis {
    /// Aggregated pruning statistics across all functions.
    pub fn total_stats(&self) -> PtaStats {
        let mut total = PtaStats::default();
        for p in &self.pta {
            total.pruned += p.stats.pruned;
            total.kept += p.stats.kept;
            total.linear_checks += p.stats.linear_checks;
        }
        total
    }

    /// Connector shape of `f`.
    pub fn shape(&self, f: FuncId) -> &AuxShape {
        &self.shapes[f.0 as usize]
    }

    /// Points-to result of `f`.
    pub fn func_pta(&self, f: FuncId) -> &FuncPta {
        &self.pta[f.0 as usize]
    }
}

/// Runs the pipeline, transforming `module` in place.
///
/// # Examples
///
/// ```
/// let mut module = pinpoint_ir::compile(
///     "fn set(q: int**, v: int*) { *q = v; return; }",
/// ).unwrap();
/// let analysis = pinpoint_pta::analyze_module(&mut module);
/// let fid = module.func_by_name("set").unwrap();
/// // *q is modified, so `set` gained an Aux return value.
/// assert_eq!(analysis.shape(fid).aux_rets.len(), 1);
/// ```
pub fn analyze_module(module: &mut Module) -> ModuleAnalysis {
    analyze_module_with(module, &PtaConfig::default())
}

/// Points-to pipeline options.
#[derive(Debug, Clone, Copy)]
pub struct PtaConfig {
    /// Run the §3.1.1 linear-time contradiction pruning (`false` is the
    /// ablation: keep every guarded fact).
    pub prune: bool,
}

impl Default for PtaConfig {
    fn default() -> Self {
        PtaConfig { prune: true }
    }
}

/// Runs the pipeline with explicit options.
pub fn analyze_module_with(module: &mut Module, config: &PtaConfig) -> ModuleAnalysis {
    let callgraph = CallGraph::new(module);
    let mut arena = TermArena::new();
    let mut symbols = Symbols::new();
    let mut linear = LinearSolver::new();
    let n = module.funcs.len();
    let mut shapes: Vec<AuxShape> = vec![AuxShape::default(); n];
    let mut pta: Vec<Option<FuncPta>> = (0..n).map(|_| None).collect();
    let module_names: HashMap<String, FuncId> = module
        .iter_funcs()
        .map(|(id, f)| (f.name.clone(), id))
        .collect();

    for &fid in &callgraph.bottom_up.clone() {
        // 1. Rewrite call sites against finished callee shapes.
        {
            let shapes_ref = &shapes;
            let cg = &callgraph;
            let module_names = &module_names;
            let caller = fid;
            let lookup = |name: &str| -> Option<&AuxShape> {
                let target = *module_names.get(name)?;
                if cg.same_scc(caller, target) {
                    return None; // recursion: summary unavailable
                }
                Some(&shapes_ref[target.0 as usize])
            };
            rewrite_call_sites(&mut module.funcs[fid.0 as usize], lookup);
        }
        // 2. Mod/Ref pass (pre-connector body).
        let pass1 = analyze_function_with(
            &mut arena,
            &mut symbols,
            &mut linear,
            fid,
            module.func(fid),
            &[],
            config.prune,
        );
        // 3. Insert connectors.
        let shape = insert_connectors(module.func_mut(fid), &pass1.refs, &pass1.mods);
        // 4. Final pass on the transformed body.
        let bindings: Vec<AuxParamBinding> = shape
            .aux_params
            .iter()
            .map(|&(path, value)| AuxParamBinding { path, value })
            .collect();
        let pass2 = analyze_function_with(
            &mut arena,
            &mut symbols,
            &mut linear,
            fid,
            module.func(fid),
            &bindings,
            config.prune,
        );
        shapes[fid.0 as usize] = shape;
        pta[fid.0 as usize] = Some(pass2);
    }

    ModuleAnalysis {
        arena,
        symbols,
        callgraph,
        shapes,
        pta: pta.into_iter().map(|p| p.unwrap_or_default()).collect(),
        linear,
    }
}

/// Output of one function's worker analysis, carried in a private arena
/// until the deterministic merge.
struct FuncResult {
    fid: FuncId,
    shape: AuxShape,
    pta: FuncPta,
    arena: TermArena,
    symbols: Symbols,
    unsat: u64,
    unknown: u64,
}

/// Analyzes one function against the finished callee `shapes` with a
/// *fresh* private arena/interner/linear solver.
///
/// Because every function starts from an empty arena, its result is
/// bit-identical no matter which worker runs it or how functions are
/// sharded — determinism is then purely a property of the merge order.
fn analyze_one(
    fid: FuncId,
    f: &mut Function,
    shapes: &[AuxShape],
    callgraph: &CallGraph,
    names: &HashMap<String, FuncId>,
    prune: bool,
) -> FuncResult {
    let mut arena = TermArena::new();
    let mut symbols = Symbols::new();
    let mut linear = LinearSolver::new();
    {
        let lookup = |name: &str| -> Option<&AuxShape> {
            let target = *names.get(name)?;
            if callgraph.same_scc(fid, target) {
                return None; // recursion: summary unavailable (§4.2)
            }
            Some(&shapes[target.0 as usize])
        };
        rewrite_call_sites(f, lookup);
    }
    let pass1 = analyze_function_with(&mut arena, &mut symbols, &mut linear, fid, f, &[], prune);
    let shape = insert_connectors(f, &pass1.refs, &pass1.mods);
    let bindings: Vec<AuxParamBinding> = shape
        .aux_params
        .iter()
        .map(|&(path, value)| AuxParamBinding { path, value })
        .collect();
    let pta = analyze_function_with(
        &mut arena,
        &mut symbols,
        &mut linear,
        fid,
        f,
        &bindings,
        prune,
    );
    FuncResult {
        fid,
        shape,
        pta,
        arena,
        symbols,
        unsat: linear.unsat_count,
        unknown: linear.unknown_count,
    }
}

/// Stratifies the SCC condensation of `callgraph` into parallel levels
/// (`level(scc) = 1 + max(level of callee SCCs)`); within a level no
/// function depends on another's connector shape. `bottom_up` lists all
/// members of a callee SCC before any member of a caller SCC, so one
/// pass fixes every level, and each level keeps bottom-up order.
fn stratify_levels(callgraph: &CallGraph) -> Vec<Vec<FuncId>> {
    let mut scc_level = vec![0usize; callgraph.sccs.len()];
    for &f in &callgraph.bottom_up {
        let sf = callgraph.scc_of[f.0 as usize];
        for &c in &callgraph.callees[f.0 as usize] {
            let sc = callgraph.scc_of[c.0 as usize];
            if sc != sf {
                scc_level[sf] = scc_level[sf].max(scc_level[sc] + 1);
            }
        }
    }
    let max_level = scc_level.iter().copied().max().unwrap_or(0);
    let mut levels: Vec<Vec<FuncId>> = vec![Vec::new(); max_level + 1];
    for &f in &callgraph.bottom_up {
        levels[scc_level[callgraph.scc_of[f.0 as usize]]].push(f);
    }
    levels
}

/// Fans one level's detached bodies out over `threads` scoped workers.
/// Results come back in `work` order regardless of sharding, and each
/// worker's `pta.func` trace spans are merged back in shard order.
fn run_level(
    work: &mut [(FuncId, Function)],
    shapes: &[AuxShape],
    callgraph: &CallGraph,
    names: &HashMap<String, FuncId>,
    prune: bool,
    threads: usize,
    trace: &mut TraceBuf,
) -> Vec<FuncResult> {
    if threads == 1 || work.len() <= 1 {
        let mut lane = trace.fork(1);
        let out = work
            .iter_mut()
            .map(|(fid, f)| {
                let span = lane.open("pta.func", f.name.clone());
                let r = analyze_one(*fid, f, shapes, callgraph, names, prune);
                lane.close(span);
                r
            })
            .collect();
        trace.merge(lane);
        out
    } else {
        let chunk = work.len().div_ceil(threads);
        let trace_ref = &*trace;
        let (out, lanes) = std::thread::scope(|s| {
            let handles: Vec<_> = work
                .chunks_mut(chunk)
                .enumerate()
                .map(|(shard_idx, shard)| {
                    s.spawn(move || {
                        let mut lane = trace_ref.fork(shard_idx as u32 + 1);
                        let results = shard
                            .iter_mut()
                            .map(|(fid, f)| {
                                let span = lane.open("pta.func", f.name.clone());
                                let r = analyze_one(*fid, f, shapes, callgraph, names, prune);
                                lane.close(span);
                                r
                            })
                            .collect::<Vec<_>>();
                        (results, lane)
                    })
                })
                .collect();
            let mut out = Vec::new();
            let mut lanes = Vec::new();
            for h in handles {
                let (results, lane) = h.join().expect("points-to worker panicked");
                out.extend(results);
                lanes.push(lane);
            }
            (out, lanes)
        });
        for lane in lanes {
            trace.merge(lane);
        }
        out
    }
}

/// Merges one function's private-arena result into the shared state:
/// re-derives the symbol cache against the shared arena (sorted value
/// order), then rebuilds every condition term through the translator's
/// smart constructors so canonical child ordering is restored in the
/// target arena.
#[allow(clippy::too_many_arguments)]
fn merge_one(
    fid: FuncId,
    f: &Function,
    shape: AuxShape,
    mut func_pta: FuncPta,
    src_arena: &TermArena,
    cached_values: &[ValueId],
    arena: &mut TermArena,
    symbols: &mut Symbols,
    shapes: &mut [AuxShape],
    pta: &mut [FuncPta],
) {
    for &v in cached_values {
        symbols.value_term(arena, fid, f, v);
    }
    let mut tr = TermTranslator::new();
    for d in &mut func_pta.mem_deps {
        d.cond = tr.translate(src_arena, arena, d.cond);
    }
    let mut keys: Vec<ValueId> = func_pta.points_to.keys().copied().collect();
    keys.sort_unstable();
    for k in keys {
        for (_, c) in func_pta.points_to.get_mut(&k).expect("key just listed") {
            *c = tr.translate(src_arena, arena, *c);
        }
    }
    for g in &mut func_pta.global_stores {
        g.cond = tr.translate(src_arena, arena, g.cond);
    }
    for g in &mut func_pta.global_loads {
        g.cond = tr.translate(src_arena, arena, g.cond);
    }
    shapes[fid.0 as usize] = shape;
    pta[fid.0 as usize] = func_pta;
}

/// Runs the pipeline with function-level parallelism.
///
/// The call graph's SCC condensation is stratified into *levels*
/// (`level(scc) = 1 + max(level of callee SCCs)`). Within a level no
/// function depends on another's connector shape — cross-SCC callees sit
/// strictly below, and same-SCC calls are summary-free (§4.2) — so each
/// level fans out over `threads` scoped workers. Every worker analyzes
/// its functions in fresh private arenas; results are merged back into
/// the shared arena in bottom-up order, so the returned
/// [`ModuleAnalysis`] is byte-identical for any thread count.
///
/// `threads == 1` exercises the same shard-and-merge machinery on a
/// single worker, which is what makes that guarantee hold by
/// construction rather than by accident.
///
/// When `trace` is recording, every function analysis gets a `pta.func`
/// span captured in a worker-private buffer ([`TraceBuf::fork`]) and
/// merged back at the level join in shard order — the same deterministic
/// order the results themselves are merged in.
pub fn analyze_module_par(
    module: &mut Module,
    config: &PtaConfig,
    threads: usize,
    trace: &mut TraceBuf,
) -> ModuleAnalysis {
    let threads = threads.max(1);
    let callgraph = CallGraph::new(module);
    let n = module.funcs.len();
    let mut arena = TermArena::new();
    let mut symbols = Symbols::new();
    let mut linear = LinearSolver::new();
    let mut shapes: Vec<AuxShape> = vec![AuxShape::default(); n];
    let mut pta: Vec<FuncPta> = (0..n).map(|_| FuncPta::default()).collect();
    let names: HashMap<String, FuncId> = module
        .iter_funcs()
        .map(|(id, f)| (f.name.clone(), id))
        .collect();

    let levels = stratify_levels(&callgraph);

    for level_fids in &levels {
        // Detach the level's bodies so workers can transform them while
        // the module stays borrowable for the spawn scope.
        let mut work: Vec<(FuncId, Function)> = level_fids
            .iter()
            .map(|&fid| {
                (
                    fid,
                    std::mem::replace(&mut module.funcs[fid.0 as usize], Function::new("")),
                )
            })
            .collect();

        let results = run_level(
            &mut work,
            &shapes,
            &callgraph,
            &names,
            config.prune,
            threads,
            trace,
        );

        for (fid, f) in work {
            module.funcs[fid.0 as usize] = f;
        }

        // Deterministic merge, in the level's bottom-up order.
        for r in results {
            let cached_values = r.symbols.cached_values(r.fid);
            merge_one(
                r.fid,
                module.func(r.fid),
                r.shape,
                r.pta,
                &r.arena,
                &cached_values,
                &mut arena,
                &mut symbols,
                &mut shapes,
                &mut pta,
            );
            linear.unsat_count += r.unsat;
            linear.unknown_count += r.unknown;
        }
    }

    ModuleAnalysis {
        arena,
        symbols,
        callgraph,
        shapes,
        pta,
        linear,
    }
}

/// A function's complete per-function analysis output in its private
/// term arena — everything needed to splice the function into a later
/// run without re-analyzing it. This is the unit the persistent cache
/// stores and loads.
///
/// Because every worker analysis starts from a fresh private arena, the
/// artifact of a function whose content (and callee-summary cone) is
/// unchanged is bit-identical across runs; replaying the deterministic
/// merge over loaded artifacts therefore reconstructs the exact shared
/// state a cold run would have produced.
#[derive(Debug)]
pub struct FuncArtifact {
    /// The transformed (post-connector, call-site-rewritten) body.
    pub body: Function,
    /// Connector shape.
    pub shape: AuxShape,
    /// Points-to result, with conditions in [`FuncArtifact::arena`].
    pub pta: FuncPta,
    /// The private term arena all conditions refer into.
    pub arena: TermArena,
    /// Sorted values the symbol interner cached for this function; the
    /// merge re-derives their terms against the shared arena in exactly
    /// this order.
    pub cached_values: Vec<ValueId>,
    /// Linear-solver unsat verdicts attributed to this function.
    pub unsat: u64,
    /// Linear-solver unknown verdicts attributed to this function.
    pub unknown: u64,
}

/// Where [`analyze_module_cached`] loads and stores per-function
/// artifacts. Implementations must treat `key` as fully identifying:
/// a `load` hit is spliced into the run *without verification*, so a
/// store must never return an artifact for a key it was not stored
/// under.
pub trait ArtifactStore {
    /// Fetches the artifact stored under `key`, if any.
    fn load(&mut self, key: u128) -> Option<FuncArtifact>;
    /// Persists `artifact` under `key`. Failures must be swallowed
    /// (degrading to a miss on the next run), not surfaced.
    fn store(&mut self, key: u128, artifact: &FuncArtifact);
}

/// Outcome counters of a cached run (see [`analyze_module_cached`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheOutcome {
    /// Functions spliced from the store.
    pub hits: u64,
    /// Functions analyzed fresh (and written back).
    pub misses: u64,
}

/// Runs the parallel pipeline against a persistent artifact store.
///
/// `keys[fid]` must be a content key that changes whenever function
/// `fid`'s analysis inputs change (its own body, its callee-summary
/// cone, the configuration, or the artifact format). For each function,
/// a store hit splices the persisted transformed body and private-arena
/// result; a miss analyzes the function exactly as
/// [`analyze_module_par`] would and writes the artifact back. Hits and
/// misses then flow through the same deterministic bottom-up merge, so
/// the result is byte-identical to a cold run.
pub fn analyze_module_cached(
    module: &mut Module,
    config: &PtaConfig,
    threads: usize,
    trace: &mut TraceBuf,
    keys: &[u128],
    store: &mut dyn ArtifactStore,
) -> (ModuleAnalysis, CacheOutcome) {
    let threads = threads.max(1);
    let callgraph = CallGraph::new(module);
    let n = module.funcs.len();
    assert_eq!(keys.len(), n, "one cache key per function");
    let mut arena = TermArena::new();
    let mut symbols = Symbols::new();
    let mut linear = LinearSolver::new();
    let mut shapes: Vec<AuxShape> = vec![AuxShape::default(); n];
    let mut pta: Vec<FuncPta> = (0..n).map(|_| FuncPta::default()).collect();
    let names: HashMap<String, FuncId> = module
        .iter_funcs()
        .map(|(id, f)| (f.name.clone(), id))
        .collect();
    let mut outcome = CacheOutcome::default();

    let levels = stratify_levels(&callgraph);

    for level_fids in &levels {
        // Probe the store first; hits splice their transformed body into
        // the module immediately so caller levels rewrite against it.
        let mut artifacts: HashMap<FuncId, FuncArtifact> = HashMap::new();
        let mut work: Vec<(FuncId, Function)> = Vec::new();
        for &fid in level_fids {
            match store.load(keys[fid.0 as usize]) {
                Some(art) => {
                    outcome.hits += 1;
                    module.funcs[fid.0 as usize] = art.body.clone();
                    artifacts.insert(fid, art);
                }
                None => {
                    outcome.misses += 1;
                    work.push((
                        fid,
                        std::mem::replace(&mut module.funcs[fid.0 as usize], Function::new("")),
                    ));
                }
            }
        }

        let results = run_level(
            &mut work,
            &shapes,
            &callgraph,
            &names,
            config.prune,
            threads,
            trace,
        );

        for (fid, f) in work {
            module.funcs[fid.0 as usize] = f;
        }

        for r in results {
            let art = FuncArtifact {
                body: module.func(r.fid).clone(),
                shape: r.shape,
                pta: r.pta,
                arena: r.arena,
                cached_values: r.symbols.cached_values(r.fid),
                unsat: r.unsat,
                unknown: r.unknown,
            };
            store.store(keys[r.fid.0 as usize], &art);
            artifacts.insert(r.fid, art);
        }

        // Uniform deterministic merge over hits and misses alike, in the
        // level's bottom-up order — the same order a cold run uses.
        for &fid in level_fids {
            let art = artifacts.remove(&fid).expect("level function analyzed");
            merge_one(
                fid,
                module.func(fid),
                art.shape,
                art.pta,
                &art.arena,
                &art.cached_values,
                &mut arena,
                &mut symbols,
                &mut shapes,
                &mut pta,
            );
            linear.unsat_count += art.unsat;
            linear.unknown_count += art.unknown;
        }
    }

    (
        ModuleAnalysis {
            arena,
            symbols,
            callgraph,
            shapes,
            pta,
            linear,
        },
        outcome,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::AccessPath;
    use pinpoint_ir::{compile, Inst};

    #[test]
    fn figure2_pipeline_end_to_end() {
        // The motivating example of Fig. 1/2.
        let mut m = compile(
            r#"
            global gb: int;
            fn foo(a: int*) {
                let ptr: int** = malloc();
                *ptr = a;
                if (nondet_bool()) { bar(ptr); } else { qux(ptr); }
                let f: int* = *ptr;
                if (nondet_bool()) { print(*f); }
                return;
            }
            fn bar(q: int**) {
                let c: int* = malloc();
                let t3: bool = *q != null;
                if (t3) { *q = c; free(c); }
                else { if (nondet_bool()) { *q = gb; } }
                return;
            }
            fn qux(r: int**) {
                if (nondet_bool()) { *r = null; } else { *r = null; }
                return;
            }
            "#,
        )
        .unwrap();
        let analysis = analyze_module(&mut m);
        let bar = m.func_by_name("bar").unwrap();
        let foo = m.func_by_name("foo").unwrap();
        let qux = m.func_by_name("qux").unwrap();
        // bar reads and writes *(q,1): one aux param (X), one aux ret (Y).
        assert_eq!(analysis.shape(bar).aux_params.len(), 1);
        assert_eq!(analysis.shape(bar).aux_rets.len(), 1);
        // qux writes but (only conditionally) reads *(r,1): at least the
        // aux return exists.
        assert_eq!(analysis.shape(qux).aux_rets.len(), 1);
        // foo's call sites were rewritten: the call to bar now has 2 args.
        let f = m.func(foo);
        let bar_call = f
            .iter_insts()
            .find_map(|(_, i)| match i {
                Inst::Call { callee, args, dsts } if callee == "bar" => {
                    Some((args.len(), dsts.len()))
                }
                _ => None,
            })
            .unwrap();
        assert_eq!(bar_call, (2, 1), "bar(ptr, K) with receiver L");
        // foo has no param-rooted side effects of its own (a is read only
        // as a value), so no connectors on foo from memory paths.
        assert!(analysis.shape(foo).aux_params.is_empty());
        // In foo, the load f = *ptr must now see the store *ptr = L
        // (the write-back of bar's aux return) and *ptr = M (qux's).
        let foo_pta = analysis.func_pta(foo);
        let src_names: Vec<&str> = foo_pta
            .mem_deps
            .iter()
            .map(|d| f.value(d.src).name.as_str())
            .collect();
        assert!(
            src_names.iter().any(|n| n.starts_with("aux_recv")),
            "f = *ptr reads the written-back aux receiver, got {src_names:?}"
        );
    }

    #[test]
    fn deep_call_chain_propagates_paths() {
        // inner writes *(q,1); middle just forwards; outer must see the
        // effect through two levels of connectors.
        let mut m = compile(
            "fn inner(q: int**) { *q = null; return; }
             fn middle(q: int**) { inner(q); return; }
             fn outer(a: int*) -> int* {
                let p: int** = malloc();
                *p = a;
                middle(p);
                let r: int* = *p;
                return r;
             }",
        )
        .unwrap();
        let analysis = analyze_module(&mut m);
        let middle = m.func_by_name("middle").unwrap();
        // middle's rewritten call to inner makes middle itself modify
        // *(q,1), so middle gets an aux return too.
        assert!(
            analysis.shape(middle).aux_rets.contains(&(
                AccessPath { root: 0, depth: 1 },
                analysis.shape(middle).aux_rets[0].1
            )),
            "middle inherits the modification"
        );
        let outer = m.func_by_name("outer").unwrap();
        let f = m.func(outer);
        let pta = analysis.func_pta(outer);
        let r_deps: Vec<&str> = pta
            .mem_deps
            .iter()
            .map(|d| f.value(d.src).name.as_str())
            .collect();
        assert!(
            r_deps.iter().any(|n| n.starts_with("aux_recv")),
            "outer's load sees middle's write-back: {r_deps:?}"
        );
    }

    #[test]
    fn recursion_does_not_loop() {
        let mut m = compile(
            "fn f(q: int**, n: int) {
                if (n > 0) { f(q, n - 1); }
                *q = null;
                return;
             }",
        )
        .unwrap();
        let analysis = analyze_module(&mut m);
        let f = m.func_by_name("f").unwrap();
        // The direct store still yields an aux return.
        assert_eq!(analysis.shape(f).aux_rets.len(), 1);
    }

    #[test]
    fn stats_accumulate_across_functions() {
        let mut m = compile(
            "fn a(c: bool, p: int**) {
                *p = null;
                if (c) { let x: int* = *p; print(x); } else { *p = null; }
                return;
             }
             fn b(c: bool, p: int**) {
                if (c) { *p = null; } else { let x: int* = *p; print(x); }
                return;
             }",
        )
        .unwrap();
        let analysis = analyze_module(&mut m);
        let stats = analysis.total_stats();
        assert!(stats.linear_checks > 0);
        assert!(stats.kept > 0);
    }

    const WAVEFRONT_SRC: &str = r#"
        global gb: int;
        fn foo(a: int*) {
            let ptr: int** = malloc();
            *ptr = a;
            if (nondet_bool()) { bar(ptr); } else { qux(ptr); }
            let f: int* = *ptr;
            if (nondet_bool()) { print(*f); }
            return;
        }
        fn bar(q: int**) {
            let c: int* = malloc();
            if (*q != null) { *q = c; free(c); }
            else { if (nondet_bool()) { *q = gb; } }
            return;
        }
        fn qux(r: int**) {
            if (nondet_bool()) { *r = null; } else { *r = null; }
            return;
        }
        fn even(n: int, q: int**) { odd(n - 1, q); *q = null; return; }
        fn odd(n: int, q: int**) { even(n - 1, q); return; }
        fn top(x: int*) {
            let p: int** = malloc();
            *p = x;
            foo(x);
            even(3, p);
            return;
        }
        "#;

    #[test]
    fn parallel_matches_sequential_results() {
        let mut m_seq = compile(WAVEFRONT_SRC).unwrap();
        let mut m_par = compile(WAVEFRONT_SRC).unwrap();
        let seq = analyze_module(&mut m_seq);
        let par = analyze_module_par(&mut m_par, &PtaConfig::default(), 4, &mut TraceBuf::off());
        for fid in 0..m_seq.funcs.len() {
            let fid = pinpoint_ir::FuncId(fid as u32);
            assert_eq!(
                seq.shape(fid).aux_params,
                par.shape(fid).aux_params,
                "aux params of {}",
                m_seq.func(fid).name
            );
            assert_eq!(seq.shape(fid).aux_rets, par.shape(fid).aux_rets);
            assert_eq!(
                seq.func_pta(fid).mem_deps.len(),
                par.func_pta(fid).mem_deps.len(),
                "mem-dep count of {}",
                m_seq.func(fid).name
            );
        }
        let (s, p) = (seq.total_stats(), par.total_stats());
        assert_eq!(s.pruned, p.pruned);
        assert_eq!(s.kept, p.kept);
        assert_eq!(s.linear_checks, p.linear_checks);
    }

    #[test]
    fn parallel_is_byte_identical_across_thread_counts() {
        let analyses: Vec<(Module, ModuleAnalysis)> = [1usize, 2, 4, 7]
            .iter()
            .map(|&t| {
                let mut m = compile(WAVEFRONT_SRC).unwrap();
                let a = analyze_module_par(&mut m, &PtaConfig::default(), t, &mut TraceBuf::off());
                (m, a)
            })
            .collect();
        let (m0, a0) = &analyses[0];
        for (m, a) in &analyses[1..] {
            // The transformed modules agree instruction-for-instruction.
            for (fid, f) in m0.iter_funcs() {
                assert_eq!(
                    format!("{:?}", f.blocks),
                    format!("{:?}", m.func(fid).blocks)
                );
            }
            // The shared arenas have identical layouts, so every TermId
            // in the results means the same term.
            assert_eq!(a0.arena.len(), a.arena.len());
            for fid in 0..m0.funcs.len() {
                let fid = pinpoint_ir::FuncId(fid as u32);
                assert_eq!(a0.func_pta(fid).mem_deps, a.func_pta(fid).mem_deps);
                let mut p0: Vec<_> = a0.func_pta(fid).points_to.iter().collect();
                let mut p1: Vec<_> = a.func_pta(fid).points_to.iter().collect();
                p0.sort_by_key(|(v, _)| **v);
                p1.sort_by_key(|(v, _)| **v);
                assert_eq!(format!("{p0:?}"), format!("{p1:?}"));
            }
            assert_eq!(a0.symbols.len(), a.symbols.len());
        }
    }

    #[test]
    fn trace_spans_are_thread_count_invariant() {
        let run = |t: usize| {
            let mut m = compile(WAVEFRONT_SRC).unwrap();
            let mut trace = TraceBuf::on();
            let _ = analyze_module_par(&mut m, &PtaConfig::default(), t, &mut trace);
            (trace.records().len(), trace.canonical_json())
        };
        let (n1, c1) = run(1);
        let (n4, c4) = run(4);
        assert_eq!(n1, 6, "one pta.func span per function");
        assert_eq!(n1, n4);
        assert_eq!(c1, c4, "canonical trace is thread-count invariant");
    }

    #[test]
    fn read_only_chain_gets_aux_param_only() {
        let mut m = compile(
            "fn get(q: int**) -> int* {
                let v: int* = *q;
                return v;
             }",
        )
        .unwrap();
        let analysis = analyze_module(&mut m);
        let f = m.func_by_name("get").unwrap();
        assert_eq!(analysis.shape(f).aux_params.len(), 1);
        assert!(analysis.shape(f).aux_rets.is_empty());
        // The load now reads the entry store of the aux param.
        let func = m.func(f);
        let pta = analysis.func_pta(f);
        let dep_srcs: Vec<&str> = pta
            .mem_deps
            .iter()
            .map(|d| func.value(d.src).name.as_str())
            .collect();
        assert!(
            dep_srcs.iter().any(|n| n.starts_with("aux_in")),
            "v = *q reads F: {dep_srcs:?}"
        );
    }
}
