//! Incremental re-analysis.
//!
//! The industrial requirement the paper quotes (§5: "checking
//! millions-of-LoC code in 5-10 hours", citing McPeak et al.'s
//! incremental bug detection) implies that day-to-day runs must not pay
//! the whole-program price for a one-function edit. Pinpoint's bottom-up,
//! per-function architecture makes this natural:
//!
//! * the quasi points-to result, connector shape, and transformed body of
//!   a function depend only on the function's own IR and its *callees'*
//!   shapes;
//! * therefore an edit invalidates exactly the edited functions plus the
//!   transitive *callers* of any function whose interface may have
//!   changed — everything else is spliced from the previous run.
//!
//! [`analyze_module_incremental`] takes the previous analysis, a freshly
//! lowered module, and the set of edited function names (as a build
//! system reports them). Clean functions' transformed bodies and
//! points-to results are copied over; dirty functions are re-analysed
//! bottom-up, with their stale term-cache entries invalidated (the shared
//! hash-consed arena is append-only, so all clean terms stay valid).
//!
//! The conservative dirtying rule (all transitive callers of an edit) can
//! over-approximate — a body edit that leaves the connector shape
//! untouched would not really need its callers re-analysed — but it never
//! under-approximates, so the incremental result is always identical to a
//! full re-analysis (asserted by the test-suite on generated projects).

use crate::driver::{analyze_module_with, ModuleAnalysis, PtaConfig};
use crate::intra::{analyze_function_with, AuxParamBinding};
use crate::transform::{insert_connectors, rewrite_call_sites, AuxShape};
use pinpoint_ir::{CallGraph, FuncId, Module};
use std::collections::HashSet;

/// Outcome of an incremental run.
#[derive(Debug)]
pub struct IncrementalOutcome {
    /// The merged analysis (same shape as a full run's).
    pub analysis: ModuleAnalysis,
    /// Functions that were actually re-analysed.
    pub reanalyzed: Vec<FuncId>,
    /// Functions spliced from the previous run.
    pub reused: usize,
    /// `true` if the incremental path was abandoned for a full run
    /// (function set changed).
    pub fell_back: bool,
}

/// Closes a seed set of dirty functions under transitive callers: a
/// caller's call sites must be re-rewritten against possibly-changed
/// callee shapes, so any function above an edit is dirty too.
///
/// This is the one dirtying rule both incremental entry points share;
/// idempotent, so feeding it an already-closed set (e.g. one derived
/// from the transitive fingerprint keys of `pinpoint-cache`) is a no-op.
pub fn dirty_closure(
    callgraph: &CallGraph,
    seeds: impl IntoIterator<Item = FuncId>,
) -> HashSet<FuncId> {
    let mut dirty: HashSet<FuncId> = seeds.into_iter().collect();
    let mut work: Vec<FuncId> = dirty.iter().copied().collect();
    while let Some(f) = work.pop() {
        for &caller in &callgraph.callers[f.0 as usize] {
            if dirty.insert(caller) {
                work.push(caller);
            }
        }
    }
    dirty
}

/// `true` when the two modules have the same function names in the same
/// order — the precondition for splicing per-function artifacts.
fn same_shape(module: &Module, old_module: &Module) -> bool {
    module.funcs.len() == old_module.funcs.len()
        && module
            .iter_funcs()
            .zip(old_module.iter_funcs())
            .all(|((_, a), (_, b))| a.name == b.name)
}

/// The full-reanalysis fallback used when the function set changed.
fn full_fallback(module: &mut Module) -> IncrementalOutcome {
    let analysis = analyze_module_with(module, &PtaConfig::default());
    let n = module.funcs.len();
    IncrementalOutcome {
        analysis,
        reanalyzed: (0..n).map(|i| FuncId(i as u32)).collect(),
        reused: 0,
        fell_back: true,
    }
}

/// Incrementally re-analyses `module` (freshly lowered, untransformed)
/// against the previous `old` analysis of `old_module`.
///
/// `changed` lists edited function names (as a build system reports
/// them). If the function name sets of the two modules differ
/// (additions/removals), the function falls back to a full analysis.
pub fn analyze_module_incremental(
    module: &mut Module,
    old_module: &Module,
    old: ModuleAnalysis,
    changed: &[String],
) -> IncrementalOutcome {
    if !same_shape(module, old_module) {
        return full_fallback(module);
    }
    let callgraph = CallGraph::new(module);
    let seeds: Vec<FuncId> = changed
        .iter()
        .filter_map(|n| module.func_by_name(n))
        .collect();
    let dirty = dirty_closure(&callgraph, seeds);
    reanalyze_dirty(module, old_module, old, callgraph, dirty)
}

/// Like [`analyze_module_incremental`], but driven by an explicit set of
/// dirty [`FuncId`]s — typically derived by diffing
/// [`pinpoint_ir::module_fingerprints`]-based keys rather than trusting a
/// hand-written change list. The set is re-closed under transitive
/// callers ([`dirty_closure`]), so passing an already caller-closed set
/// (as fingerprint-key diffs are) costs nothing.
pub fn analyze_module_incremental_dirty(
    module: &mut Module,
    old_module: &Module,
    old: ModuleAnalysis,
    dirty: &HashSet<FuncId>,
) -> IncrementalOutcome {
    if !same_shape(module, old_module) {
        return full_fallback(module);
    }
    let callgraph = CallGraph::new(module);
    let dirty = dirty_closure(&callgraph, dirty.iter().copied());
    reanalyze_dirty(module, old_module, old, callgraph, dirty)
}

/// Shared core: splices clean functions from the previous run and
/// re-analyses the dirty set bottom-up. `dirty` must already be closed
/// under transitive callers.
fn reanalyze_dirty(
    module: &mut Module,
    old_module: &Module,
    old: ModuleAnalysis,
    callgraph: CallGraph,
    dirty: HashSet<FuncId>,
) -> IncrementalOutcome {
    let ModuleAnalysis {
        mut arena,
        mut symbols,
        shapes: old_shapes,
        pta: old_pta,
        mut linear,
        ..
    } = old;
    let n = module.funcs.len();
    let mut shapes: Vec<AuxShape> = vec![AuxShape::default(); n];
    let mut pta: Vec<Option<crate::intra::FuncPta>> = (0..n).map(|_| None).collect();
    // Splice clean functions: transformed body + shape + points-to.
    let mut old_pta: Vec<Option<crate::intra::FuncPta>> = old_pta.into_iter().map(Some).collect();
    let mut reused = 0;
    for (i, shape) in old_shapes.into_iter().enumerate() {
        let fid = FuncId(i as u32);
        if dirty.contains(&fid) {
            symbols.invalidate_function(fid);
            continue;
        }
        module.funcs[i] = old_module.func(fid).clone();
        shapes[i] = shape;
        pta[i] = old_pta[i].take();
        reused += 1;
    }
    // Re-analyse dirty functions bottom-up.
    let module_names: std::collections::HashMap<String, FuncId> = module
        .iter_funcs()
        .map(|(id, f)| (f.name.clone(), id))
        .collect();
    let mut reanalyzed = Vec::new();
    for &fid in &callgraph.bottom_up.clone() {
        if !dirty.contains(&fid) {
            continue;
        }
        reanalyzed.push(fid);
        {
            let shapes_ref = &shapes;
            let cg = &callgraph;
            let module_names = &module_names;
            let lookup = |name: &str| -> Option<&AuxShape> {
                let target = *module_names.get(name)?;
                if cg.same_scc(fid, target) {
                    return None;
                }
                Some(&shapes_ref[target.0 as usize])
            };
            rewrite_call_sites(&mut module.funcs[fid.0 as usize], lookup);
        }
        let pass1 = analyze_function_with(
            &mut arena,
            &mut symbols,
            &mut linear,
            fid,
            module.func(fid),
            &[],
            true,
        );
        let shape = insert_connectors(module.func_mut(fid), &pass1.refs, &pass1.mods);
        let bindings: Vec<AuxParamBinding> = shape
            .aux_params
            .iter()
            .map(|&(path, value)| AuxParamBinding { path, value })
            .collect();
        let pass2 = analyze_function_with(
            &mut arena,
            &mut symbols,
            &mut linear,
            fid,
            module.func(fid),
            &bindings,
            true,
        );
        shapes[fid.0 as usize] = shape;
        pta[fid.0 as usize] = Some(pass2);
    }
    IncrementalOutcome {
        analysis: ModuleAnalysis {
            arena,
            symbols,
            callgraph,
            shapes,
            pta: pta.into_iter().map(Option::unwrap_or_default).collect(),
            linear,
        },
        reanalyzed,
        reused,
        fell_back: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::analyze_module;

    const BASE: &str = "
        fn leaf_a(p: int*) -> int { let x: int = *p; return x; }
        fn leaf_b(q: int**) { *q = null; return; }
        fn mid(q: int**) -> int {
            leaf_b(q);
            let p: int* = *q;
            let v: int = leaf_a(p);
            return v;
        }
        fn top() -> int {
            let q: int** = malloc();
            let p: int* = malloc();
            *q = p;
            let v: int = mid(q);
            return v;
        }
        fn unrelated(x: int) -> int { return x + 1; }
    ";

    fn edited_leaf_a() -> String {
        BASE.replace(
            "fn leaf_a(p: int*) -> int { let x: int = *p; return x; }",
            "fn leaf_a(p: int*) -> int { let x: int = *p; return x + 1; }",
        )
    }

    #[test]
    fn leaf_edit_reanalyzes_only_its_caller_chain() {
        let mut old_module = pinpoint_ir::compile(BASE).unwrap();
        let old_pristine = pinpoint_ir::compile(BASE).unwrap();
        let old = analyze_module(&mut old_module);
        let src = edited_leaf_a();
        let mut new_module = pinpoint_ir::compile(&src).unwrap();
        // NOTE: old_module is post-transform; the splice source.
        let out = analyze_module_incremental(&mut new_module, &old_module, old, &["leaf_a".into()]);
        assert!(!out.fell_back);
        let names: Vec<&str> = out
            .reanalyzed
            .iter()
            .map(|&f| new_module.func(f).name.as_str())
            .collect();
        // leaf_a + its callers mid + top; leaf_b and unrelated reused.
        assert!(names.contains(&"leaf_a"), "{names:?}");
        assert!(names.contains(&"mid"), "{names:?}");
        assert!(names.contains(&"top"), "{names:?}");
        assert!(!names.contains(&"leaf_b"), "{names:?}");
        assert!(!names.contains(&"unrelated"), "{names:?}");
        assert_eq!(out.reused, 2);
        let _ = old_pristine;
    }

    #[test]
    fn incremental_matches_full_analysis() {
        let mut old_module = pinpoint_ir::compile(BASE).unwrap();
        let old = analyze_module(&mut old_module);
        let src = edited_leaf_a();
        // Full run on the edited source.
        let mut full_module = pinpoint_ir::compile(&src).unwrap();
        let full = analyze_module(&mut full_module);
        // Incremental run.
        let mut inc_module = pinpoint_ir::compile(&src).unwrap();
        let out = analyze_module_incremental(&mut inc_module, &old_module, old, &["leaf_a".into()]);
        // Shapes must agree function by function.
        for (fid, f) in full_module.iter_funcs() {
            let a = full.shape(fid);
            let b = out.analysis.shape(fid);
            assert_eq!(
                a.aux_params.len(),
                b.aux_params.len(),
                "{}: aux params",
                f.name
            );
            assert_eq!(a.aux_rets.len(), b.aux_rets.len(), "{}: aux rets", f.name);
            // Memory-dependence edge counts must agree.
            assert_eq!(
                full.func_pta(fid).mem_deps.len(),
                out.analysis.func_pta(fid).mem_deps.len(),
                "{}: mem deps",
                f.name
            );
        }
        // The transformed modules must verify.
        let errs = pinpoint_ir::verify_module(&inc_module);
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn dirty_set_entry_point_expands_to_caller_chain() {
        // The automatic path: diff pre-transform fingerprints instead of
        // naming the edited function, then let the closure find callers.
        let mut old_module = pinpoint_ir::compile(BASE).unwrap();
        let old_pristine = pinpoint_ir::compile(BASE).unwrap();
        let old = analyze_module(&mut old_module);
        let src = edited_leaf_a();
        let mut new_module = pinpoint_ir::compile(&src).unwrap();
        let before = pinpoint_ir::module_fingerprints(&old_pristine);
        let after = pinpoint_ir::module_fingerprints(&new_module);
        let dirty: HashSet<FuncId> = (0..after.len())
            .filter(|&i| before[i] != after[i])
            .map(|i| FuncId(i as u32))
            .collect();
        assert_eq!(dirty.len(), 1, "only leaf_a's body changed");
        let out = analyze_module_incremental_dirty(&mut new_module, &old_module, old, &dirty);
        assert!(!out.fell_back);
        let names: Vec<&str> = out
            .reanalyzed
            .iter()
            .map(|&f| new_module.func(f).name.as_str())
            .collect();
        assert!(names.contains(&"leaf_a"), "{names:?}");
        assert!(names.contains(&"mid"), "{names:?}");
        assert!(names.contains(&"top"), "{names:?}");
        assert_eq!(out.reused, 2, "leaf_b and unrelated spliced");
    }

    #[test]
    fn function_set_change_falls_back() {
        let mut old_module = pinpoint_ir::compile(BASE).unwrap();
        let old = analyze_module(&mut old_module);
        let src = format!("{BASE}\nfn brand_new() {{ return; }}");
        let mut new_module = pinpoint_ir::compile(&src).unwrap();
        let out =
            analyze_module_incremental(&mut new_module, &old_module, old, &["brand_new".into()]);
        assert!(out.fell_back);
        assert_eq!(out.reused, 0);
    }

    #[test]
    fn no_edit_reuses_everything() {
        let mut old_module = pinpoint_ir::compile(BASE).unwrap();
        let old = analyze_module(&mut old_module);
        let mut new_module = pinpoint_ir::compile(BASE).unwrap();
        let out = analyze_module_incremental(&mut new_module, &old_module, old, &[]);
        assert!(out.reanalyzed.is_empty());
        assert_eq!(out.reused, new_module.funcs.len());
    }
}
