//! Block reach conditions.
//!
//! For the guarded memory updates of the quasi path-sensitive points-to
//! analysis, every store needs the condition under which control reaches
//! its block from the function entry. On the acyclic CFG this is a single
//! forward pass in topological order, disjoining incoming edge conditions
//! at merges; the resulting terms are hash-consed and shared.

use crate::symbols::Symbols;
use pinpoint_ir::{Cfg, FuncId, Function, Terminator};
use pinpoint_smt::{TermArena, TermId};

/// Per-block reach conditions, indexed by block id.
#[derive(Debug, Clone)]
pub struct ReachConds {
    conds: Vec<TermId>,
}

impl ReachConds {
    /// Computes reach conditions for every block of `f`.
    pub fn new(
        arena: &mut TermArena,
        symbols: &mut Symbols,
        fid: FuncId,
        f: &Function,
        cfg: &Cfg,
    ) -> Self {
        let fls = arena.fls();
        let mut conds = vec![fls; cfg.len()];
        conds[f.entry().0 as usize] = arena.tru();
        for b in cfg.topo_order(f.entry()) {
            let here = conds[b.0 as usize];
            match &f.block(b).term {
                Terminator::Jump(s) => {
                    let prev = conds[s.0 as usize];
                    conds[s.0 as usize] = arena.or2(prev, here);
                }
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let c = symbols.value_term(arena, fid, f, *cond);
                    let nc = arena.not(c);
                    for (s, edge) in [(then_bb, c), (else_bb, nc)] {
                        let with_edge = arena.and2(here, edge);
                        let prev = conds[s.0 as usize];
                        conds[s.0 as usize] = arena.or2(prev, with_edge);
                    }
                }
                _ => {}
            }
        }
        ReachConds { conds }
    }

    /// Reach condition of `b`.
    pub fn cond(&self, b: pinpoint_ir::BlockId) -> TermId {
        self.conds[b.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_ir::compile;

    #[test]
    fn join_after_diamond_reaches_true() {
        let m = compile(
            "fn f(c: bool) -> int {
                let x: int = 0;
                if (c) { x = 1; } else { x = 2; }
                return x;
            }",
        )
        .unwrap();
        let fid = m.func_by_name("f").unwrap();
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        let mut arena = TermArena::new();
        let mut sym = Symbols::new();
        let rc = ReachConds::new(&mut arena, &mut sym, fid, f, &cfg);
        // Entry reaches trivially.
        assert!(arena.is_true(rc.cond(f.entry())));
        // The join block is c ∨ ¬c = true after simplification.
        let join = f.return_block().unwrap();
        assert!(arena.is_true(rc.cond(join)));
    }

    #[test]
    fn branch_arms_get_polarity() {
        let m = compile(
            "fn f(c: bool) {
                if (c) { free(null); }
                return;
            }",
        )
        .unwrap();
        let fid = m.func_by_name("f").unwrap();
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        let mut arena = TermArena::new();
        let mut sym = Symbols::new();
        let rc = ReachConds::new(&mut arena, &mut sym, fid, f, &cfg);
        let c_term = sym.value_term(&mut arena, fid, f, f.params[0]);
        let nc = arena.not(c_term);
        // Find the arm containing the free() call.
        let arm = f
            .iter_insts()
            .find_map(|(id, i)| match i {
                pinpoint_ir::Inst::Call { callee, .. } if callee == "free" => Some(id.block),
                _ => None,
            })
            .unwrap();
        assert_eq!(rc.cond(arm), c_term);
        // The empty else arm is ¬c.
        let else_arm = cfg.succs(f.entry())[1];
        assert_eq!(rc.cond(else_arm), nc);
    }
}

#[cfg(test)]
mod nested_tests {
    use super::*;
    use pinpoint_ir::compile;
    use pinpoint_smt::{SmtResult, SmtSolver};

    /// Nested guards: the inner block's reach condition is the conjunction
    /// of both branch conditions (checked semantically via the solver).
    #[test]
    fn nested_branch_reach_is_conjunction() {
        let m = compile(
            "fn f(a: bool, b: bool) {
                if (a) {
                    if (b) {
                        free(null);
                    }
                }
                return;
            }",
        )
        .unwrap();
        let fid = m.func_by_name("f").unwrap();
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        let mut arena = TermArena::new();
        let mut sym = Symbols::new();
        let rc = ReachConds::new(&mut arena, &mut sym, fid, f, &cfg);
        let free_block = f
            .iter_insts()
            .find_map(|(id, i)| match i {
                pinpoint_ir::Inst::Call { callee, .. } if callee == "free" => Some(id.block),
                _ => None,
            })
            .unwrap();
        let reach = rc.cond(free_block);
        let a_term = sym.value_term(&mut arena, fid, f, f.params[0]);
        let b_term = sym.value_term(&mut arena, fid, f, f.params[1]);
        let mut solver = SmtSolver::new();
        // reach ∧ ¬a and reach ∧ ¬b are both unsatisfiable.
        for t in [a_term, b_term] {
            let nt = arena.not(t);
            let q = arena.and2(reach, nt);
            assert_eq!(solver.check(&arena, q), SmtResult::Unsat);
        }
        // reach ∧ a ∧ b is satisfiable.
        let q = arena.and([reach, a_term, b_term]);
        assert_eq!(solver.check(&arena, q), SmtResult::Sat);
    }

    /// Early returns: code after `if (c) { return; }` is reachable only
    /// under ¬c.
    #[test]
    fn early_return_restricts_tail() {
        let m = compile(
            "fn f(c: bool) {
                if (c) { return; }
                free(null);
                return;
            }",
        )
        .unwrap();
        let fid = m.func_by_name("f").unwrap();
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        let mut arena = TermArena::new();
        let mut sym = Symbols::new();
        let rc = ReachConds::new(&mut arena, &mut sym, fid, f, &cfg);
        let free_block = f
            .iter_insts()
            .find_map(|(id, i)| match i {
                pinpoint_ir::Inst::Call { callee, .. } if callee == "free" => Some(id.block),
                _ => None,
            })
            .unwrap();
        let reach = rc.cond(free_block);
        let c_term = sym.value_term(&mut arena, fid, f, f.params[0]);
        let mut solver = SmtSolver::new();
        let q = arena.and2(reach, c_term);
        assert_eq!(
            solver.check(&arena, q),
            SmtResult::Unsat,
            "the tail requires ¬c"
        );
    }
}
