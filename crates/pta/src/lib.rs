//! `pinpoint-pta`: the points-to substrate of the Pinpoint reproduction
//! (PLDI 2018).
//!
//! Pinpoint's "holistic" design replaces the conventional independent
//! whole-program points-to stage with a cheap, function-local analysis
//! whose expensive inter-procedural parts are delayed to bug-detection
//! time. This crate provides both sides of that comparison:
//!
//! * [`intra`] — the **quasi path-sensitive points-to analysis**
//!   (§3.1.1): flow-sensitive, guarded facts pruned by the linear-time
//!   contradiction solver, producing conditional memory def-use edges and
//!   Mod/Ref sets;
//! * [`transform`] — the **connector model** (§3.1.2, Fig. 3): Aux formal
//!   parameters and Aux return values that expose non-local side effects
//!   on function interfaces, plus the matching call-site rewriting;
//! * [`driver`] — the bottom-up module pipeline combining the two;
//! * [`andersen`] — a whole-program, flow- and context-insensitive
//!   inclusion-based points-to analysis: the substrate of the *layered*
//!   baseline (SVF-style) that the paper's evaluation compares against;
//! * [`symbols`], [`reach`], [`object`] — shared condition and memory
//!   vocabulary.
//!
//! # Examples
//!
//! ```
//! let mut module = pinpoint_ir::compile(
//!     "fn bar(q: int**) {
//!         let c: int* = malloc();
//!         if (*q != null) { *q = c; free(c); }
//!         return;
//!     }",
//! ).unwrap();
//! let analysis = pinpoint_pta::analyze_module(&mut module);
//! let bar = module.func_by_name("bar").unwrap();
//! // *q is both referenced and modified: bar gains the X/Y connectors
//! // of the paper's Fig. 2.
//! assert_eq!(analysis.shape(bar).aux_params.len(), 1);
//! assert_eq!(analysis.shape(bar).aux_rets.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod andersen;
pub mod driver;
pub mod incremental;
pub mod intra;
pub mod object;
pub mod reach;
pub mod symbols;
pub mod transform;

pub use driver::{
    analyze_module, analyze_module_cached, analyze_module_par, analyze_module_with, ArtifactStore,
    CacheOutcome, FuncArtifact, ModuleAnalysis, PtaConfig,
};
pub use incremental::{
    analyze_module_incremental, analyze_module_incremental_dirty, dirty_closure, IncrementalOutcome,
};
pub use intra::{FuncPta, GlobalAccess, MemDep, PtaStats};
pub use object::{AccessPath, Obj, MAX_PATH_DEPTH};
pub use symbols::{Symbols, SymbolsMark};
pub use transform::AuxShape;
