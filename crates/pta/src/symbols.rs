//! Symbolisation of SSA values into condition terms.
//!
//! The SEG's operator vertices (Def. 3.2, Example 3.3) are realised here
//! as hash-consed terms: a boolean SSA value like `θ₃ = (X ≠ 0)` is mapped
//! to the term `ne(X, 0)` whose sub-structure is shared across every
//! condition mentioning it. Values whose definitions are opaque to the
//! condition language (loads, φ, calls, allocations) become fresh
//! uninterpreted variables; their data dependences are added separately by
//! the SEG's `DD(·)` constraints (Example 3.7).
//!
//! Variable names are qualified as `f{fid}.v{vid}` so terms from different
//! functions can coexist in the module-wide arena; the bug-detection stage
//! appends a context suffix when cloning summaries (§3.3.1 achieves
//! context-sensitivity by cloning).

use pinpoint_ir::{Const, FuncId, Function, Inst, UnOp, ValueId};
use pinpoint_smt::{Sort, TermArena, TermId};
use std::collections::HashMap;

/// Caches value terms for a whole module.
#[derive(Debug, Default, Clone)]
pub struct Symbols {
    map: HashMap<(FuncId, ValueId), TermId>,
    origins: HashMap<TermId, (FuncId, ValueId)>,
    /// Insertion journal for [`Symbols::checkpoint`]/[`Symbols::rollback`]:
    /// every key added to `map` or `origins`, in order. Rolling back
    /// removes exactly the journalled keys — a term-id threshold would be
    /// wrong, because a post-checkpoint cache entry can map to a
    /// *pre-existing* term and must still be evicted so a later
    /// re-derivation replays the same arena insertions.
    journal: Vec<JournalEntry>,
}

#[derive(Debug, Clone, Copy)]
enum JournalEntry {
    Map(FuncId, ValueId),
    Origin(TermId),
}

/// Opaque checkpoint of a [`Symbols`] cache (see [`Symbols::checkpoint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymbolsMark(usize);

impl Symbols {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a checkpoint for [`Symbols::rollback`].
    pub fn checkpoint(&self) -> SymbolsMark {
        SymbolsMark(self.journal.len())
    }

    /// Removes every cache entry created after `mark`, restoring the cache
    /// to exactly its checkpointed state. Pairs with
    /// [`pinpoint_smt::TermArena::truncate_to`] so a detection query can
    /// use shared state as private scratch.
    pub fn rollback(&mut self, mark: SymbolsMark) {
        while self.journal.len() > mark.0 {
            match self.journal.pop().expect("journal length checked") {
                JournalEntry::Map(f, v) => {
                    self.map.remove(&(f, v));
                }
                JournalEntry::Origin(t) => {
                    self.origins.remove(&t);
                }
            }
        }
    }

    /// Number of cached value terms.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if nothing has been cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The values of `fid` with cached terms, sorted — the deterministic
    /// iteration order the parallel merge uses to re-derive a worker's
    /// symbols against the shared arena.
    pub fn cached_values(&self, fid: FuncId) -> Vec<ValueId> {
        let mut vs: Vec<ValueId> = self
            .map
            .keys()
            .filter(|(f, _)| *f == fid)
            .map(|&(_, v)| v)
            .collect();
        vs.sort_unstable();
        vs
    }

    /// Drops every cached term of function `fid` — required when a
    /// function's IR is replaced (incremental re-analysis): the same
    /// `ValueId`s may now mean different things.
    pub fn invalidate_function(&mut self, fid: FuncId) {
        self.map.retain(|&(f, _), _| f != fid);
        self.origins.retain(|_, &mut (f, _)| f != fid);
        // Bulk removal cannot be replayed entry-wise; outstanding
        // checkpoints are void after an invalidation (none are held across
        // incremental updates).
        self.journal.clear();
    }

    /// The value whose opaque variable `t` is, if any. Terms with
    /// structure (comparisons, arithmetic) have no single origin; only the
    /// uninterpreted variables introduced for parameters, loads, φ, calls,
    /// and allocations do.
    pub fn origin(&self, t: TermId) -> Option<(FuncId, ValueId)> {
        self.origins.get(&t).copied()
    }

    /// Canonical variable name for a value of a function.
    pub fn var_name(fid: FuncId, v: ValueId) -> String {
        format!("f{}.v{}", fid.0, v.0)
    }

    /// The SMT sort corresponding to a value's type (pointers are ints).
    pub fn sort_of(f: &Function, v: ValueId) -> Sort {
        match f.ty(v) {
            pinpoint_ir::Type::Bool => Sort::Bool,
            _ => Sort::Int,
        }
    }

    /// Returns the term for `v`, building it on first use.
    ///
    /// Transparent definitions (constants, copies, binary and unary
    /// operations) are expanded structurally; everything else becomes an
    /// uninterpreted variable.
    pub fn value_term(
        &mut self,
        arena: &mut TermArena,
        fid: FuncId,
        f: &Function,
        v: ValueId,
    ) -> TermId {
        if let Some(&t) = self.map.get(&(fid, v)) {
            return t;
        }
        // Insert a placeholder var first to break accidental cycles (SSA
        // is acyclic, but recursion depth stays bounded regardless).
        let term = self.build(arena, fid, f, v);
        self.map.insert((fid, v), term);
        self.journal.push(JournalEntry::Map(fid, v));
        term
    }

    fn opaque(&mut self, arena: &mut TermArena, fid: FuncId, f: &Function, v: ValueId) -> TermId {
        let t = arena.var(Self::var_name(fid, v), Self::sort_of(f, v));
        if self.origins.insert(t, (fid, v)).is_none() {
            self.journal.push(JournalEntry::Origin(t));
        }
        t
    }

    fn build(&mut self, arena: &mut TermArena, fid: FuncId, f: &Function, v: ValueId) -> TermId {
        let info = f.value(v);
        let Some(def) = info.def else {
            // Parameter or undefined: opaque.
            return self.opaque(arena, fid, f, v);
        };
        match f.inst(def).clone() {
            Inst::Const { value, .. } => match value {
                Const::Int(k) => arena.int(k),
                Const::Bool(b) => arena.bool_const(b),
                // The null pointer is the integer 0 (so `p != null`
                // becomes `p ≠ 0`).
                Const::Null => arena.int(0),
            },
            Inst::Copy { src, .. } => self.value_term(arena, fid, f, src),
            Inst::Un { op, operand, .. } => {
                let o = self.value_term(arena, fid, f, operand);
                match op {
                    UnOp::Neg => arena.neg(o),
                    UnOp::Not => arena.not(o),
                }
            }
            Inst::Bin { op, lhs, rhs, .. } => {
                let l = self.value_term(arena, fid, f, lhs);
                let r = self.value_term(arena, fid, f, rhs);
                use pinpoint_ir::BinOp;
                match op {
                    BinOp::Add => arena.add2(l, r),
                    BinOp::Sub => arena.sub(l, r),
                    BinOp::Mul => arena.mul(l, r),
                    BinOp::Eq => arena.eq(l, r),
                    BinOp::Ne => arena.ne(l, r),
                    BinOp::Lt => arena.lt(l, r),
                    BinOp::Le => arena.le(l, r),
                    BinOp::And => arena.and2(l, r),
                    BinOp::Or => arena.or2(l, r),
                }
            }
            // Loads, φ, calls, allocations, global addresses: opaque.
            _ => self.opaque(arena, fid, f, v),
        }
    }

    /// Converts a gating condition into a term.
    pub fn gate_term(
        &mut self,
        arena: &mut TermArena,
        fid: FuncId,
        f: &Function,
        gate: &pinpoint_ir::Gate,
    ) -> TermId {
        match gate {
            pinpoint_ir::Gate::True => arena.tru(),
            pinpoint_ir::Gate::Lit(v, pol) => {
                let t = self.value_term(arena, fid, f, *v);
                if *pol {
                    t
                } else {
                    arena.not(t)
                }
            }
            pinpoint_ir::Gate::And(xs) => {
                let ts: Vec<TermId> = xs
                    .iter()
                    .map(|g| self.gate_term(arena, fid, f, g))
                    .collect();
                arena.and(ts)
            }
            pinpoint_ir::Gate::Or(xs) => {
                let ts: Vec<TermId> = xs
                    .iter()
                    .map(|g| self.gate_term(arena, fid, f, g))
                    .collect();
                arena.or(ts)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_ir::compile;

    #[test]
    fn comparison_expands_structurally() {
        let m = compile(
            "fn f(q: int**) -> bool {
                let x: int* = *q;
                let t: bool = x != null;
                return t;
            }",
        )
        .unwrap();
        let fid = m.func_by_name("f").unwrap();
        let f = m.func(fid);
        let mut arena = TermArena::new();
        let mut sym = Symbols::new();
        let ret = f.return_values()[0];
        let t = sym.value_term(&mut arena, fid, f, ret);
        // t expands to (not (= load 0)): the load stays opaque, the
        // comparison is structural.
        let printed = arena.display(t);
        assert!(printed.contains("(not (="), "got {printed}");
        assert!(printed.contains(" 0)"), "got {printed}");
    }

    #[test]
    fn copies_are_transparent() {
        let m = compile(
            "fn f(a: int) -> int {
                let b: int = a;
                let c: int = b;
                return c;
            }",
        )
        .unwrap();
        let fid = m.func_by_name("f").unwrap();
        let f = m.func(fid);
        let mut arena = TermArena::new();
        let mut sym = Symbols::new();
        let ret = f.return_values()[0];
        let t_ret = sym.value_term(&mut arena, fid, f, ret);
        let t_a = sym.value_term(&mut arena, fid, f, f.params[0]);
        assert_eq!(t_ret, t_a, "copy chains collapse to the parameter");
    }

    #[test]
    fn arithmetic_folds_through_terms() {
        let m = compile("fn f() -> int { return 2 + 3 * 4; }").unwrap();
        let fid = m.func_by_name("f").unwrap();
        let f = m.func(fid);
        let mut arena = TermArena::new();
        let mut sym = Symbols::new();
        let ret = f.return_values()[0];
        let t = sym.value_term(&mut arena, fid, f, ret);
        assert_eq!(arena.display(t), "14");
    }

    #[test]
    fn phi_is_opaque() {
        let m = compile(
            "fn f(c: bool) -> int {
                let x: int = 0;
                if (c) { x = 1; } else { x = 2; }
                return x;
            }",
        )
        .unwrap();
        let fid = m.func_by_name("f").unwrap();
        let f = m.func(fid);
        let mut arena = TermArena::new();
        let mut sym = Symbols::new();
        let ret = f.return_values()[0];
        let t = sym.value_term(&mut arena, fid, f, ret);
        assert!(arena.display(t).starts_with("f0.v"), "φ must be opaque");
    }

    #[test]
    fn names_qualified_by_function() {
        assert_eq!(Symbols::var_name(FuncId(3), ValueId(7)), "f3.v7");
    }

    #[test]
    fn rollback_restores_cache_and_arena_replay() {
        let m = compile(
            "fn f(q: int**) -> bool {
                let x: int* = *q;
                let t: bool = x != null;
                return t;
            }",
        )
        .unwrap();
        let fid = m.func_by_name("f").unwrap();
        let f = m.func(fid);
        let mut arena = TermArena::new();
        let mut sym = Symbols::new();
        // Base state: the parameter's term.
        let base = sym.value_term(&mut arena, fid, f, f.params[0]);
        let sym_mark = sym.checkpoint();
        let arena_mark = arena.mark();
        let arena_len = arena.len();
        let cached = sym.len();
        // Scratch: symbolise the return value (creates the load var and
        // the comparison structure).
        let ret = f.return_values()[0];
        let t1 = sym.value_term(&mut arena, fid, f, ret);
        let printed1 = arena.display(t1);
        sym.rollback(sym_mark);
        arena.truncate_to(arena_mark);
        assert_eq!(sym.len(), cached);
        assert_eq!(arena.len(), arena_len);
        assert_eq!(sym.value_term(&mut arena, fid, f, f.params[0]), base);
        // Re-derivation replays the identical layout: same term id, same
        // structure. This is the invariant parallel detection relies on.
        let t2 = sym.value_term(&mut arena, fid, f, ret);
        assert_eq!(t1, t2);
        assert_eq!(arena.display(t2), printed1);
    }

    #[test]
    fn cached_values_sorted_per_function() {
        let m = compile(
            "fn a(x: int) -> int { return x + 1; }
             fn b(y: int) -> int { return y + 2; }",
        )
        .unwrap();
        let fa = m.func_by_name("a").unwrap();
        let fb = m.func_by_name("b").unwrap();
        let mut arena = TermArena::new();
        let mut sym = Symbols::new();
        for (fid, f) in m.iter_funcs() {
            let ret = f.return_values()[0];
            sym.value_term(&mut arena, fid, f, ret);
        }
        let va = sym.cached_values(fa);
        assert!(!va.is_empty());
        assert!(va.windows(2).all(|w| w[0] < w[1]), "sorted: {va:?}");
        assert!(!sym.cached_values(fb).is_empty());
    }
}
