//! The quasi path-sensitive intra-procedural points-to analysis (§3.1.1).
//!
//! The analysis is flow-sensitive over the acyclic SSA CFG and *guarded*:
//! every points-to fact and every memory content carries the condition
//! under which it holds, so a single pass in topological order is fully
//! path-aware without per-block state copies. A store under reach
//! condition `θ` to an object the pointer targets under `c` adds the entry
//! `(src, θ ∧ c)` and weakens every older entry by `∧ ¬(θ ∧ c)`; a load
//! pairs the pointer's target conditions with the surviving entries.
//!
//! Conditions that contain an apparent contradiction (`a ∧ ¬a`) are pruned
//! on the spot by the paper's linear-time solver — *quasi* path
//! sensitivity: no SMT solving happens here, but most infeasible-path
//! facts never survive into the SEG.

use crate::object::{AccessPath, Obj, MAX_PATH_DEPTH};
use crate::reach::ReachConds;
use crate::symbols::Symbols;
use pinpoint_ir::{
    intrinsics, Cfg, DomTree, FuncId, Function, Gating, GlobalId, Inst, InstId, ValueId,
};
use pinpoint_smt::{LinearSolver, LinearVerdict, TermArena, TermId};
use std::collections::HashMap;

/// A conditional memory dependence: the value stored at `store_site` flows
/// to the value loaded at `load_site` when `cond` holds.
///
/// These are exactly the pointer-induced data-dependence edges of the SEG
/// ("connecting the load `p ← *q` to the store `*u ← w` if `*q` and `*u`
/// are aliased").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemDep {
    /// The store instruction (or `None` for Aux-entry initialisation that
    /// has no explicit site).
    pub store_site: InstId,
    /// The stored SSA value.
    pub src: ValueId,
    /// The load instruction.
    pub load_site: InstId,
    /// The loaded SSA value.
    pub dst: ValueId,
    /// Condition on which the dependence holds.
    pub cond: TermId,
}

/// A store into / load from a global cell (stitched across functions by
/// the global value-flow analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalAccess {
    /// Which global.
    pub global: GlobalId,
    /// The stored or loaded SSA value.
    pub value: ValueId,
    /// Condition on which the access happens (reach ∧ target).
    pub cond: TermId,
    /// The access site.
    pub site: InstId,
}

/// Counters reported by the evaluation harness.
#[derive(Debug, Default, Clone, Copy)]
pub struct PtaStats {
    /// Dependence/points-to facts pruned by the linear solver.
    pub pruned: u64,
    /// Facts kept.
    pub kept: u64,
    /// Linear-solver calls.
    pub linear_checks: u64,
}

impl PtaStats {
    /// Publishes the counters into the unified metrics registry under the
    /// `pta.` stage prefix.
    pub fn record_into(&self, metrics: &mut pinpoint_obs::MetricsRegistry) {
        metrics.counter_add("pta.pruned", self.pruned);
        metrics.counter_add("pta.kept", self.kept);
        metrics.counter_add("pta.linear_checks", self.linear_checks);
    }
}

/// Result of analysing one function.
#[derive(Debug, Default)]
pub struct FuncPta {
    /// Conditional memory def-use edges.
    pub mem_deps: Vec<MemDep>,
    /// Final guarded points-to sets.
    pub points_to: HashMap<ValueId, Vec<(Obj, TermId)>>,
    /// Referenced parameter-rooted access paths (Mod/Ref "REF").
    pub refs: Vec<AccessPath>,
    /// Modified parameter-rooted access paths (Mod/Ref "MOD").
    pub mods: Vec<AccessPath>,
    /// Stores into global cells.
    pub global_stores: Vec<GlobalAccess>,
    /// Loads out of global cells.
    pub global_loads: Vec<GlobalAccess>,
    /// Prune statistics.
    pub stats: PtaStats,
}

impl FuncPta {
    /// Guarded points-to set of `v` (empty slice when untracked).
    pub fn pt(&self, v: ValueId) -> &[(Obj, TermId)] {
        self.points_to.get(&v).map_or(&[], Vec::as_slice)
    }
}

/// Memory content entry: a stored value or the symbolic initial content of
/// a parameter pseudo-object (which points one level down the chain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemVal {
    /// An SSA value stored by `InstId`.
    Value(ValueId, InstId),
    /// Initial (caller-provided) content pointing to the next pseudo
    /// object in the chain.
    InitialPtr(Obj),
}

/// Aux formal parameters registered before the second analysis pass:
/// `(path, value)` — the value `F_i` holds the initial content of
/// `*(v_root, depth)`.
#[derive(Debug, Clone, Copy)]
pub struct AuxParamBinding {
    /// The access path this Aux formal covers.
    pub path: AccessPath,
    /// The Aux formal parameter value.
    pub value: ValueId,
}

/// Runs the quasi path-sensitive points-to analysis over `f`.
///
/// `aux_params` communicates the Fig. 3 connectors inserted by the
/// transformation pass: each Aux formal parameter for path `*(p, k)`
/// points (if pointer-typed) to the pseudo object `*(p, k+1)`.
pub fn analyze_function(
    arena: &mut TermArena,
    symbols: &mut Symbols,
    linear: &mut LinearSolver,
    fid: FuncId,
    f: &Function,
    aux_params: &[AuxParamBinding],
) -> FuncPta {
    analyze_function_with(arena, symbols, linear, fid, f, aux_params, true)
}

/// Like [`analyze_function`], with the linear-time pruning switchable —
/// `prune = false` is the "no quasi path sensitivity" ablation: every
/// guarded fact is kept regardless of apparent contradictions.
#[allow(clippy::too_many_arguments)]
pub fn analyze_function_with(
    arena: &mut TermArena,
    symbols: &mut Symbols,
    linear: &mut LinearSolver,
    fid: FuncId,
    f: &Function,
    aux_params: &[AuxParamBinding],
    prune: bool,
) -> FuncPta {
    let cfg = Cfg::new(f);
    let dom = DomTree::dominators(f, &cfg);
    let gating = Gating::new(f, &cfg, &dom);
    let reach = ReachConds::new(arena, symbols, fid, f, &cfg);
    let mut st = State {
        arena,
        symbols,
        linear,
        fid,
        f,
        prune,
        pt: HashMap::new(),
        mem: HashMap::new(),
        out: FuncPta::default(),
    };
    // Parameter pseudo-chains: every pointer-typed original parameter
    // points to its depth-1 pseudo object; Aux formals point one past
    // their path.
    let aux_values: Vec<ValueId> = aux_params.iter().map(|b| b.value).collect();
    for (i, &p) in f.params.iter().enumerate() {
        if aux_values.contains(&p) {
            continue;
        }
        if f.ty(p).is_ptr() {
            let t = st.arena.tru();
            st.pt.insert(
                p,
                vec![(
                    Obj::Param {
                        root: i as u32,
                        depth: 1,
                    },
                    t,
                )],
            );
        }
    }
    for b in aux_params {
        if f.ty(b.value).is_ptr() && b.path.depth < MAX_PATH_DEPTH {
            let t = st.arena.tru();
            st.pt.insert(
                b.value,
                vec![(
                    Obj::Param {
                        root: b.path.root,
                        depth: b.path.depth + 1,
                    },
                    t,
                )],
            );
        }
    }
    // Single pass in topological order.
    for b in cfg.topo_order(f.entry()) {
        let theta = reach.cond(b);
        for (idx, inst) in f.block(b).insts.iter().enumerate() {
            let site = InstId {
                block: b,
                index: idx as u32,
            };
            st.step(site, inst, theta, &gating);
        }
    }
    let mut out = st.finish();
    out.refs.sort_unstable();
    out.refs.dedup();
    out.mods.sort_unstable();
    out.mods.dedup();
    out
}

struct State<'a> {
    arena: &'a mut TermArena,
    symbols: &'a mut Symbols,
    linear: &'a mut LinearSolver,
    fid: FuncId,
    f: &'a Function,
    prune: bool,
    /// Guarded points-to sets of SSA values.
    pt: HashMap<ValueId, Vec<(Obj, TermId)>>,
    /// Guarded memory contents.
    mem: HashMap<Obj, Vec<(MemVal, TermId)>>,
    out: FuncPta,
}

impl<'a> State<'a> {
    fn finish(mut self) -> FuncPta {
        self.out.points_to = self.pt;
        self.out
    }

    /// Guarded conjunction with on-the-spot pruning; `None` when the
    /// linear solver refutes the conjunction.
    fn conjoin(&mut self, a: TermId, b: TermId) -> Option<TermId> {
        let c = self.arena.and2(a, b);
        if !self.prune {
            if self.arena.is_false(c) {
                return None; // structurally false facts are never useful
            }
            self.out.stats.kept += 1;
            return Some(c);
        }
        self.out.stats.linear_checks += 1;
        match self.linear.check(self.arena, c) {
            LinearVerdict::Unsat => {
                self.out.stats.pruned += 1;
                None
            }
            LinearVerdict::Unknown => {
                self.out.stats.kept += 1;
                Some(c)
            }
        }
    }

    /// Quasi path-sensitive feasibility probe: `true` unless the linear
    /// solver refutes `a ∧ b`. Unlike [`State::conjoin`] the conjunction is
    /// only tested, not returned — used to prune a dependence against the
    /// consuming statement's reach condition without baking that condition
    /// into the edge label (the SEG adds control dependence separately).
    fn feasible(&mut self, a: TermId, b: TermId) -> bool {
        if !self.prune {
            return true;
        }
        let c = self.arena.and2(a, b);
        self.out.stats.linear_checks += 1;
        match self.linear.check(self.arena, c) {
            LinearVerdict::Unsat => {
                self.out.stats.pruned += 1;
                false
            }
            LinearVerdict::Unknown => true,
        }
    }

    fn pt_of(&self, v: ValueId) -> Vec<(Obj, TermId)> {
        self.pt.get(&v).cloned().unwrap_or_default()
    }

    /// Initial memory contents of a pseudo-object chain (lazy).
    fn mem_entries(&mut self, o: Obj) -> Vec<(MemVal, TermId)> {
        if let Some(e) = self.mem.get(&o) {
            return e.clone();
        }
        let init = match o {
            Obj::Param { depth, .. } if depth < MAX_PATH_DEPTH => {
                let next = o.next_in_chain().expect("param chains extend");
                let t = self.arena.tru();
                vec![(MemVal::InitialPtr(next), t)]
            }
            _ => Vec::new(),
        };
        self.mem.insert(o, init.clone());
        init
    }

    /// Objects targeted by dereferencing `ptr` exactly `depth` times,
    /// recording REF paths for intermediate reads.
    ///
    /// Depth 1 returns `pt(ptr)`. Depth k > 1 reads the contents of the
    /// depth-(k−1) targets and resolves them to objects.
    fn targets_at_depth(
        &mut self,
        ptr: ValueId,
        depth: u32,
        record_ref: bool,
    ) -> Vec<(Obj, TermId)> {
        let mut cur = self.pt_of(ptr);
        for _level in 1..depth {
            let mut next: Vec<(Obj, TermId)> = Vec::new();
            for (o, c) in cur {
                if record_ref {
                    self.record_ref(o);
                }
                for (val, vc) in self.mem_entries(o) {
                    let Some(cc) = self.conjoin(c, vc) else {
                        continue;
                    };
                    match val {
                        MemVal::InitialPtr(o2) => push_target(&mut next, o2, cc, self.arena),
                        MemVal::Value(v, _) => {
                            for (o2, c2) in self.pt_of(v) {
                                if let Some(c3) = self.conjoin(cc, c2) {
                                    push_target(&mut next, o2, c3, self.arena);
                                }
                            }
                        }
                    }
                }
            }
            cur = next;
        }
        cur
    }

    fn record_ref(&mut self, o: Obj) {
        if let Obj::Param { root, depth } = o {
            if depth <= MAX_PATH_DEPTH {
                self.out.refs.push(AccessPath { root, depth });
            }
        }
    }

    fn record_mod(&mut self, o: Obj) {
        if let Obj::Param { root, depth } = o {
            if depth <= MAX_PATH_DEPTH {
                self.out.mods.push(AccessPath { root, depth });
            }
        }
    }

    fn step(&mut self, site: InstId, inst: &Inst, theta: TermId, gating: &Gating) {
        match inst {
            Inst::Const { .. } => {}
            Inst::Copy { dst, src } => {
                let p = self.pt_of(*src);
                if !p.is_empty() {
                    self.pt.insert(*dst, p);
                }
            }
            Inst::Phi { dst, incomings } => {
                let mut set: Vec<(Obj, TermId)> = Vec::new();
                for &(pred, v) in incomings {
                    let gate = gating.gate(site.block, pred);
                    let g = self.symbols.gate_term(self.arena, self.fid, self.f, &gate);
                    for (o, c) in self.pt_of(v) {
                        if let Some(cc) = self.conjoin(g, c) {
                            push_target(&mut set, o, cc, self.arena);
                        }
                    }
                }
                if !set.is_empty() {
                    self.pt.insert(*dst, set);
                }
            }
            Inst::Bin { .. } | Inst::Un { .. } => {}
            Inst::Alloc { dst } => {
                let t = self.arena.tru();
                self.pt.insert(*dst, vec![(Obj::Alloc(site), t)]);
                self.mem.entry(Obj::Alloc(site)).or_default();
            }
            Inst::GlobalAddr { dst, global } => {
                let t = self.arena.tru();
                self.pt.insert(*dst, vec![(Obj::Global(*global), t)]);
                self.mem.entry(Obj::Global(*global)).or_default();
            }
            Inst::Load { dst, ptr, depth } => {
                let targets = self.targets_at_depth(*ptr, *depth, true);
                let mut new_pt: Vec<(Obj, TermId)> = Vec::new();
                for (o, c) in targets {
                    self.record_ref(o);
                    if let Obj::Global(g) = o {
                        self.out.global_loads.push(GlobalAccess {
                            global: g,
                            value: *dst,
                            cond: c,
                            site,
                        });
                    }
                    for (val, vc) in self.mem_entries(o) {
                        let Some(cc) = self.conjoin(c, vc) else {
                            continue;
                        };
                        if !self.feasible(theta, cc) {
                            continue; // infeasible on every path to this load
                        }
                        match val {
                            MemVal::Value(v, store_site) => {
                                self.out.mem_deps.push(MemDep {
                                    store_site,
                                    src: v,
                                    load_site: site,
                                    dst: *dst,
                                    cond: cc,
                                });
                                for (o2, c2) in self.pt_of(v) {
                                    if let Some(c3) = self.conjoin(cc, c2) {
                                        push_target(&mut new_pt, o2, c3, self.arena);
                                    }
                                }
                            }
                            MemVal::InitialPtr(o2) => {
                                push_target(&mut new_pt, o2, cc, self.arena);
                            }
                        }
                    }
                }
                if !new_pt.is_empty() {
                    self.pt.insert(*dst, new_pt);
                }
            }
            Inst::Store { ptr, depth, src } => {
                let targets = self.targets_at_depth(*ptr, *depth, true);
                for (o, c) in targets {
                    self.record_mod(o);
                    let Some(guard) = self.conjoin(theta, c) else {
                        continue;
                    };
                    if let Obj::Global(g) = o {
                        self.out.global_stores.push(GlobalAccess {
                            global: g,
                            value: *src,
                            cond: guard,
                            site,
                        });
                    }
                    let not_guard = self.arena.not(guard);
                    let mut entries = self.mem_entries(o);
                    // Weaken survivors, dropping refuted ones.
                    let mut kept: Vec<(MemVal, TermId)> = Vec::new();
                    for (val, vc) in entries.drain(..) {
                        if let Some(weak) = self.conjoin(vc, not_guard) {
                            kept.push((val, weak));
                        }
                    }
                    kept.push((MemVal::Value(*src, site), guard));
                    self.mem.insert(o, kept);
                }
            }
            Inst::Call { dsts, callee, .. } => {
                // Receivers of pointer type get a unique external object so
                // later loads/stores through them alias consistently.
                if intrinsics::is_intrinsic(callee) {
                    return;
                }
                for (i, &d) in dsts.iter().enumerate() {
                    if self.f.ty(d).is_ptr() {
                        let t = self.arena.tru();
                        self.pt.insert(d, vec![(Obj::External(site, i as u32), t)]);
                        self.mem.entry(Obj::External(site, i as u32)).or_default();
                    }
                }
            }
        }
    }
}

/// Inserts `(obj, cond)` into a guarded set, disjoining conditions for an
/// existing object.
fn push_target(set: &mut Vec<(Obj, TermId)>, o: Obj, c: TermId, arena: &mut TermArena) {
    for (eo, ec) in set.iter_mut() {
        if *eo == o {
            *ec = arena.or2(*ec, c);
            return;
        }
    }
    set.push((o, c));
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_ir::compile;

    fn analyze(src: &str, name: &str) -> (FuncPta, TermArena, pinpoint_ir::Module) {
        let m = compile(src).unwrap();
        let fid = m.func_by_name(name).unwrap();
        let mut arena = TermArena::new();
        let mut sym = Symbols::new();
        let mut lin = LinearSolver::new();
        let pta = analyze_function(&mut arena, &mut sym, &mut lin, fid, m.func(fid), &[]);
        (pta, arena, m)
    }

    #[test]
    fn store_load_through_alloc() {
        let (pta, arena, m) = analyze(
            "fn f(a: int*) -> int* {
                let p: int** = malloc();
                *p = a;
                let q: int* = *p;
                return q;
            }",
            "f",
        );
        assert_eq!(pta.mem_deps.len(), 1);
        let dep = pta.mem_deps[0];
        let f = m.func(m.func_by_name("f").unwrap());
        assert_eq!(f.value(dep.src).name, "a");
        assert!(arena.is_true(dep.cond));
    }

    #[test]
    fn conditional_stores_get_guards() {
        let (pta, arena, m) = analyze(
            "fn f(c: bool, a: int*, b: int*) -> int* {
                let p: int** = malloc();
                if (c) { *p = a; } else { *p = b; }
                let q: int* = *p;
                return q;
            }",
            "f",
        );
        assert_eq!(pta.mem_deps.len(), 2, "both stores may reach the load");
        let f = m.func(m.func_by_name("f").unwrap());
        for dep in &pta.mem_deps {
            let name = &f.value(dep.src).name;
            assert!(name == "a" || name == "b");
            assert!(!arena.is_true(dep.cond), "guards must be conditional");
        }
    }

    #[test]
    fn same_branch_load_prunes_sibling_store() {
        // Load inside the then-branch must not see the else-branch store:
        // c ∧ ¬c is pruned by the linear solver.
        let (pta, _arena, m) = analyze(
            "fn f(c: bool, a: int*, b: int*) -> int* {
                let p: int** = malloc();
                *p = a;
                if (c) {
                    let q: int* = *p;
                    print(q);
                } else {
                    *p = b;
                }
                return a;
            }",
            "f",
        );
        let f = m.func(m.func_by_name("f").unwrap());
        // The only dep into q is from the unconditional store of a.
        let q_deps: Vec<_> = pta
            .mem_deps
            .iter()
            .filter(|d| f.value(d.dst).name == "ld" || f.value(d.dst).name == "q")
            .collect();
        assert_eq!(q_deps.len(), 1);
        assert_eq!(f.value(q_deps[0].src).name, "a");
        assert!(
            pta.stats.pruned > 0,
            "the sibling store kill must be pruned"
        );
    }

    #[test]
    fn overwrite_kills_previous_store() {
        let (pta, _arena, m) = analyze(
            "fn f(a: int*, b: int*) -> int* {
                let p: int** = malloc();
                *p = a;
                *p = b;
                let q: int* = *p;
                return q;
            }",
            "f",
        );
        let f = m.func(m.func_by_name("f").unwrap());
        // Only b can reach q: the unconditional second store kills a.
        let deps: Vec<_> = pta.mem_deps.iter().collect();
        assert_eq!(deps.len(), 1, "killed store pruned: {deps:?}");
        assert_eq!(f.value(deps[0].src).name, "b");
    }

    #[test]
    fn param_refs_and_mods_collected() {
        let (pta, _arena, _m) = analyze(
            "fn bar(q: int**) {
                let c: int* = malloc();
                let t: bool = *q != null;
                if (t) { *q = c; free(c); }
                return;
            }",
            "bar",
        );
        assert!(pta.refs.contains(&AccessPath { root: 0, depth: 1 }));
        assert!(pta.mods.contains(&AccessPath { root: 0, depth: 1 }));
    }

    #[test]
    fn read_only_param_not_in_mods() {
        let (pta, _arena, _m) = analyze(
            "fn f(q: int**) -> int* {
                let x: int* = *q;
                return x;
            }",
            "f",
        );
        assert_eq!(pta.refs, vec![AccessPath { root: 0, depth: 1 }]);
        assert!(pta.mods.is_empty());
    }

    #[test]
    fn depth_two_paths_tracked() {
        let (pta, _arena, _m) = analyze(
            "fn f(q: int***) {
                **q = null;
                return;
            }",
            "f",
        );
        // Writing **q modifies *(q,2) and references *(q,1).
        assert!(pta.mods.contains(&AccessPath { root: 0, depth: 2 }));
        assert!(pta.refs.contains(&AccessPath { root: 0, depth: 1 }));
    }

    #[test]
    fn phi_merges_guarded_points_to() {
        let (pta, _arena, m) = analyze(
            "fn f(c: bool) -> int* {
                let p: int* = malloc();
                let q: int* = malloc();
                let r: int* = null;
                if (c) { r = p; } else { r = q; }
                return r;
            }",
            "f",
        );
        let f = m.func(m.func_by_name("f").unwrap());
        let ret = f.return_values()[0];
        let pt = pta.pt(ret);
        assert_eq!(pt.len(), 2, "r points to both allocs, guarded: {pt:?}");
    }

    #[test]
    fn globals_recorded() {
        let (pta, _arena, _m) = analyze(
            "global g: int;
             fn f(p: int**) {
                *p = g;
                return;
             }",
            "f",
        );
        // g's address is stored into *p (a param path): a MOD, and no
        // global store (we store the global's address, not into it).
        assert!(pta.mods.contains(&AccessPath { root: 0, depth: 1 }));
        assert!(pta.global_stores.is_empty());
    }

    #[test]
    fn store_into_global_cell_recorded() {
        let (pta, _arena, _m) = analyze(
            "global g: int;
             fn f(x: int) {
                *g = x;
                return;
             }",
            "f",
        );
        assert_eq!(pta.global_stores.len(), 1);
    }

    #[test]
    fn aux_param_binding_extends_chain() {
        // With an aux binding for *(q,1), the aux value points to *(q,2).
        let m = compile(
            "fn f(q: int**, aux: int*) -> int {
                let x: int = *aux;
                return x;
            }",
        )
        .unwrap();
        let fid = m.func_by_name("f").unwrap();
        let f = m.func(fid);
        let mut arena = TermArena::new();
        let mut sym = Symbols::new();
        let mut lin = LinearSolver::new();
        let aux = f.params[1];
        let pta = analyze_function(
            &mut arena,
            &mut sym,
            &mut lin,
            fid,
            f,
            &[AuxParamBinding {
                path: AccessPath { root: 0, depth: 1 },
                value: aux,
            }],
        );
        let pt = pta.pt(aux);
        assert_eq!(pt.len(), 1);
        assert_eq!(pt[0].0, Obj::Param { root: 0, depth: 2 });
        // Loading *aux references *(q,2).
        assert!(pta.refs.contains(&AccessPath { root: 0, depth: 2 }));
    }

    #[test]
    fn call_receivers_get_external_objects() {
        let (pta, _arena, m) = analyze(
            "fn g() -> int* { return null; }
             fn f() -> int {
                let p: int* = g();
                let x: int = *p;
                return x;
             }",
            "f",
        );
        let f = m.func(m.func_by_name("f").unwrap());
        let recv = f
            .iter_insts()
            .find_map(|(_, i)| match i {
                Inst::Call { dsts, .. } => dsts.first().copied(),
                _ => None,
            })
            .unwrap();
        assert!(matches!(pta.pt(recv)[0].0, Obj::External(..)));
    }
}

#[cfg(test)]
mod depth_tests {
    use super::*;
    use pinpoint_ir::compile;

    fn analyze(src: &str, name: &str) -> FuncPta {
        let m = compile(src).unwrap();
        let fid = m.func_by_name(name).unwrap();
        let mut arena = TermArena::new();
        let mut sym = Symbols::new();
        let mut lin = LinearSolver::new();
        analyze_function(&mut arena, &mut sym, &mut lin, fid, m.func(fid), &[])
    }

    #[test]
    fn depth_three_paths_tracked() {
        let pta = analyze(
            "fn f(q: int****) {
                let a: int*** = *q;
                let b: int** = *a;
                let c: int* = *b;
                print(c);
                return;
            }",
            "f",
        );
        assert!(pta.refs.contains(&AccessPath { root: 0, depth: 1 }));
        assert!(pta.refs.contains(&AccessPath { root: 0, depth: 2 }));
        assert!(pta.refs.contains(&AccessPath { root: 0, depth: 3 }));
    }

    #[test]
    fn paths_beyond_max_depth_dropped() {
        // MAX_PATH_DEPTH = 3: the depth-4 read is not recorded (soundiness
        // bound) and the analysis terminates cleanly.
        let pta = analyze(
            "fn f(q: int*****) {
                let a: int**** = *q;
                let b: int*** = *a;
                let c: int** = *b;
                let d: int* = *c;
                print(d);
                return;
            }",
            "f",
        );
        assert!(
            !pta.refs.iter().any(|p| p.depth > MAX_PATH_DEPTH),
            "{:?}",
            pta.refs
        );
    }

    #[test]
    fn store_then_load_same_branch_feasible() {
        // Both accesses under the same condition: the conjunction c ∧ c
        // survives the linear solver.
        let pta = analyze(
            "fn f(c: bool, a: int*) -> int* {
                let p: int** = malloc();
                let r: int* = null;
                if (c) {
                    *p = a;
                    r = *p;
                }
                return r;
            }",
            "f",
        );
        assert_eq!(pta.mem_deps.len(), 1);
    }
}
