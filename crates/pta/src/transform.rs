//! The connector-model transformation of Fig. 3.
//!
//! After the Mod/Ref pass of a function `f` determines which
//! parameter-rooted access paths are referenced and which are modified,
//! `f` is rewritten to expose those side effects on its interface:
//!
//! * for every referenced path `*(v_j, k)` an **Aux formal parameter**
//!   `F_i` is appended to the signature and `*(v_j, k) ← F_i` is inserted
//!   at the entry — the value the caller passes in becomes the initial
//!   content of the cell;
//! * for every modified path `*(v_q, r)` an **Aux return value** `R_p`
//!   is appended to the return: `R_p ← *(v_q, r)` is inserted before the
//!   return — the final content of the cell flows out.
//!
//! Call sites are rewritten to match (Fig. 3(b)): `A_i ← *(u_j, k)` loads
//! feed the Aux actuals, receivers `C_p` catch the Aux returns, and
//! `*(u_q, r) ← C_p` stores write them back into the caller's memory.
//! These inserted loads and stores are ordinary IR instructions, so the
//! caller's own points-to pass routes the callee's side effects through
//! the caller's memory with no further special cases.

use crate::object::AccessPath;
use pinpoint_ir::{Function, Inst, Module, Terminator, Type, ValueId};

/// The connector interface of a transformed function.
#[derive(Debug, Clone, Default)]
pub struct AuxShape {
    /// Aux formal parameters: `(path, F_i value in the callee)`.
    pub aux_params: Vec<(AccessPath, ValueId)>,
    /// Aux return values: `(path, R_p value in the callee)`; the position
    /// of each `R_p` in the return list is `ret_offset + index`.
    pub aux_rets: Vec<(AccessPath, ValueId)>,
    /// Number of original return values (0 or 1) preceding the Aux ones.
    pub ret_offset: usize,
}

impl AuxShape {
    /// `true` if the function has no connectors.
    pub fn is_empty(&self) -> bool {
        self.aux_params.is_empty() && self.aux_rets.is_empty()
    }
}

/// Inserts Aux formal parameters and Aux return values into `f`
/// (Fig. 3(a)) for the given referenced and modified paths.
///
/// Returns the resulting [`AuxShape`]. Paths whose depth exceeds the
/// parameter's static indirection are skipped.
pub fn insert_connectors(f: &mut Function, refs: &[AccessPath], mods: &[AccessPath]) -> AuxShape {
    let mut shape = AuxShape {
        ret_offset: f.ret_tys.len(),
        ..AuxShape::default()
    };
    let path_ty = |f: &Function, p: &AccessPath| -> Option<Type> {
        let root = *f.params.get(p.root as usize)?;
        f.ty(root).deref(p.depth as usize).cloned()
    };
    // Aux formal parameters, with entry stores *(v_j, k) ← F_i in
    // increasing depth order (shallow cells must be written first so that
    // deeper stores route through them).
    let mut sorted_refs: Vec<AccessPath> = refs.to_vec();
    sorted_refs.sort_unstable_by_key(|p| (p.depth, p.root));
    let mut entry_stores: Vec<Inst> = Vec::new();
    for path in sorted_refs {
        let Some(ty) = path_ty(f, &path) else {
            continue;
        };
        let name = format!("aux_in_p{}d{}", path.root, path.depth);
        let fi = f.new_value(name, ty);
        f.params.push(fi);
        f.aux_param_count += 1;
        shape.aux_params.push((path, fi));
        entry_stores.push(Inst::Store {
            ptr: f.params[path.root as usize],
            depth: path.depth,
            src: fi,
        });
    }
    // Aux return values, loaded just before the return.
    let mut sorted_mods: Vec<AccessPath> = mods.to_vec();
    sorted_mods.sort_unstable_by_key(|p| (p.depth, p.root));
    let ret_block = f.return_block().expect("functions have a return block");
    let mut exit_loads: Vec<Inst> = Vec::new();
    let mut extra_rets: Vec<ValueId> = Vec::new();
    for path in sorted_mods {
        let Some(ty) = path_ty(f, &path) else {
            continue;
        };
        let name = format!("aux_out_p{}d{}", path.root, path.depth);
        let rp = f.new_value(name, ty.clone());
        f.ret_tys.push(ty);
        shape.aux_rets.push((path, rp));
        exit_loads.push(Inst::Load {
            dst: rp,
            ptr: f.params[path.root as usize],
            depth: path.depth,
        });
        extra_rets.push(rp);
    }
    // Splice: entry stores at the very beginning of the entry block.
    let entry = f.entry();
    let eb = &mut f.blocks[entry.0 as usize];
    let mut new_insts = entry_stores;
    new_insts.append(&mut eb.insts);
    eb.insts = new_insts;
    // Exit loads before the terminator of the return block.
    f.blocks[ret_block.0 as usize].insts.extend(exit_loads);
    if let Terminator::Return(vals) = &mut f.blocks[ret_block.0 as usize].term {
        vals.extend(extra_rets);
    }
    rebuild_def_sites(f);
    shape
}

/// Rewrites every call site in `caller` whose callee has connectors
/// (Fig. 3(b)). `shape_of` maps a callee name to its [`AuxShape`] (or
/// `None` for intrinsics, unknown callees, and same-SCC recursion).
pub fn rewrite_call_sites<'a, F>(caller: &mut Function, shape_of: F)
where
    F: Fn(&str) -> Option<&'a AuxShape>,
{
    for bi in 0..caller.blocks.len() {
        let old = std::mem::take(&mut caller.blocks[bi].insts);
        let mut new_insts: Vec<Inst> = Vec::with_capacity(old.len());
        // Staged rewrites: (pre-loads, call, post-stores) per call.
        for inst in old {
            let Inst::Call {
                mut dsts,
                callee,
                mut args,
            } = inst
            else {
                new_insts.push(inst);
                continue;
            };
            let Some(shape) = shape_of(&callee) else {
                new_insts.push(Inst::Call { dsts, callee, args });
                continue;
            };
            if shape.is_empty() {
                new_insts.push(Inst::Call { dsts, callee, args });
                continue;
            }
            let orig_args: Vec<ValueId> = args.clone();
            // A_i ← *(u_j, k) before the call.
            for (path, _fi) in &shape.aux_params {
                let Some(&uj) = orig_args.get(path.root as usize) else {
                    continue;
                };
                let Some(ty) = caller.ty(uj).deref(path.depth as usize).cloned() else {
                    // Should not happen on type-correct programs; pass a
                    // null-equivalent placeholder to keep arity aligned.
                    let placeholder = caller.new_value("aux_arg_null", Type::Int.ptr_to());
                    new_insts.push(Inst::Const {
                        dst: placeholder,
                        value: pinpoint_ir::Const::Null,
                    });
                    args.push(placeholder);
                    continue;
                };
                let ai = caller.new_value(format!("aux_arg_p{}d{}", path.root, path.depth), ty);
                new_insts.push(Inst::Load {
                    dst: ai,
                    ptr: uj,
                    depth: path.depth,
                });
                args.push(ai);
            }
            // Receivers C_p. The original receiver list may be empty even
            // if the callee returns a value (expression statements); pad
            // with a dummy receiver so positions line up.
            while dsts.len() < shape.ret_offset {
                let pad = caller.new_value("unused_ret", Type::Int);
                dsts.push(pad);
            }
            let mut post_stores: Vec<Inst> = Vec::new();
            for (path, _rp) in &shape.aux_rets {
                let Some(&uq) = orig_args.get(path.root as usize) else {
                    continue;
                };
                let Some(ty) = caller.ty(uq).deref(path.depth as usize).cloned() else {
                    let pad = caller.new_value("aux_recv_dead", Type::Int);
                    dsts.push(pad);
                    continue;
                };
                let cp = caller.new_value(format!("aux_recv_p{}d{}", path.root, path.depth), ty);
                dsts.push(cp);
                post_stores.push(Inst::Store {
                    ptr: uq,
                    depth: path.depth,
                    src: cp,
                });
            }
            new_insts.push(Inst::Call { dsts, callee, args });
            new_insts.extend(post_stores);
        }
        caller.blocks[bi].insts = new_insts;
    }
    rebuild_def_sites(caller);
}

/// Recomputes every value's defining site after block surgery.
pub fn rebuild_def_sites(f: &mut Function) {
    for v in &mut f.values {
        v.def = None;
    }
    let ids: Vec<(pinpoint_ir::InstId, Vec<ValueId>)> =
        f.iter_insts().map(|(id, inst)| (id, inst.defs())).collect();
    for (id, defs) in ids {
        for d in defs {
            f.values[d.0 as usize].def = Some(id);
        }
    }
}

/// Convenience: transforms all functions of a module bottom-up, returning
/// each function's [`AuxShape`]. Used directly by tests; the full pipeline
/// in [`crate::driver`] interleaves this with the points-to passes.
pub fn transform_module(module: &mut Module) -> Vec<AuxShape> {
    crate::driver::analyze_module(module).shapes
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_ir::compile;

    #[test]
    fn connectors_for_read_write_param() {
        let mut m = compile(
            "fn bar(q: int**) {
                let c: int* = malloc();
                let t: bool = *q != null;
                if (t) { *q = c; free(c); }
                return;
            }",
        )
        .unwrap();
        let fid = m.func_by_name("bar").unwrap();
        let refs = vec![AccessPath { root: 0, depth: 1 }];
        let mods = vec![AccessPath { root: 0, depth: 1 }];
        let shape = insert_connectors(m.func_mut(fid), &refs, &mods);
        let f = m.func(fid);
        // One aux param (X in the paper) and one aux return (Y).
        assert_eq!(shape.aux_params.len(), 1);
        assert_eq!(shape.aux_rets.len(), 1);
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.aux_param_count, 1);
        assert_eq!(f.ret_tys.len(), 1);
        assert_eq!(f.return_values().len(), 1);
        // Entry starts with *(q,1) ← F.
        let entry = f.block(f.entry());
        assert!(
            matches!(entry.insts[0], Inst::Store { depth: 1, .. }),
            "entry store inserted first"
        );
        // Return block ends with R ← *(q,1).
        let rb = f.block(f.return_block().unwrap());
        assert!(matches!(rb.insts.last(), Some(Inst::Load { depth: 1, .. })));
    }

    #[test]
    fn call_site_rewrite_matches_figure2() {
        let mut m = compile(
            "fn bar(q: int**) { *q = null; return; }
             fn foo(a: int*) {
                let ptr: int** = malloc();
                *ptr = a;
                bar(ptr);
                let f: int* = *ptr;
                print(f);
                return;
             }",
        )
        .unwrap();
        let bar = m.func_by_name("bar").unwrap();
        let shape = insert_connectors(
            m.func_mut(bar),
            &[AccessPath { root: 0, depth: 1 }],
            &[AccessPath { root: 0, depth: 1 }],
        );
        let foo = m.func_by_name("foo").unwrap();
        rewrite_call_sites(m.func_mut(foo), |name| (name == "bar").then_some(&shape));
        let f = m.func(foo);
        // Expect: load K=*ptr before the call; call with 2 args and 1
        // receiver; store *ptr = L after.
        let insts: Vec<&Inst> = f.iter_insts().map(|(_, i)| i).collect();
        let call_idx = insts
            .iter()
            .position(|i| matches!(i, Inst::Call { callee, .. } if callee == "bar"))
            .unwrap();
        assert!(
            matches!(insts[call_idx - 1], Inst::Load { depth: 1, .. }),
            "K = *ptr inserted before the call"
        );
        if let Inst::Call { dsts, args, .. } = insts[call_idx] {
            assert_eq!(args.len(), 2, "ptr and K");
            assert_eq!(dsts.len(), 1, "receiver L");
        }
        assert!(
            matches!(insts[call_idx + 1], Inst::Store { depth: 1, .. }),
            "*ptr = L inserted after the call"
        );
    }

    #[test]
    fn untouched_callee_leaves_call_alone() {
        let mut m = compile(
            "fn g(x: int) -> int { return x; }
             fn f() { let y: int = g(1); print(y); return; }",
        )
        .unwrap();
        let fid = m.func_by_name("f").unwrap();
        let empty = AuxShape::default();
        rewrite_call_sites(m.func_mut(fid), |name| (name == "g").then_some(&empty));
        let f = m.func(fid);
        let call = f
            .iter_insts()
            .find_map(|(_, i)| match i {
                Inst::Call { callee, args, dsts } if callee == "g" => {
                    Some((args.len(), dsts.len()))
                }
                _ => None,
            })
            .unwrap();
        assert_eq!(call, (1, 1));
    }

    #[test]
    fn expression_statement_call_gets_padded_receiver() {
        // Callee returns a value that the caller ignores *and* has an aux
        // return: position padding must keep receivers aligned.
        let mut m = compile(
            "fn g(q: int**) -> int { *q = null; return 1; }
             fn f(p: int**) { g(p); return; }",
        )
        .unwrap();
        let g = m.func_by_name("g").unwrap();
        let shape = insert_connectors(m.func_mut(g), &[], &[AccessPath { root: 0, depth: 1 }]);
        assert_eq!(shape.ret_offset, 1);
        let f = m.func_by_name("f").unwrap();
        rewrite_call_sites(m.func_mut(f), |n| (n == "g").then_some(&shape));
        let func = m.func(f);
        let (dsts, args) = func
            .iter_insts()
            .find_map(|(_, i)| match i {
                Inst::Call { dsts, args, .. } => Some((dsts.len(), args.len())),
                _ => None,
            })
            .unwrap();
        assert_eq!(dsts, 2, "padded original receiver + aux receiver");
        assert_eq!(args, 1, "no aux params");
    }

    #[test]
    fn def_sites_valid_after_rewrite() {
        let mut m = compile(
            "fn g(q: int**) { *q = null; return; }
             fn f(p: int**) { g(p); return; }",
        )
        .unwrap();
        let g = m.func_by_name("g").unwrap();
        let shape = insert_connectors(
            m.func_mut(g),
            &[AccessPath { root: 0, depth: 1 }],
            &[AccessPath { root: 0, depth: 1 }],
        );
        let f = m.func_by_name("f").unwrap();
        rewrite_call_sites(m.func_mut(f), |n| (n == "g").then_some(&shape));
        for func in [m.func(f), m.func(g)] {
            for (id, inst) in func.iter_insts() {
                for d in inst.defs() {
                    assert_eq!(
                        func.value(d).def,
                        Some(id),
                        "def site of {d:?} in {}",
                        func.name
                    );
                }
            }
        }
    }
}
