//! Abstract memory objects.
//!
//! The intra-procedural points-to analysis names memory with three kinds of
//! abstract objects:
//!
//! * allocation sites (`malloc`) — one object per site (loops are unrolled
//!   once, so a site executes at most once per path);
//! * module globals — one object per global declaration;
//! * *parameter pseudo-objects* `Param{root, depth}` — the non-local
//!   memory reachable from a formal parameter: `Param{j, 1}` is the cell
//!   `*(v_j, 1)`, `Param{j, 2}` the cell `*(v_j, 2)`, and so on. Distinct
//!   parameters are assumed unaliased (the §4.2 soundiness rule), so the
//!   chains are disjoint;
//! * external objects — unknown memory returned by calls whose callee
//!   summary is unavailable (recursive SCC members and some intrinsics);
//!   one object per call-site receiver, so two unknown pointers never
//!   alias spuriously.

use pinpoint_ir::{GlobalId, InstId};
use std::fmt;

/// An abstract memory object (function-local namespace).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Obj {
    /// A `malloc` allocation site.
    Alloc(InstId),
    /// A module-level global cell.
    Global(GlobalId),
    /// Non-local memory at `*(param_root, depth)`.
    Param {
        /// Index of the *original* formal parameter rooting the path.
        root: u32,
        /// Dereference depth (`1` = the cell the parameter points to).
        depth: u32,
    },
    /// Unknown memory referenced through a call receiver.
    External(InstId, u32),
}

impl Obj {
    /// For parameter pseudo-objects, the next object down the chain.
    pub fn next_in_chain(self) -> Option<Obj> {
        match self {
            Obj::Param { root, depth } => Some(Obj::Param {
                root,
                depth: depth + 1,
            }),
            _ => None,
        }
    }

    /// `true` if this object is rooted at a formal parameter.
    pub fn is_param(self) -> bool {
        matches!(self, Obj::Param { .. })
    }
}

impl fmt::Display for Obj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Obj::Alloc(site) => write!(f, "alloc@{site}"),
            Obj::Global(g) => write!(f, "global{}", g.0),
            Obj::Param { root, depth } => write!(f, "*(p{root},{depth})"),
            Obj::External(site, i) => write!(f, "ext@{site}#{i}"),
        }
    }
}

/// An access path rooted at a formal parameter: `*(v_root, depth)`.
///
/// These are the units of the Mod/Ref analysis (§3.1.2): a *referenced*
/// path gets an Aux formal parameter, a *modified* path an Aux return
/// value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AccessPath {
    /// Original parameter index.
    pub root: u32,
    /// Dereference depth (`≥ 1`).
    pub depth: u32,
}

impl fmt::Display for AccessPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "*(p{},{})", self.root, self.depth)
    }
}

/// Maximum access-path depth tracked by the analysis (paths deeper than
/// this are dropped; a soundiness bound like the paper's library models).
pub const MAX_PATH_DEPTH: u32 = 3;

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_ir::BlockId;

    #[test]
    fn param_chain_extends() {
        let p = Obj::Param { root: 0, depth: 1 };
        assert_eq!(p.next_in_chain(), Some(Obj::Param { root: 0, depth: 2 }));
        let a = Obj::Alloc(InstId {
            block: BlockId(0),
            index: 0,
        });
        assert_eq!(a.next_in_chain(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Obj::Param { root: 1, depth: 2 }.to_string(), "*(p1,2)");
        assert_eq!(AccessPath { root: 1, depth: 2 }.to_string(), "*(p1,2)");
    }
}
