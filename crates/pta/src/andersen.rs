//! Whole-program Andersen-style points-to analysis.
//!
//! This is the *baseline* substrate: the flow- and context-insensitive,
//! inclusion-based points-to analysis that "layered" sparse value-flow
//! frameworks (SVF, Saber, Fastcheck) run as an independent first stage.
//! Pinpoint's comparison experiments (Fig. 7–9, Table 1) need it to build
//! the full sparse value-flow graph the layered checker traverses.
//!
//! Constraints are the classic four, derived from the IR:
//!
//! * address-of:  `p ⊇ {o}`           (`malloc`, `&global`)
//! * copy:        `p ⊇ q`             (copies, φ, call/return binding)
//! * load:        `p ⊇ *q`            (`p ← *(q,1)`)
//! * store:       `*p ⊇ q`            (`*(p,1) ← q`)
//!
//! k-level accesses are decomposed through temporary nodes. The solver is
//! a standard worklist over inclusion edges with dynamic load/store edge
//! materialisation.

use pinpoint_ir::{intrinsics, FuncId, GlobalId, Inst, InstId, Module, Terminator, ValueId};
use std::collections::{HashMap, HashSet, VecDeque};

/// A node of the constraint graph: an SSA value of a function, a global
/// cell, an allocation site, or a synthetic temporary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Node {
    /// An SSA value.
    Value(FuncId, ValueId),
    /// A heap object (allocation site).
    Heap(FuncId, InstId),
    /// A global cell.
    GlobalCell(GlobalId),
    /// A synthetic temporary introduced by k-level decomposition, numbered.
    Temp(u32),
}

/// Result of the Andersen analysis: points-to sets over abstract objects.
#[derive(Debug, Default)]
pub struct Andersen {
    /// Final points-to sets (node → objects).
    pub points_to: HashMap<Node, HashSet<Node>>,
    /// Number of constraint-solving iterations (worklist pops).
    pub iterations: u64,
}

impl Andersen {
    /// Points-to set of a value (empty when untracked).
    pub fn pt(&self, f: FuncId, v: ValueId) -> impl Iterator<Item = Node> + '_ {
        self.points_to
            .get(&Node::Value(f, v))
            .into_iter()
            .flatten()
            .copied()
    }

    /// `true` if `a` and `b` may alias (their sets intersect).
    pub fn may_alias(&self, a: Node, b: Node) -> bool {
        let (Some(sa), Some(sb)) = (self.points_to.get(&a), self.points_to.get(&b)) else {
            return false;
        };
        sa.iter().any(|o| sb.contains(o))
    }

    /// Total points-to facts (for memory accounting in the evaluation).
    pub fn fact_count(&self) -> usize {
        self.points_to.values().map(HashSet::len).sum()
    }
}

/// Builds and solves the inclusion constraints of `module`.
pub fn analyze(module: &Module) -> Andersen {
    analyze_with_deadline(module, None).expect("no deadline set")
}

/// Like [`analyze`], but gives up when `deadline` passes (returns `None`)
/// — used by the evaluation harness to reproduce the paper's timeout
/// band on large subjects.
pub fn analyze_with_deadline(
    module: &Module,
    deadline: Option<std::time::Instant>,
) -> Option<Andersen> {
    let mut b = Builder::default();
    // Object "contents" are modelled by a companion cell node per object:
    // pt(o-cell) holds what is stored *in* o. Loads traverse it.
    for (fid, f) in module.iter_funcs() {
        for (site, inst) in f.iter_insts() {
            match inst {
                Inst::Alloc { dst } => {
                    b.addr_of(Node::Value(fid, *dst), Node::Heap(fid, site));
                }
                Inst::GlobalAddr { dst, global } => {
                    b.addr_of(Node::Value(fid, *dst), Node::GlobalCell(*global));
                }
                Inst::Copy { dst, src } => {
                    b.copy(Node::Value(fid, *dst), Node::Value(fid, *src));
                }
                Inst::Phi { dst, incomings } => {
                    for &(_, v) in incomings {
                        b.copy(Node::Value(fid, *dst), Node::Value(fid, v));
                    }
                }
                Inst::Load { dst, ptr, depth } => {
                    let mut src = Node::Value(fid, *ptr);
                    for _ in 1..*depth {
                        let t = b.fresh_temp();
                        b.load(t, src);
                        src = t;
                    }
                    b.load(Node::Value(fid, *dst), src);
                }
                Inst::Store { ptr, depth, src } => {
                    let mut target = Node::Value(fid, *ptr);
                    for _ in 1..*depth {
                        let t = b.fresh_temp();
                        b.load(t, target);
                        target = t;
                    }
                    b.store(target, Node::Value(fid, *src));
                }
                Inst::Call { dsts, callee, args } => {
                    if intrinsics::is_intrinsic(callee) {
                        continue;
                    }
                    let Some(target) = module.func_by_name(callee) else {
                        continue;
                    };
                    let g = module.func(target);
                    // Bind actuals to formals (context-insensitively).
                    for (&a, &p) in args.iter().zip(g.params.iter()) {
                        b.copy(Node::Value(target, p), Node::Value(fid, a));
                    }
                    // Bind return values to receivers.
                    let rets = g.return_values();
                    for (&d, &r) in dsts.iter().zip(rets.iter()) {
                        b.copy(Node::Value(fid, d), Node::Value(target, r));
                    }
                }
                _ => {}
            }
        }
        // Nothing needed for terminators beyond returns, handled above.
        let _ = Terminator::Unreachable;
    }
    b.solve(deadline)
}

#[derive(Debug, Default)]
struct Builder {
    /// p ⊇ {o}
    addr: Vec<(Node, Node)>,
    /// successor copy edges: q → {p} meaning p ⊇ q
    copy_edges: HashMap<Node, HashSet<Node>>,
    /// load constraints: (dst, ptr) meaning dst ⊇ *ptr
    loads: Vec<(Node, Node)>,
    /// store constraints: (ptr, src) meaning *ptr ⊇ src
    stores: Vec<(Node, Node)>,
    temp_counter: u32,
}

impl Builder {
    fn addr_of(&mut self, p: Node, o: Node) {
        self.addr.push((p, o));
    }

    fn copy(&mut self, dst: Node, src: Node) {
        self.copy_edges.entry(src).or_default().insert(dst);
    }

    fn load(&mut self, dst: Node, ptr: Node) {
        self.loads.push((dst, ptr));
    }

    fn store(&mut self, ptr: Node, src: Node) {
        self.stores.push((ptr, src));
    }

    fn fresh_temp(&mut self) -> Node {
        self.temp_counter += 1;
        Node::Temp(self.temp_counter)
    }

    fn solve(self, deadline: Option<std::time::Instant>) -> Option<Andersen> {
        let mut pt: HashMap<Node, HashSet<Node>> = HashMap::new();
        let mut copy_edges = self.copy_edges;
        let mut work: VecDeque<Node> = VecDeque::new();
        let mut iterations = 0u64;
        for (p, o) in &self.addr {
            if pt.entry(*p).or_default().insert(*o) {
                work.push_back(*p);
            }
        }
        // Index load/store constraints by pointer node.
        let mut loads_by_ptr: HashMap<Node, Vec<Node>> = HashMap::new();
        for (dst, ptr) in &self.loads {
            loads_by_ptr.entry(*ptr).or_default().push(*dst);
        }
        let mut stores_by_ptr: HashMap<Node, Vec<Node>> = HashMap::new();
        for (ptr, src) in &self.stores {
            stores_by_ptr.entry(*ptr).or_default().push(*src);
        }
        while let Some(n) = work.pop_front() {
            iterations += 1;
            if iterations.is_multiple_of(4096) {
                if let Some(d) = deadline {
                    if std::time::Instant::now() > d {
                        return None;
                    }
                }
            }
            let objs: Vec<Node> = pt.get(&n).into_iter().flatten().copied().collect();
            // Materialise load/store edges through the objects of n.
            //   dst ⊇ *n: for each o ∈ pt(n), add copy o-cell → dst.
            //   *n ⊇ src: for each o ∈ pt(n), add copy src → o-cell.
            // The "cell" of object o is o itself used as a node key.
            let mut new_edges: Vec<(Node, Node)> = Vec::new();
            if let Some(dsts) = loads_by_ptr.get(&n) {
                for &o in &objs {
                    for &d in dsts {
                        new_edges.push((o, d));
                    }
                }
            }
            if let Some(srcs) = stores_by_ptr.get(&n) {
                for &o in &objs {
                    for &s in srcs {
                        new_edges.push((s, o));
                    }
                }
            }
            for (src, dst) in new_edges {
                if copy_edges.entry(src).or_default().insert(dst) {
                    // Propagate immediately.
                    let from: Vec<Node> = pt.get(&src).into_iter().flatten().copied().collect();
                    if !from.is_empty() {
                        let set = pt.entry(dst).or_default();
                        let mut changed = false;
                        for o in from {
                            changed |= set.insert(o);
                        }
                        if changed {
                            work.push_back(dst);
                        }
                    }
                }
            }
            // Propagate along existing copy edges.
            let succs: Vec<Node> = copy_edges.get(&n).into_iter().flatten().copied().collect();
            for s in succs {
                let from: Vec<Node> = pt.get(&n).into_iter().flatten().copied().collect();
                let set = pt.entry(s).or_default();
                let mut changed = false;
                for o in from {
                    changed |= set.insert(o);
                }
                if changed {
                    work.push_back(s);
                }
            }
        }
        Some(Andersen {
            points_to: pt,
            iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_ir::compile;

    #[test]
    fn direct_alloc_flow() {
        let m = compile(
            "fn f() -> int* {
                let p: int* = malloc();
                let q: int* = p;
                return q;
            }",
        )
        .unwrap();
        let a = analyze(&m);
        let fid = m.func_by_name("f").unwrap();
        let ret = m.func(fid).return_values()[0];
        assert_eq!(a.pt(fid, ret).count(), 1);
    }

    #[test]
    fn store_load_roundtrip() {
        let m = compile(
            "fn f(a: int*) -> int* {
                let p: int** = malloc();
                *p = a;
                let q: int* = *p;
                return q;
            }",
        )
        .unwrap();
        let a = analyze(&m);
        let fid = m.func_by_name("f").unwrap();
        let f = m.func(fid);
        let ret = f.return_values()[0];
        let param = f.params[0];
        // q ⊇ *p ⊇ a: whatever a points to, q points to — both are empty
        // of concrete objects here, but q must include pt(a)'s node
        // contents; use alias check through a shared alloc instead.
        let _ = (ret, param);
        // Make a version with an observable object:
        let m2 = compile(
            "fn g() -> int* {
                let obj: int* = malloc();
                let p: int** = malloc();
                *p = obj;
                let q: int* = *p;
                return q;
            }",
        )
        .unwrap();
        let a2 = analyze(&m2);
        let gid = m2.func_by_name("g").unwrap();
        let ret2 = m2.func(gid).return_values()[0];
        assert_eq!(a2.pt(gid, ret2).count(), 1, "q points to obj");
        let _ = a;
    }

    #[test]
    fn context_insensitive_merging() {
        // The classic imprecision: two callers of id() conflate.
        let m = compile(
            "fn id(x: int*) -> int* { return x; }
             fn f() -> int* {
                let a: int* = malloc();
                let b: int* = malloc();
                let p: int* = id(a);
                let q: int* = id(b);
                return p;
             }",
        )
        .unwrap();
        let a = analyze(&m);
        let fid = m.func_by_name("f").unwrap();
        let ret = m.func(fid).return_values()[0];
        // Context-insensitivity: p points to BOTH allocs.
        assert_eq!(a.pt(fid, ret).count(), 2, "layered analysis conflates");
    }

    #[test]
    fn phi_unions() {
        let m = compile(
            "fn f(c: bool) -> int* {
                let a: int* = malloc();
                let b: int* = malloc();
                let r: int* = null;
                if (c) { r = a; } else { r = b; }
                return r;
            }",
        )
        .unwrap();
        let a = analyze(&m);
        let fid = m.func_by_name("f").unwrap();
        let ret = m.func(fid).return_values()[0];
        assert_eq!(a.pt(fid, ret).count(), 2);
    }

    #[test]
    fn flow_insensitive_sees_dead_store() {
        // Flow-insensitivity: the killed store still contributes.
        let m = compile(
            "fn f() -> int* {
                let a: int* = malloc();
                let b: int* = malloc();
                let p: int** = malloc();
                *p = a;
                *p = b;
                let q: int* = *p;
                return q;
            }",
        )
        .unwrap();
        let an = analyze(&m);
        let fid = m.func_by_name("f").unwrap();
        let ret = m.func(fid).return_values()[0];
        assert_eq!(
            an.pt(fid, ret).count(),
            2,
            "Andersen keeps both stores — exactly the imprecision Pinpoint avoids"
        );
    }

    #[test]
    fn global_cells_flow() {
        let m = compile(
            "global g: int*;
             fn w(x: int*) { *g = x; return; }
             fn r() -> int* { let v: int* = *g; return v; }",
        )
        .unwrap();
        let an = analyze(&m);
        let rid = m.func_by_name("r").unwrap();
        let ret = m.func(rid).return_values()[0];
        // v ⊇ *gcell ⊇ x — x itself has no objects; add one via caller.
        let m2 = compile(
            "global g: int*;
             fn w() { let o: int* = malloc(); *g = o; return; }
             fn r() -> int* { let v: int* = *g; return v; }",
        )
        .unwrap();
        let an2 = analyze(&m2);
        let rid2 = m2.func_by_name("r").unwrap();
        let ret2 = m2.func(rid2).return_values()[0];
        assert_eq!(an2.pt(rid2, ret2).count(), 1, "global flow tracked");
        let _ = (an, ret, rid);
    }

    #[test]
    fn may_alias_through_shared_store() {
        let m = compile(
            "fn f(c: bool) -> int* {
                let o: int* = malloc();
                let p: int** = malloc();
                let q: int** = p;
                *p = o;
                let x: int* = *q;
                return x;
            }",
        )
        .unwrap();
        let an = analyze(&m);
        let fid = m.func_by_name("f").unwrap();
        let f = m.func(fid);
        let ret = f.return_values()[0];
        assert_eq!(an.pt(fid, ret).count(), 1, "x gets o through alias p=q");
    }
}
