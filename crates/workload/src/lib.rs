//! `pinpoint-workload`: workload generation for the Pinpoint
//! reproduction's evaluation (PLDI 2018, §5).
//!
//! The paper evaluates on eighteen open-source systems plus SPEC CINT
//! 2000 and measures recall on the NSA Juliet suite; none of those are
//! redistributable here, so this crate generates deterministic synthetic
//! equivalents:
//!
//! * [`gen`] — seeded projects of parameterised size with call DAGs,
//!   branchy control flow, pointer plumbing, and injected defects (real
//!   bugs and path-infeasible decoys) with ground truth;
//! * [`juliet`] — a 51-variant flaw-template suite (~1428 cases at paper
//!   scale) for recall measurement;
//! * [`fuzzgen`] — a grammar-based generator of arbitrary well-typed
//!   programs (plus validity-preserving mutations) feeding the
//!   `pinpoint-fuzz` differential oracles;
//! * [`subjects`] — a registry mirroring Table 1's subject list, mapping
//!   each subject to a scaled-down generated project;
//! * [`traffic`] — seeded multi-client request scripts (interleaved
//!   open/update/check sessions) for serving-layer benchmarks and
//!   concurrency tests.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fuzzgen;
pub mod gen;
pub mod juliet;
pub mod rng;
pub mod subjects;
pub mod traffic;

pub use fuzzgen::{generate as generate_fuzz, mutate as mutate_fuzz, FuzzGenConfig};
pub use gen::{generate, BugKind, GenConfig, Generated, InjectedBug};
pub use juliet::{generate as generate_juliet, JulietCase, JulietSuite};
pub use subjects::{generate_subject, Subject, DEFAULT_SCALE, SUBJECTS};
pub use traffic::{
    generate_traffic, render_ndjson_v2, render_ndjson_v2_probed, ClientScript, TrafficConfig,
    TrafficOp,
};
