//! Seeded synthetic-project generator.
//!
//! The paper's evaluation runs on eighteen open-source C/C++ systems (2
//! KLoC – 8 MLoC). Those code bases (and their build environments) are
//! not reproducible here, so the scaling and precision experiments run on
//! *generated* projects instead: deterministic, seeded programs in the
//! mini-language with the structural features the analysis cost depends
//! on — call DAGs, branchy control flow, pointer indirection through
//! `int**` cells, and inter-procedural side effects — plus *injected*
//! defects with known ground truth.
//!
//! Two kinds of defects are injected:
//!
//! * **real bugs** — feasible source→sink pairs (the guard polarities
//!   match), possibly routed through helper functions and memory cells;
//! * **decoys** — the same shapes made path-infeasible (source guarded by
//!   `c`, sink by `!c`). A path-sensitive checker must stay silent on
//!   decoys; path-insensitive baselines warn, which is how the Table 1
//!   false-positive-rate contrast is measured.

use crate::rng::SmallRng;
use std::fmt::Write;

/// What kind of defect a ground-truth entry describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugKind {
    /// Use-after-free (deref after free).
    UseAfterFree,
    /// Double free.
    DoubleFree,
    /// Path-traversal taint (fgetc → fopen).
    PathTraversal,
    /// Data-transmission taint (getpass → sendto).
    DataTransmission,
}

/// A ground-truth entry for one injected defect.
#[derive(Debug, Clone)]
pub struct InjectedBug {
    /// Unique id; the involved functions contain `bug{id}_` in their
    /// names so reports can be matched back.
    pub id: usize,
    /// Defect kind.
    pub kind: BugKind,
    /// `true` for a feasible defect, `false` for a path-infeasible decoy.
    pub real: bool,
    /// Marker substring present in the involved function names.
    pub marker: String,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// RNG seed (same seed ⇒ same project).
    pub seed: u64,
    /// Number of filler functions (the project skeleton).
    pub functions: usize,
    /// Statements per filler function body (before branching).
    pub stmts_per_function: usize,
    /// Number of real bugs to inject, per kind.
    pub real_bugs: usize,
    /// Number of infeasible decoys to inject, per kind.
    pub decoys: usize,
    /// Include taint defects (off for pure UAF experiments).
    pub taint: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 42,
            functions: 50,
            stmts_per_function: 12,
            real_bugs: 1,
            decoys: 1,
            taint: false,
        }
    }
}

impl GenConfig {
    /// Scales the skeleton to roughly `kloc` thousand source lines.
    /// (Each filler function is ~`stmts_per_function` + 8 lines.)
    pub fn with_target_kloc(mut self, kloc: f64) -> Self {
        let lines_per_fn = self.stmts_per_function as f64 + 8.0;
        self.functions = ((kloc * 1000.0) / lines_per_fn).max(2.0) as usize;
        self
    }
}

/// A generated project.
#[derive(Debug, Clone)]
pub struct Generated {
    /// The program text.
    pub source: String,
    /// Ground truth of injected defects.
    pub bugs: Vec<InjectedBug>,
    /// Source lines (KLoC × 1000).
    pub lines: usize,
}

/// Generates a project from `config`.
pub fn generate(config: &GenConfig) -> Generated {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut out = String::new();
    let mut bugs = Vec::new();

    // Shared pointer utilities, used by every filler — the structural
    // trigger of the paper's "pointer trap": a context-insensitive
    // points-to analysis names the heap by allocation site, so every
    // cell handed out by `util_cell` is ONE abstract object and every
    // store through any such cell may feed every load through any other.
    // Pinpoint's bottom-up design keeps each call site's cell distinct.
    out.push_str(
        "fn util_cell() -> int** {\n    let c: int** = malloc();\n    return c;\n}\n\
         fn util_buf() -> int* {\n    let b: int* = malloc();\n    return b;\n}\n\
         fn util_put(q: int**, v: int*) {\n    *q = v;\n    return;\n}\n\
         fn util_get(q: int**) -> int* {\n    let v: int* = *q;\n    return v;\n}\n",
    );

    // Filler skeleton: functions call only higher-indexed functions, so
    // the call graph is a DAG.
    let shapes = signature_shapes();
    let sigs: Vec<usize> = (0..config.functions)
        .map(|_| rng.gen_range(0..shapes.len()))
        .collect();
    for i in 0..config.functions {
        emit_filler(
            &mut out,
            &mut rng,
            i,
            &sigs,
            &shapes,
            config.stmts_per_function,
        );
    }

    // Injected defects.
    let mut id = 0;
    for kind in [BugKind::UseAfterFree, BugKind::DoubleFree] {
        for real in [true, false] {
            let n = if real {
                config.real_bugs
            } else {
                config.decoys
            };
            for _ in 0..n {
                let marker = format!("bug{id}_");
                emit_memory_bug(&mut out, &mut rng, kind, real, &marker);
                bugs.push(InjectedBug {
                    id,
                    kind,
                    real,
                    marker,
                });
                id += 1;
            }
        }
    }
    if config.taint {
        for kind in [BugKind::PathTraversal, BugKind::DataTransmission] {
            for real in [true, false] {
                let n = if real {
                    config.real_bugs
                } else {
                    config.decoys
                };
                for _ in 0..n {
                    let marker = format!("bug{id}_");
                    emit_taint_bug(&mut out, &mut rng, kind, real, &marker);
                    bugs.push(InjectedBug {
                        id,
                        kind,
                        real,
                        marker,
                    });
                    id += 1;
                }
            }
        }
    }
    let lines = out.lines().count();
    Generated {
        source: out,
        bugs,
        lines,
    }
}

/// Parameter/return shapes filler functions draw from.
fn signature_shapes() -> Vec<(&'static str, &'static str)> {
    vec![
        ("(a: int, b: int) -> int", "int"),
        ("(p: int*) -> int", "int"),
        ("(q: int**, v: int*)", "void"),
        ("(q: int**) -> int*", "ptr"),
        ("(c: bool, x: int) -> int", "int"),
        ("() -> int*", "ptr"),
    ]
}

fn call_expr(idx: usize, shape: usize) -> (String, &'static str) {
    // Arguments reference the caller's canonical locals (always emitted
    // in the prologue below).
    let name = format!("filler{idx}");
    match shape {
        0 => (format!("{name}(x0, x1)"), "int"),
        1 => (format!("{name}(p0)"), "int"),
        2 => (format!("{name}(pp0, p0)"), "void"),
        3 => (format!("{name}(pp0)"), "ptr"),
        4 => (format!("{name}(b0, x0)"), "int"),
        _ => (format!("{name}()"), "ptr"),
    }
}

fn emit_filler(
    out: &mut String,
    rng: &mut SmallRng,
    idx: usize,
    sigs: &[usize],
    shapes: &[(&'static str, &'static str)],
    stmts: usize,
) {
    let (params, _ret) = shapes[sigs[idx]];
    let _ = writeln!(out, "fn filler{idx}{params} {{");
    // Canonical prologue: every filler has x0, x1 (int), b0 (bool),
    // p0 (int*), pp0 (int**) in scope regardless of its parameters.
    let _ = writeln!(out, "    let x0: int = 1;");
    let _ = writeln!(out, "    let x1: int = nondet_int();");
    let _ = writeln!(out, "    let b0: bool = nondet_bool();");
    let _ = writeln!(out, "    let p0: int* = util_buf();");
    let _ = writeln!(out, "    let pp0: int** = util_cell();");
    let _ = writeln!(out, "    util_put(pp0, p0);");
    let mut v = 1usize; // fresh-variable counter
    let mut depth = 0usize;
    let mut open = 0usize;
    for _ in 0..stmts {
        match rng.gen_range(0..10) {
            0 => {
                let _ = writeln!(out, "    let x{n}: int = x0 + x1;", n = v + 1);
                v += 1;
            }
            1 => {
                let _ = writeln!(out, "    let b{n}: bool = x1 < x0;", n = v + 1);
                v += 1;
            }
            2 => {
                let _ = writeln!(out, "    let p{n}: int* = util_get(pp0);", n = v + 1);
                v += 1;
            }
            3 => {
                let _ = writeln!(out, "    *p0 = x0;");
            }
            4 => {
                let _ = writeln!(out, "    let x{n}: int = *p0;", n = v + 1);
                v += 1;
            }
            5 if depth < 2 => {
                let _ = writeln!(out, "    if (b0) {{");
                depth += 1;
                open += 1;
            }
            6 if open > 0 => {
                let _ = writeln!(out, "    }}");
                open -= 1;
                depth = depth.saturating_sub(1);
            }
            7 if idx + 1 < sigs.len() => {
                // Call a strictly later function (DAG).
                let callee = rng.gen_range(idx + 1..sigs.len());
                let (expr, kind) = call_expr(callee, sigs[callee]);
                match kind {
                    "int" => {
                        let _ = writeln!(out, "    let x{n}: int = {expr};", n = v + 1);
                        v += 1;
                    }
                    "ptr" => {
                        let _ = writeln!(out, "    let p{n}: int* = {expr};", n = v + 1);
                        v += 1;
                    }
                    _ => {
                        let _ = writeln!(out, "    {expr};");
                    }
                }
            }
            8 => {
                let _ = writeln!(out, "    util_put(pp0, p0);");
            }
            _ => {
                let _ = writeln!(out, "    print(x0);");
            }
        }
    }
    for _ in 0..open {
        let _ = writeln!(out, "    }}");
    }
    match shapes[sigs[idx]].1 {
        "int" => {
            let _ = writeln!(out, "    return x0;");
        }
        "ptr" => {
            let _ = writeln!(out, "    return p0;");
        }
        _ => {
            let _ = writeln!(out, "    return;");
        }
    }
    let _ = writeln!(out, "}}");
}

/// Emits a UAF or double-free defect cluster. Shapes rotate between
/// intra-procedural, cross-call (callee frees), and memory-indirect
/// (Fig. 1-style) plumbing.
fn emit_memory_bug(out: &mut String, rng: &mut SmallRng, kind: BugKind, real: bool, marker: &str) {
    let shape = rng.gen_range(0..3);
    // Guard polarities: real bugs use matching guards, decoys opposite.
    let sink_guard = if real { "g" } else { "!g" };
    let sink_stmt = |out: &mut String| match kind {
        BugKind::DoubleFree => {
            let _ = writeln!(out, "        free(p);");
        }
        _ => {
            let _ = writeln!(out, "        let y: int = *p;");
            let _ = writeln!(out, "        print(y);");
        }
    };
    match shape {
        0 => {
            // Intra-procedural.
            let _ = writeln!(out, "fn {marker}driver(g: bool) {{");
            let _ = writeln!(out, "    let p: int* = malloc();");
            let _ = writeln!(out, "    if (g) {{ free(p); }}");
            let _ = writeln!(out, "    if ({sink_guard}) {{");
            sink_stmt(out);
            let _ = writeln!(out, "    }}");
            let _ = writeln!(out, "    return;");
            let _ = writeln!(out, "}}");
        }
        1 => {
            // Cross-call: a helper frees its parameter.
            let _ = writeln!(out, "fn {marker}release(p: int*) {{ free(p); return; }}");
            let _ = writeln!(out, "fn {marker}driver(g: bool) {{");
            let _ = writeln!(out, "    let p: int* = malloc();");
            let _ = writeln!(out, "    if (g) {{ {marker}release(p); }}");
            let _ = writeln!(out, "    if ({sink_guard}) {{");
            sink_stmt(out);
            let _ = writeln!(out, "    }}");
            let _ = writeln!(out, "    return;");
            let _ = writeln!(out, "}}");
        }
        _ => {
            // Memory-indirect (Fig. 1-style): the freed pointer is stored
            // through an int** cell inside the callee and reloaded by the
            // caller.
            let _ = writeln!(out, "fn {marker}fill(q: int**) {{");
            let _ = writeln!(out, "    let c: int* = malloc();");
            let _ = writeln!(out, "    *q = c;");
            let _ = writeln!(out, "    free(c);");
            let _ = writeln!(out, "    return;");
            let _ = writeln!(out, "}}");
            let _ = writeln!(out, "fn {marker}driver(g: bool) {{");
            // The cell comes from the shared allocator wrapper: a
            // context-insensitive analysis conflates it with every other
            // wrapped cell in the program, so the freed pointer appears
            // to reach every load in every filler.
            let _ = writeln!(out, "    let pp: int** = util_cell();");
            let _ = writeln!(out, "    let init: int* = util_buf();");
            let _ = writeln!(out, "    *pp = init;");
            let _ = writeln!(out, "    if (g) {{ {marker}fill(pp); }}");
            let _ = writeln!(out, "    let p: int* = *pp;");
            let _ = writeln!(out, "    if ({sink_guard}) {{");
            sink_stmt(out);
            let _ = writeln!(out, "    }}");
            let _ = writeln!(out, "    return;");
            let _ = writeln!(out, "}}");
        }
    }
}

/// Emits a taint defect cluster (source and sink possibly in different
/// functions, flow through returns).
fn emit_taint_bug(out: &mut String, rng: &mut SmallRng, kind: BugKind, real: bool, marker: &str) {
    let (source, sink) = match kind {
        BugKind::PathTraversal => ("fgetc()", "fopen"),
        _ => ("getpass()", "sendto"),
    };
    let sink_guard = if real { "g" } else { "!g" };
    let cross = rng.gen_bool(0.5);
    if cross {
        let _ = writeln!(out, "fn {marker}fetch() -> int {{");
        let _ = writeln!(out, "    let s: int = {source};");
        let _ = writeln!(out, "    return s;");
        let _ = writeln!(out, "}}");
        let _ = writeln!(out, "fn {marker}driver(g: bool) {{");
        let _ = writeln!(out, "    let v: int = 0;");
        let _ = writeln!(out, "    if (g) {{ v = {marker}fetch(); }}");
        let _ = writeln!(out, "    if ({sink_guard}) {{");
        emit_sink_use(out, kind, sink, "v + 1");
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out, "    return;");
        let _ = writeln!(out, "}}");
    } else {
        let _ = writeln!(out, "fn {marker}driver(g: bool) {{");
        let _ = writeln!(out, "    let v: int = 0;");
        let _ = writeln!(out, "    if (g) {{ v = {source}; }}");
        let _ = writeln!(out, "    if ({sink_guard}) {{");
        emit_sink_use(out, kind, sink, "v");
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out, "    return;");
        let _ = writeln!(out, "}}");
    }
}

/// `fopen` returns a handle; `sendto` is a procedure.
fn emit_sink_use(out: &mut String, kind: BugKind, sink: &str, arg: &str) {
    if kind == BugKind::PathTraversal {
        let _ = writeln!(out, "        let h: int = {sink}({arg});");
        let _ = writeln!(out, "        print(h);");
    } else {
        let _ = writeln!(out, "        {sink}({arg});");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = GenConfig::default();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.source, b.source);
        assert_eq!(a.bugs.len(), b.bugs.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GenConfig {
            seed: 1,
            ..GenConfig::default()
        });
        let b = generate(&GenConfig {
            seed: 2,
            ..GenConfig::default()
        });
        assert_ne!(a.source, b.source);
    }

    #[test]
    fn generated_program_compiles() {
        let g = generate(&GenConfig {
            taint: true,
            ..GenConfig::default()
        });
        let module = pinpoint_ir::compile(&g.source)
            .unwrap_or_else(|e| panic!("generated program must compile: {e}\n{}", g.source));
        assert!(module.funcs.len() >= 50);
    }

    #[test]
    fn target_kloc_scales_function_count() {
        let small = GenConfig::default().with_target_kloc(1.0);
        let large = GenConfig::default().with_target_kloc(10.0);
        assert!(large.functions > small.functions * 5);
        let g = generate(&large);
        assert!(
            g.lines > 8_000 && g.lines < 13_000,
            "target 10 KLoC, got {}",
            g.lines
        );
    }

    #[test]
    fn ground_truth_counts_match_config() {
        let cfg = GenConfig {
            real_bugs: 2,
            decoys: 3,
            taint: true,
            ..GenConfig::default()
        };
        let g = generate(&cfg);
        // 4 kinds × (2 real + 3 decoys).
        assert_eq!(g.bugs.len(), 4 * 5);
        assert_eq!(g.bugs.iter().filter(|b| b.real).count(), 4 * 2);
    }

    #[test]
    fn markers_appear_in_source() {
        let g = generate(&GenConfig::default());
        for bug in &g.bugs {
            assert!(
                g.source.contains(&bug.marker),
                "marker {} missing",
                bug.marker
            );
        }
    }

    #[test]
    fn all_seeds_compile_smoke() {
        for seed in 0..10 {
            let g = generate(&GenConfig {
                seed,
                functions: 20,
                taint: true,
                ..GenConfig::default()
            });
            pinpoint_ir::compile(&g.source).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
