//! A small, dependency-free deterministic PRNG.
//!
//! The generators in this crate only need reproducibility (same seed ⇒
//! same project), not cryptographic or statistical sophistication, so a
//! SplitMix64 core is plenty: it passes casual uniformity checks, has a
//! one-word state, and is stable across platforms and toolchains.

/// Deterministic SplitMix64 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }

    /// Next raw 64-bit output (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = (range.end - range.start) as u64;
        // Modulo bias is irrelevant at these span sizes (≪ 2^32).
        range.start + (self.next_u64() % span) as usize
    }

    /// Bernoulli draw: `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = r.gen_range(3..10);
            assert!((3..10).contains(&v));
        }
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut r = SmallRng::seed_from_u64(42);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }
}
