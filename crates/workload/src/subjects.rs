//! Benchmark-subject registry mirroring the paper's Table 1.
//!
//! The evaluation of §5 runs on SPEC CINT 2000 plus eighteen open-source
//! projects, ordered by size from 2 KLoC (mcf) to 7,998 KLoC (Firefox).
//! This registry lists the same subjects with their paper sizes and maps
//! each to a generated project of a *scaled-down* size (default 1/20th,
//! laptop scale) produced by a subject-derived seed, so every harness run
//! sees the same ordering and relative sizes the paper's figures use.

use crate::gen::{generate, GenConfig, Generated};

/// One evaluation subject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subject {
    /// Subject name as it appears in Table 1.
    pub name: &'static str,
    /// Size in the paper, KLoC.
    pub paper_kloc: u32,
    /// `true` for the SPEC CINT 2000 half of the table.
    pub spec: bool,
}

/// The Table 1 subject list, ordered by program size.
pub const SUBJECTS: &[Subject] = &[
    Subject {
        name: "mcf",
        paper_kloc: 2,
        spec: true,
    },
    Subject {
        name: "bzip2",
        paper_kloc: 3,
        spec: true,
    },
    Subject {
        name: "gzip",
        paper_kloc: 6,
        spec: true,
    },
    Subject {
        name: "parser",
        paper_kloc: 8,
        spec: true,
    },
    Subject {
        name: "vpr",
        paper_kloc: 11,
        spec: true,
    },
    Subject {
        name: "crafty",
        paper_kloc: 13,
        spec: true,
    },
    Subject {
        name: "twolf",
        paper_kloc: 18,
        spec: true,
    },
    Subject {
        name: "eon",
        paper_kloc: 22,
        spec: true,
    },
    Subject {
        name: "webassembly",
        paper_kloc: 23,
        spec: false,
    },
    Subject {
        name: "darknet",
        paper_kloc: 24,
        spec: false,
    },
    Subject {
        name: "html5-parser",
        paper_kloc: 31,
        spec: false,
    },
    Subject {
        name: "gap",
        paper_kloc: 36,
        spec: true,
    },
    Subject {
        name: "tmux",
        paper_kloc: 40,
        spec: false,
    },
    Subject {
        name: "libssh",
        paper_kloc: 44,
        spec: false,
    },
    Subject {
        name: "goaccess",
        paper_kloc: 48,
        spec: false,
    },
    Subject {
        name: "vortex",
        paper_kloc: 49,
        spec: true,
    },
    Subject {
        name: "shadowsocks",
        paper_kloc: 53,
        spec: false,
    },
    Subject {
        name: "swoole",
        paper_kloc: 54,
        spec: false,
    },
    Subject {
        name: "libuv",
        paper_kloc: 62,
        spec: false,
    },
    Subject {
        name: "perlbmk",
        paper_kloc: 73,
        spec: true,
    },
    Subject {
        name: "transmission",
        paper_kloc: 88,
        spec: false,
    },
    Subject {
        name: "gcc",
        paper_kloc: 135,
        spec: true,
    },
    Subject {
        name: "git",
        paper_kloc: 185,
        spec: false,
    },
    Subject {
        name: "vim",
        paper_kloc: 333,
        spec: false,
    },
    Subject {
        name: "wrk",
        paper_kloc: 340,
        spec: false,
    },
    Subject {
        name: "libicu",
        paper_kloc: 537,
        spec: false,
    },
    Subject {
        name: "php",
        paper_kloc: 863,
        spec: false,
    },
    Subject {
        name: "ffmpeg",
        paper_kloc: 967,
        spec: false,
    },
    Subject {
        name: "mysql",
        paper_kloc: 2030,
        spec: false,
    },
    Subject {
        name: "firefox",
        paper_kloc: 7998,
        spec: false,
    },
];

/// Default scale factor: generated subjects are 1/20th of the paper size
/// (Firefox: 8 MLoC → 400 KLoC), keeping the single-machine runtime of
/// the full sweep in minutes while preserving the ordering and spread.
pub const DEFAULT_SCALE: f64 = 20.0;

/// Generates the project standing in for `subject`.
///
/// Real-bug and decoy counts follow Table 1's spirit: most subjects carry
/// zero or few real defects, every subject carries decoys that an
/// imprecise checker will flag.
pub fn generate_subject(subject: &Subject, scale: f64) -> Generated {
    let kloc = f64::from(subject.paper_kloc) / scale;
    let seed = seed_of(subject.name);
    // Sparse injected defects, scaled gently with size (MySQL-class
    // subjects get a handful, tiny SPEC programs get none) — mirroring
    // the report counts of Table 1.
    let real = match subject.paper_kloc {
        0..=49 => usize::from(!subject.spec),
        50..=999 => 1,
        _ => 3,
    };
    let decoys = 1 + (subject.paper_kloc / 500) as usize;
    generate(&GenConfig {
        seed,
        real_bugs: real,
        decoys,
        taint: false,
        ..GenConfig::default().with_target_kloc(kloc.max(0.1))
    })
}

/// Deterministic per-subject seed.
fn seed_of(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subjects_ordered_by_size() {
        for w in SUBJECTS.windows(2) {
            assert!(
                w[0].paper_kloc <= w[1].paper_kloc,
                "{} vs {}",
                w[0].name,
                w[1].name
            );
        }
    }

    #[test]
    fn registry_matches_paper_extremes() {
        assert_eq!(SUBJECTS.first().unwrap().name, "mcf");
        assert_eq!(SUBJECTS.last().unwrap().name, "firefox");
        assert_eq!(SUBJECTS.last().unwrap().paper_kloc, 7998);
        assert_eq!(SUBJECTS.len(), 30);
    }

    #[test]
    fn subject_generation_is_deterministic() {
        let s = &SUBJECTS[0];
        let a = generate_subject(s, 20.0);
        let b = generate_subject(s, 20.0);
        assert_eq!(a.source, b.source);
    }

    #[test]
    fn scaled_sizes_track_paper_sizes() {
        let small = generate_subject(&SUBJECTS[0], 20.0); // mcf
        let large = generate_subject(&SUBJECTS[21], 20.0); // gcc
        assert!(large.lines > small.lines * 10);
    }

    #[test]
    fn generated_subject_compiles() {
        let g = generate_subject(&SUBJECTS[8], 20.0); // webassembly
        pinpoint_ir::compile(&g.source).expect("subject compiles");
    }
}
