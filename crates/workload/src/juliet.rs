//! A Juliet-style recall suite.
//!
//! The paper measures recall on the NSA Juliet Test Suite: 1421
//! use-after-free / double-free cases spanning 51 flaw variants, all of
//! which Pinpoint detects (§5.1.2). The original suite is C/C++; here an
//! equivalent set of cases is *generated* in the mini-language, spanning
//! the same structural dimensions the Juliet flaw variants vary:
//! control-flow shape around the free and the use (straight-line, if/else
//! guards with constant or opaque conditions, nesting, loops), data flow
//! (direct, copies, through `int**` cells, through globals), and call
//! depth (0–3, via parameters and via return values).
//!
//! Every case is a *real* defect: the recall of a checker is the fraction
//! of cases whose injected pair it reports.

use std::fmt::Write;

/// One generated test case.
#[derive(Debug, Clone)]
pub struct JulietCase {
    /// Flaw-variant index (0..`VARIANT_COUNT`).
    pub variant: usize,
    /// Unique case id; involved functions carry `jc{id}_` in their names.
    pub id: usize,
    /// Marker substring.
    pub marker: String,
    /// `true` for double-free, `false` for use-after-free.
    pub double_free: bool,
}

/// Number of distinct flaw variants (mirrors Juliet's 51 flaw types).
pub const VARIANT_COUNT: usize = 51;

/// The generated suite: one program containing every case.
#[derive(Debug, Clone)]
pub struct JulietSuite {
    /// Program text.
    pub source: String,
    /// All cases.
    pub cases: Vec<JulietCase>,
}

/// Generates `cases_per_variant` cases of every flaw variant.
///
/// With `cases_per_variant = 28` the suite has `51 × 28 = 1428` cases —
/// the same order as Juliet's 1421.
pub fn generate(cases_per_variant: usize) -> JulietSuite {
    let mut source = String::from("global jglobal: int*;\n");
    let mut cases = Vec::new();
    let mut id = 0;
    for variant in 0..VARIANT_COUNT {
        for _ in 0..cases_per_variant {
            let marker = format!("jc{id}_");
            let double_free = variant % 3 == 2;
            emit_case(&mut source, variant, &marker, double_free);
            cases.push(JulietCase {
                variant,
                id,
                marker,
                double_free,
            });
            id += 1;
        }
    }
    JulietSuite { source, cases }
}

/// Emits one case of the given variant.
///
/// Variants combine three orthogonal dimensions, giving 51 shapes:
/// control flow (5) × data flow (4) × call depth / channel (varied).
fn emit_case(out: &mut String, variant: usize, m: &str, double_free: bool) {
    let control = variant % 5; // guard shape
    let data = (variant / 5) % 4; // flow plumbing
    let depth = (variant / 20) % 3; // call depth 0..2 (+ global variant)

    let sink = |out: &mut String, indent: &str| {
        if double_free {
            let _ = writeln!(out, "{indent}free(p);");
        } else {
            let _ = writeln!(out, "{indent}let y: int = *p;");
            let _ = writeln!(out, "{indent}print(y);");
        }
    };

    // Helper chain for the free, when depth > 0.
    match depth {
        1 => {
            let _ = writeln!(out, "fn {m}kill(v: int*) {{ free(v); return; }}");
        }
        2 => {
            let _ = writeln!(out, "fn {m}kill2(v: int*) {{ free(v); return; }}");
            let _ = writeln!(out, "fn {m}kill(v: int*) {{ {m}kill2(v); return; }}");
        }
        _ => {}
    }
    let free_stmt = |indent: &str| -> String {
        if depth == 0 {
            format!("{indent}free(q);")
        } else {
            format!("{indent}{m}kill(q);")
        }
    };

    let _ = writeln!(out, "fn {m}case(g: bool) {{");
    // Data plumbing: how the dangerous pointer reaches the sink variable.
    match data {
        0 => {
            // Direct.
            let _ = writeln!(out, "    let q: int* = malloc();");
            let _ = writeln!(out, "    let p: int* = q;");
        }
        1 => {
            // Copy chain.
            let _ = writeln!(out, "    let q: int* = malloc();");
            let _ = writeln!(out, "    let t1: int* = q;");
            let _ = writeln!(out, "    let t2: int* = t1;");
            let _ = writeln!(out, "    let p: int* = t2;");
        }
        2 => {
            // Through an int** cell.
            let _ = writeln!(out, "    let cell: int** = malloc();");
            let _ = writeln!(out, "    let q: int* = malloc();");
            let _ = writeln!(out, "    *cell = q;");
            let _ = writeln!(out, "    let p: int* = *cell;");
        }
        _ => {
            // Through the module global.
            let _ = writeln!(out, "    let q: int* = malloc();");
            let _ = writeln!(out, "    *jglobal = q;");
            let _ = writeln!(out, "    let p: int* = *jglobal;");
        }
    }
    // Control shape around free and use.
    match control {
        0 => {
            // Straight line.
            let _ = writeln!(out, "{}", free_stmt("    "));
            sink(out, "    ");
        }
        1 => {
            // Both guarded by the same condition.
            let _ = writeln!(out, "    if (g) {{");
            let _ = writeln!(out, "{}", free_stmt("        "));
            sink(out, "        ");
            let _ = writeln!(out, "    }}");
        }
        2 => {
            // Free guarded, use unconditional.
            let _ = writeln!(out, "    if (g) {{");
            let _ = writeln!(out, "{}", free_stmt("        "));
            let _ = writeln!(out, "    }}");
            sink(out, "    ");
        }
        3 => {
            // Nested guards, same polarity.
            let _ = writeln!(out, "    if (g) {{");
            let _ = writeln!(out, "        if (g) {{");
            let _ = writeln!(out, "{}", free_stmt("            "));
            let _ = writeln!(out, "        }}");
            sink(out, "        ");
            let _ = writeln!(out, "    }}");
        }
        _ => {
            // Free inside a (once-unrolled) loop.
            let _ = writeln!(out, "    let i: int = 0;");
            let _ = writeln!(out, "    while (i < 1) {{");
            let _ = writeln!(out, "{}", free_stmt("        "));
            let _ = writeln!(out, "        i = i + 1;");
            let _ = writeln!(out, "    }}");
            sink(out, "    ");
        }
    }
    let _ = writeln!(out, "    return;");
    let _ = writeln!(out, "}}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_compiles() {
        let suite = generate(2);
        pinpoint_ir::compile(&suite.source)
            .unwrap_or_else(|e| panic!("juliet suite must compile: {e}"));
        assert_eq!(suite.cases.len(), VARIANT_COUNT * 2);
    }

    #[test]
    fn full_scale_suite_size() {
        let suite = generate(28);
        assert_eq!(suite.cases.len(), 1428, "paper-scale case count");
    }

    #[test]
    fn markers_are_unique_and_present() {
        let suite = generate(1);
        let mut seen = std::collections::HashSet::new();
        for c in &suite.cases {
            assert!(seen.insert(c.marker.clone()));
            assert!(suite.source.contains(&c.marker));
        }
    }

    #[test]
    fn variants_cover_double_free_and_uaf() {
        let suite = generate(1);
        assert!(suite.cases.iter().any(|c| c.double_free));
        assert!(suite.cases.iter().any(|c| !c.double_free));
    }
}
