//! Seeded multi-client traffic for the serving layer.
//!
//! Models "N engineers with editors open": each simulated client gets
//! its own seeded project (via [`gen`](crate::gen)), opens it in its own
//! session, and then interleaves incremental edits with checks — the
//! request mix `pinpoint serve` sees in production. The same
//! [`TrafficConfig`] always produces the same scripts, so serving
//! benchmarks and concurrency tests are reproducible, and a concurrent
//! run can be byte-compared against replaying each client's script
//! alone.
//!
//! Scripts are transport-agnostic [`TrafficOp`] lists; use
//! [`render_ndjson_v2`] to serialize a round-robin interleaving as
//! `pinpoint-rpc-v2` request lines ready to pipe into `pinpoint serve`.

use crate::gen::{generate, GenConfig};
use crate::rng::SmallRng;

/// Traffic-generator configuration (same config ⇒ same scripts).
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Base RNG seed; each client derives its own stream from it.
    pub seed: u64,
    /// Number of simulated clients (one session each).
    pub clients: usize,
    /// Edit → check rounds per client after the initial open + check.
    pub edits_per_client: usize,
    /// Project size per client, in thousand source lines.
    pub kloc: f64,
    /// End each script with a `stats` request (canonical form).
    pub stats_at_end: bool,
    /// When non-zero, [`render_ndjson_v2`] inserts an in-band `status`
    /// probe after every N client request lines — exercising the
    /// worker-pool bypass while the queue is busy. `0` disables.
    pub status_every: usize,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            seed: 42,
            clients: 10,
            edits_per_client: 2,
            kloc: 2.0,
            stats_at_end: false,
            status_every: 0,
        }
    }
}

/// One request of a client script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrafficOp {
    /// Open the session's workspace over the given program text.
    Open(String),
    /// Apply an edited program incrementally.
    Update(String),
    /// Run a checker by serve-protocol name, or every checker (`None`).
    Check(Option<&'static str>),
    /// Export the canonical `pinpoint-stats-v1` document.
    Stats,
}

/// One simulated client: a session name and its ordered requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientScript {
    /// Session name, unique per client.
    pub session: String,
    /// Requests in submission order.
    pub ops: Vec<TrafficOp>,
}

/// Checker names rotated through by generated checks (serve-protocol
/// spellings; `taint` defects are off in the generated projects, so the
/// taint checkers exercise the no-findings path).
const CHECKERS: [Option<&str>; 3] = [None, Some("uaf"), Some("null")];

/// Generates the per-client scripts for `config`.
pub fn generate_traffic(config: &TrafficConfig) -> Vec<ClientScript> {
    (0..config.clients)
        .map(|i| {
            // splitmix-style stream separation: clients share nothing.
            let client_seed = config
                .seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
            let mut rng = SmallRng::seed_from_u64(client_seed);
            let project = generate(&GenConfig {
                seed: client_seed,
                real_bugs: 1,
                decoys: 1,
                taint: false,
                ..GenConfig::default().with_target_kloc(config.kloc)
            });
            let mut ops = vec![
                TrafficOp::Open(project.source.clone()),
                TrafficOp::Check(CHECKERS[rng.gen_range(0..CHECKERS.len())]),
            ];
            let mut source = project.source;
            for round in 0..config.edits_per_client {
                source = edit_filler(&source, &mut rng, round);
                ops.push(TrafficOp::Update(source.clone()));
                ops.push(TrafficOp::Check(CHECKERS[rng.gen_range(0..CHECKERS.len())]));
            }
            if config.stats_at_end {
                ops.push(TrafficOp::Stats);
            }
            ClientScript {
                session: format!("client{i}"),
                ops,
            }
        })
        .collect()
}

/// Body-only edit to a random filler function: inserts a padding
/// statement after its opening brace, preserving the function set so
/// the workspace's artefact splicing stays live.
fn edit_filler(source: &str, rng: &mut SmallRng, round: usize) -> String {
    let fillers: Vec<usize> = {
        let mut starts = Vec::new();
        let mut from = 0;
        while let Some(i) = source[from..].find("fn filler") {
            starts.push(from + i);
            from += i + 1;
        }
        starts
    };
    if fillers.is_empty() {
        return source.to_string();
    }
    let start = fillers[rng.gen_range(0..fillers.len())];
    let brace = match source[start..].find('{') {
        Some(i) => start + i + 1,
        None => return source.to_string(),
    };
    format!(
        "{}\n    let traffic_pad_{round}: int = {};\n    print(traffic_pad_{round});{}",
        &source[..brace],
        rng.gen_range(1..100),
        &source[brace..]
    )
}

/// Serializes the scripts as one `pinpoint-rpc-v2` NDJSON conversation:
/// a `hello` handshake, the clients' requests interleaved round-robin
/// (the worst case for cross-session isolation), and a final `quit`.
/// Request ids are `"<session>:<index>"`, so replies can be matched
/// back to script positions.
pub fn render_ndjson_v2(scripts: &[ClientScript]) -> String {
    render_ndjson_v2_probed(scripts, 0)
}

/// Like [`render_ndjson_v2`], but when `status_every > 0` an in-band
/// `status` probe (ids `probe:1`, `probe:2`, …) is inserted after every
/// `status_every` client request lines — the mix a monitoring client
/// produces while the editors keep the queue busy.
pub fn render_ndjson_v2_probed(scripts: &[ClientScript], status_every: usize) -> String {
    let mut out =
        String::from("{\"cmd\":\"hello\",\"id\":\"hello\",\"proto\":\"pinpoint-rpc-v2\"}\n");
    let mut cursors = vec![0usize; scripts.len()];
    let (mut emitted, mut probes) = (0usize, 0usize);
    loop {
        let mut progressed = false;
        for (c, script) in scripts.iter().enumerate() {
            let Some(op) = script.ops.get(cursors[c]) else {
                continue;
            };
            out.push_str(&render_op_v2(
                &script.session,
                &format!("{}:{}", script.session, cursors[c]),
                op,
            ));
            out.push('\n');
            cursors[c] += 1;
            progressed = true;
            emitted += 1;
            if status_every > 0 && emitted % status_every == 0 {
                probes += 1;
                out.push_str(&format!(
                    "{{\"cmd\":\"status\",\"id\":\"probe:{probes}\",\"tail\":4}}\n"
                ));
            }
        }
        if !progressed {
            break;
        }
    }
    out.push_str("{\"cmd\":\"quit\",\"id\":\"quit\"}\n");
    out
}

/// Renders one op as a v2 request line (no trailing newline).
pub fn render_op_v2(session: &str, id: &str, op: &TrafficOp) -> String {
    let head = format!("\"id\":\"{}\",\"session\":\"{}\"", esc(id), esc(session));
    match op {
        TrafficOp::Open(src) => {
            format!("{{\"cmd\":\"open\",{head},\"source\":\"{}\"}}", esc(src))
        }
        TrafficOp::Update(src) => {
            format!("{{\"cmd\":\"update\",{head},\"source\":\"{}\"}}", esc(src))
        }
        TrafficOp::Check(None) => format!("{{\"cmd\":\"check\",{head}}}"),
        TrafficOp::Check(Some(name)) => {
            format!("{{\"cmd\":\"check\",{head},\"checker\":\"{name}\"}}")
        }
        TrafficOp::Stats => format!("{{\"cmd\":\"stats\",{head},\"canonical\":true}}"),
    }
}

/// Escapes program text for a JSON string literal.
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
        .replace('\t', "\\t")
        .replace('\r', "\\r")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_is_deterministic() {
        let cfg = TrafficConfig {
            clients: 3,
            edits_per_client: 2,
            kloc: 0.5,
            ..TrafficConfig::default()
        };
        let a = generate_traffic(&cfg);
        let b = generate_traffic(&cfg);
        assert_eq!(a, b, "same config must produce identical scripts");
        assert_eq!(a.len(), 3);
        // open + check + 2 × (update + check)
        assert!(a.iter().all(|s| s.ops.len() == 6));
        // Clients are distinct streams: different projects.
        assert_ne!(a[0].ops[0], a[1].ops[0]);
    }

    #[test]
    fn edits_preserve_the_function_set() {
        let cfg = TrafficConfig {
            clients: 1,
            edits_per_client: 3,
            kloc: 0.5,
            ..TrafficConfig::default()
        };
        let script = generate_traffic(&cfg).remove(0);
        let TrafficOp::Open(base) = &script.ops[0] else {
            panic!("first op is open");
        };
        let fn_count = base.matches("fn ").count();
        for op in &script.ops {
            if let TrafficOp::Update(src) = op {
                assert_eq!(src.matches("fn ").count(), fn_count, "body-only edits");
                assert_ne!(src, base, "edits change the text");
            }
        }
    }

    #[test]
    fn ndjson_rendering_shape() {
        let cfg = TrafficConfig {
            clients: 2,
            edits_per_client: 1,
            kloc: 0.5,
            stats_at_end: true,
            ..TrafficConfig::default()
        };
        let scripts = generate_traffic(&cfg);
        let ndjson = render_ndjson_v2(&scripts);
        let lines: Vec<&str> = ndjson.lines().collect();
        // hello + 2 clients × (open+check+update+check+stats) + quit
        assert_eq!(lines.len(), 1 + 2 * 5 + 1, "{}", lines.len());
        assert!(lines[0].contains("\"cmd\":\"hello\""));
        assert!(lines[0].contains("pinpoint-rpc-v2"));
        assert!(lines.last().unwrap().contains("\"cmd\":\"quit\""));
        // Round-robin: the two opens come first, one per client.
        assert!(lines[1].contains("\"cmd\":\"open\"") && lines[1].contains("client0"));
        assert!(lines[2].contains("\"cmd\":\"open\"") && lines[2].contains("client1"));
        // Sources with newlines stay one line per request.
        assert!(lines[1].contains("\\n") && !lines[1].contains('\n'));
    }

    #[test]
    fn status_probes_interleave_on_schedule() {
        let cfg = TrafficConfig {
            clients: 2,
            edits_per_client: 1,
            kloc: 0.5,
            ..TrafficConfig::default()
        };
        let scripts = generate_traffic(&cfg);
        let ndjson = render_ndjson_v2_probed(&scripts, 3);
        let lines: Vec<&str> = ndjson.lines().collect();
        // 8 client requests ⇒ probes after lines 3 and 6.
        let probe_at: Vec<usize> = lines
            .iter()
            .enumerate()
            .filter(|(_, l)| l.contains("\"cmd\":\"status\""))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(probe_at.len(), 2, "8 requests / every 3 = 2 probes");
        assert!(lines[probe_at[0]].contains("\"id\":\"probe:1\""));
        assert!(lines[probe_at[1]].contains("\"id\":\"probe:2\""));
        // Probes ride in-band: after the hello, before the quit.
        assert!(probe_at.iter().all(|&i| i > 0 && i < lines.len() - 1));
        // status_every = 0 matches the plain rendering byte-for-byte.
        assert_eq!(
            render_ndjson_v2_probed(&scripts, 0),
            render_ndjson_v2(&scripts)
        );
    }
}
