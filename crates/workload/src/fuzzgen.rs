//! Grammar-based fuzz-program generator.
//!
//! Unlike [`crate::gen`], which builds *benchmark* projects around
//! injected ground-truth defects, this module generates arbitrary
//! well-typed programs exercising the full §3 language surface —
//! k-level loads and stores (through `int*`/`int**`/`int***`), φ-nodes
//! (reassignment under branches and loops), call DAGs, bounded direct
//! recursion, globals, and free/use sites — as raw material for the
//! differential oracles in `pinpoint-fuzz`.
//!
//! Two invariants matter more than realism:
//!
//! 1. **Every output compiles.** The generator tracks a typed scope per
//!    function and only emits statements whose operands exist at the
//!    right type, so a frontend rejection is itself a bug (in the
//!    generator or the frontend), never noise.
//! 2. **Same seed ⇒ same program.** All choices flow from one
//!    [`SmallRng`], so any discrepancy a fuzz run finds is replayable
//!    from its seed alone.

use crate::rng::SmallRng;
use std::fmt::Write;

/// Configuration for the fuzz generator.
#[derive(Debug, Clone)]
pub struct FuzzGenConfig {
    /// RNG seed (same seed ⇒ same program).
    pub seed: u64,
    /// Number of helper functions besides `main` (≥ 1).
    pub functions: usize,
    /// Statement budget per function body.
    pub max_stmts: usize,
    /// Number of global cells (alternating `int` / `int*`).
    pub globals: usize,
    /// Emit a bounded directly-recursive helper and calls to it.
    pub recursion: bool,
}

impl Default for FuzzGenConfig {
    fn default() -> Self {
        FuzzGenConfig {
            seed: 0,
            functions: 6,
            max_stmts: 10,
            globals: 2,
            recursion: true,
        }
    }
}

/// Typed scope of one function under generation. Every name here is
/// declared in the prologue (or is a parameter), so statements at any
/// nesting depth may reference it.
#[derive(Default)]
struct Scope {
    ints: Vec<String>,
    bools: Vec<String>,
    p1: Vec<String>, // int*
    p2: Vec<String>, // int**
    p3: Vec<String>, // int***
}

/// Signature shapes helpers draw from: (param list, return type tag).
/// Tags: "void" | "int" | "bool" | "ptr".
const SHAPES: &[(&str, &str)] = &[
    ("()", "int"),
    ("(a: int, b: int)", "int"),
    ("(p: int*)", "int"),
    ("(q: int**)", "ptr"),
    ("(c: bool, x: int)", "bool"),
    ("(p: int*, q: int**)", "void"),
    ("()", "ptr"),
];

/// Adds shape parameters to the scope.
fn scope_with_params(shape: usize) -> Scope {
    let mut s = Scope::default();
    match shape {
        1 => {
            s.ints.push("a".into());
            s.ints.push("b".into());
        }
        2 => s.p1.push("p".into()),
        3 => s.p2.push("q".into()),
        4 => {
            s.bools.push("c".into());
            s.ints.push("x".into());
        }
        5 => {
            s.p1.push("p".into());
            s.p2.push("q".into());
        }
        _ => {}
    }
    s
}

struct Gen {
    rng: SmallRng,
    globals_int: Vec<String>,
    globals_ptr: Vec<String>,
    recursion: bool,
}

impl Gen {
    fn pick<'a>(&mut self, xs: &'a [String]) -> &'a str {
        &xs[self.rng.gen_range(0..xs.len())]
    }

    /// An int-typed expression. `depth` bounds recursion.
    fn int_expr(&mut self, s: &Scope, depth: usize) -> String {
        let roll = self.rng.gen_range(0..10);
        match roll {
            0 | 1 => format!("{}", self.rng.gen_range(0..7) as i64 - 2),
            2 => "nondet_int()".into(),
            3 if !s.p1.is_empty() => format!("*{}", self.pick(&s.p1)),
            4 if !s.p2.is_empty() => format!("**{}", self.pick(&s.p2)),
            5..=7 if depth > 0 => {
                let op = ["+", "-", "*"][self.rng.gen_range(0..3)];
                format!(
                    "{} {op} {}",
                    self.int_expr(s, depth - 1),
                    self.int_expr(s, depth - 1)
                )
            }
            8 if !self.globals_int.is_empty() => {
                format!("*{}", self.pick(&self.globals_int.clone()))
            }
            _ if !s.ints.is_empty() => self.pick(&s.ints).to_string(),
            _ => "1".into(),
        }
    }

    /// A bool-typed expression.
    fn bool_expr(&mut self, s: &Scope, depth: usize) -> String {
        match self.rng.gen_range(0..8) {
            0 => "nondet_bool()".into(),
            1 if depth > 0 => format!(
                "{} < {}",
                self.int_expr(s, depth - 1),
                self.int_expr(s, depth - 1)
            ),
            2 if depth > 0 => format!(
                "{} == {}",
                self.int_expr(s, depth - 1),
                self.int_expr(s, depth - 1)
            ),
            3 if depth > 0 => format!("!({})", self.bool_expr(s, depth - 1)),
            4 if depth > 0 && !s.bools.is_empty() => {
                let op = if self.rng.gen_bool(0.5) { "&&" } else { "||" };
                let b = self.pick(&s.bools).to_string();
                format!("{b} {op} {}", self.bool_expr(s, depth - 1))
            }
            5 if !s.p1.is_empty() => format!("{} == null", self.pick(&s.p1)),
            _ if !s.bools.is_empty() => self.pick(&s.bools).to_string(),
            _ => "true".into(),
        }
    }

    /// Emits one statement at `indent`. `fidx` is the index of the
    /// function under generation (it may call helpers with a strictly
    /// larger index, keeping the call graph a DAG apart from `rec`).
    /// `nest` bounds block nesting.
    fn stmt(&mut self, out: &mut String, s: &Scope, fidx: usize, nhelpers: usize, nest: usize) {
        let pad = "    ".repeat(out_depth(nest));
        match self.rng.gen_range(0..17) {
            0 if !s.ints.is_empty() => {
                let v = self.pick(&s.ints).to_string();
                let e = self.int_expr(s, 2);
                let _ = writeln!(out, "{pad}{v} = {e};");
            }
            1 if !s.bools.is_empty() => {
                let v = self.pick(&s.bools).to_string();
                let e = self.bool_expr(s, 2);
                let _ = writeln!(out, "{pad}{v} = {e};");
            }
            2 if !s.p1.is_empty() => {
                let p = self.pick(&s.p1).to_string();
                let e = self.int_expr(s, 1);
                let _ = writeln!(out, "{pad}*{p} = {e};");
            }
            3 if !s.p2.is_empty() && !s.p1.is_empty() => {
                let q = self.pick(&s.p2).to_string();
                let p = self.pick(&s.p1).to_string();
                let _ = writeln!(out, "{pad}*{q} = {p};");
            }
            4 if !s.p2.is_empty() => {
                let q = self.pick(&s.p2).to_string();
                let e = self.int_expr(s, 1);
                let _ = writeln!(out, "{pad}**{q} = {e};");
            }
            5 if !s.p3.is_empty() => {
                let r = self.pick(&s.p3).to_string();
                match self.rng.gen_range(0..3) {
                    0 if !s.p2.is_empty() => {
                        let q = self.pick(&s.p2).to_string();
                        let _ = writeln!(out, "{pad}*{r} = {q};");
                    }
                    1 if !s.p1.is_empty() => {
                        let p = self.pick(&s.p1).to_string();
                        let _ = writeln!(out, "{pad}**{r} = {p};");
                    }
                    _ => {
                        let e = self.int_expr(s, 1);
                        let _ = writeln!(out, "{pad}***{r} = {e};");
                    }
                }
            }
            6 if !s.ints.is_empty() => {
                let v = self.pick(&s.ints).to_string();
                let load = if !s.p3.is_empty() && self.rng.gen_bool(0.3) {
                    format!("***{}", self.pick(&s.p3))
                } else if !s.p2.is_empty() && self.rng.gen_bool(0.5) {
                    format!("**{}", self.pick(&s.p2))
                } else if !s.p1.is_empty() {
                    format!("*{}", self.pick(&s.p1))
                } else {
                    "0".into()
                };
                let _ = writeln!(out, "{pad}{v} = {load};");
            }
            7 if !s.p1.is_empty() && !s.p2.is_empty() => {
                let p = self.pick(&s.p1).to_string();
                let q = self.pick(&s.p2).to_string();
                let _ = writeln!(out, "{pad}{p} = *{q};");
            }
            8 if !self.globals_int.is_empty() || !self.globals_ptr.is_empty() => {
                self.global_traffic(out, s, &pad);
            }
            9 if nest < 2 => {
                let cond = self.bool_expr(s, 2);
                let _ = writeln!(out, "{pad}if ({cond}) {{");
                for _ in 0..self.rng.gen_range(1..4) {
                    self.stmt(out, s, fidx, nhelpers, nest + 1);
                }
                if self.rng.gen_bool(0.5) {
                    let _ = writeln!(out, "{pad}}} else {{");
                    for _ in 0..self.rng.gen_range(1..3) {
                        self.stmt(out, s, fidx, nhelpers, nest + 1);
                    }
                }
                let _ = writeln!(out, "{pad}}}");
            }
            10 if nest < 2 => {
                let cond = self.bool_expr(s, 1);
                let _ = writeln!(out, "{pad}while ({cond}) {{");
                for _ in 0..self.rng.gen_range(1..3) {
                    self.stmt(out, s, fidx, nhelpers, nest + 1);
                }
                let _ = writeln!(out, "{pad}}}");
            }
            11 if fidx + 1 < nhelpers => {
                let callee = self.rng.gen_range(fidx + 1..nhelpers);
                self.call(out, s, callee, &pad);
            }
            12 if self.recursion && !s.ints.is_empty() => {
                let v = self.pick(&s.ints).to_string();
                let e = self.int_expr(s, 1);
                let _ = writeln!(out, "{pad}{v} = rec({e});");
            }
            13 if !s.p1.is_empty() => {
                // Free/use site: free a pointer, sometimes use it after
                // under a guard — the raw material for UAF reports.
                let p = self.pick(&s.p1).to_string();
                let _ = writeln!(out, "{pad}free({p});");
                if self.rng.gen_bool(0.4) && !s.ints.is_empty() && nest < 2 {
                    let v = self.pick(&s.ints).to_string();
                    let g = self.bool_expr(s, 1);
                    let _ = writeln!(out, "{pad}if ({g}) {{");
                    let _ = writeln!(out, "{pad}    {v} = *{p};");
                    let _ = writeln!(out, "{pad}}}");
                }
            }
            14 if !s.p1.is_empty() && self.rng.gen_bool(0.5) => {
                let p = self.pick(&s.p1).to_string();
                let _ = writeln!(out, "{pad}{p} = malloc();");
            }
            _ => {
                let e = self.int_expr(s, 1);
                let _ = writeln!(out, "{pad}print({e});");
            }
        }
    }

    /// A read or write through a random global cell.
    fn global_traffic(&mut self, out: &mut String, s: &Scope, pad: &str) {
        let use_ptr =
            !self.globals_ptr.is_empty() && (self.globals_int.is_empty() || self.rng.gen_bool(0.5));
        if use_ptr {
            let g = self.pick(&self.globals_ptr.clone()).to_string();
            if self.rng.gen_bool(0.5) && !s.p1.is_empty() {
                let p = self.pick(&s.p1).to_string();
                let _ = writeln!(out, "{pad}*{g} = {p};");
            } else if !s.p1.is_empty() {
                let p = self.pick(&s.p1).to_string();
                let _ = writeln!(out, "{pad}{p} = *{g};");
            }
        } else {
            let g = self.pick(&self.globals_int.clone()).to_string();
            if self.rng.gen_bool(0.5) {
                let e = self.int_expr(s, 1);
                let _ = writeln!(out, "{pad}*{g} = {e};");
            } else if !s.ints.is_empty() {
                let v = self.pick(&s.ints).to_string();
                let _ = writeln!(out, "{pad}{v} = *{g};");
            }
        }
    }

    /// A call to helper `callee`, consuming its result at the right type.
    fn call(&mut self, out: &mut String, s: &Scope, callee: usize, pad: &str) {
        let shape = callee % SHAPES.len();
        let args = match shape {
            1 => format!("{}, {}", self.int_expr(s, 1), self.int_expr(s, 1)),
            2 => match s.p1.is_empty() {
                true => return,
                false => self.pick(&s.p1).to_string(),
            },
            3 => match s.p2.is_empty() {
                true => return,
                false => self.pick(&s.p2).to_string(),
            },
            4 => format!("{}, {}", self.bool_expr(s, 1), self.int_expr(s, 1)),
            5 => {
                if s.p1.is_empty() || s.p2.is_empty() {
                    return;
                }
                format!("{}, {}", self.pick(&s.p1), self.pick(&s.p2))
            }
            _ => String::new(),
        };
        let expr = format!("f{callee}({args})");
        match SHAPES[shape].1 {
            "int" if !s.ints.is_empty() => {
                let v = self.pick(&s.ints).to_string();
                let _ = writeln!(out, "{pad}{v} = {expr};");
            }
            "bool" if !s.bools.is_empty() => {
                let v = self.pick(&s.bools).to_string();
                let _ = writeln!(out, "{pad}{v} = {expr};");
            }
            "ptr" if !s.p1.is_empty() => {
                let v = self.pick(&s.p1).to_string();
                let _ = writeln!(out, "{pad}{v} = {expr};");
            }
            "void" => {
                let _ = writeln!(out, "{pad}{expr};");
            }
            _ => {
                let _ = writeln!(out, "{pad}print({expr});");
            }
        }
    }

    /// Emits one function: prologue declaring a typed scope, `max_stmts`
    /// random statements, and a return matching the signature.
    fn function(
        &mut self,
        out: &mut String,
        name: &str,
        shape: usize,
        idx: usize,
        n: usize,
        max_stmts: usize,
    ) {
        let (params, ret) = SHAPES[shape];
        let arrow = match ret {
            "int" => " -> int",
            "bool" => " -> bool",
            "ptr" => " -> int*",
            _ => "",
        };
        let _ = writeln!(out, "fn {name}{params}{arrow} {{");
        let mut s = scope_with_params(shape);
        // Prologue: every function gets the same typed toolkit, so any
        // statement shape is emittable at any point.
        let init = self.rng.gen_range(0..5) as i64 - 1;
        let _ = writeln!(out, "    let v0: int = {init};");
        let _ = writeln!(out, "    let v1: int = nondet_int();");
        let _ = writeln!(out, "    let b0: bool = nondet_bool();");
        let _ = writeln!(out, "    let m0: int* = malloc();");
        let _ = writeln!(out, "    let w0: int** = malloc();");
        let _ = writeln!(out, "    *w0 = m0;");
        s.ints.push("v0".into());
        s.ints.push("v1".into());
        s.bools.push("b0".into());
        s.p1.push("m0".into());
        s.p2.push("w0".into());
        if self.rng.gen_bool(0.4) {
            let _ = writeln!(out, "    let t0: int*** = malloc();");
            let _ = writeln!(out, "    *t0 = w0;");
            s.p3.push("t0".into());
        }
        if self.rng.gen_bool(0.4) {
            let _ = writeln!(out, "    let m1: int* = malloc();");
            s.p1.push("m1".into());
        }
        let stmts = self.rng.gen_range(1..max_stmts.max(2));
        for _ in 0..stmts {
            self.stmt(out, &s, idx, n, 0);
        }
        match ret {
            "int" => {
                let v = self.pick(&s.ints).to_string();
                let _ = writeln!(out, "    return {v};");
            }
            "bool" => {
                let v = self.pick(&s.bools).to_string();
                let _ = writeln!(out, "    return {v};");
            }
            "ptr" => {
                let v = self.pick(&s.p1).to_string();
                let _ = writeln!(out, "    return {v};");
            }
            _ => {
                let _ = writeln!(out, "    return;");
            }
        }
        let _ = writeln!(out, "}}");
    }
}

fn out_depth(nest: usize) -> usize {
    nest + 1
}

/// Generates one well-typed random program from `cfg`.
pub fn generate(cfg: &FuzzGenConfig) -> String {
    let rng = SmallRng::seed_from_u64(cfg.seed);
    let mut g = Gen {
        rng,
        globals_int: Vec::new(),
        globals_ptr: Vec::new(),
        recursion: cfg.recursion,
    };
    let mut out = String::new();
    for i in 0..cfg.globals {
        if i % 2 == 0 {
            let _ = writeln!(out, "global gi{i}: int;");
            g.globals_int.push(format!("gi{i}"));
        } else {
            let _ = writeln!(out, "global gp{i}: int*;");
            g.globals_ptr.push(format!("gp{i}"));
        }
    }
    if cfg.recursion {
        // Bounded direct recursion: the analysis treats same-SCC calls
        // summary-free (§4.2), so this exercises that path.
        let _ = writeln!(
            out,
            "fn rec(n: int) -> int {{\n    if (n < 1) {{ return 0; }}\n    let p: int* = malloc();\n    *p = n;\n    let t: int = rec(n - 1);\n    let s: int = *p + t;\n    free(p);\n    return s;\n}}"
        );
    }
    let n = cfg.functions.max(1);
    for i in 0..n {
        let name = format!("f{i}");
        g.function(&mut out, &name, i % SHAPES.len(), i, n, cfg.max_stmts);
    }
    // `main` may call any helper (index treated as -1 via fidx 0 over n).
    g.function(&mut out, "main", 0, 0, n, cfg.max_stmts);
    // `main`'s shape is SHAPES[0] = `() -> int`; that is fine (the
    // entry point's signature is not special-cased by the analysis).
    out
}

/// Applies one random, validity-preserving edit to `source` — the edit
/// scripts the warm/cold oracle replays through `Workspace::update_source`.
pub fn mutate(source: &str, rng: &mut SmallRng) -> String {
    match rng.gen_range(0..3) {
        0 => {
            // Append a fresh leaf function (new call-graph node).
            let k = rng.gen_range(0..1000);
            format!(
                "{source}\nfn extra{k}() -> int {{\n    let z: int* = malloc();\n    *z = {k};\n    let y: int = *z;\n    return y;\n}}\n"
            )
        }
        1 => {
            // Retarget the first print argument (body-only edit).
            let c = rng.gen_range(0..100);
            let mut done = false;
            let lines: Vec<String> = source
                .lines()
                .map(|l| {
                    if !done && l.trim_start().starts_with("print(") {
                        done = true;
                        let indent = &l[..l.len() - l.trim_start().len()];
                        format!("{indent}print({c});")
                    } else {
                        l.to_string()
                    }
                })
                .collect();
            lines.join("\n") + "\n"
        }
        _ => {
            // Insert a statement at the top of the first function body.
            let c = rng.gen_range(0..50);
            let mut out = String::new();
            let mut done = false;
            for l in source.lines() {
                out.push_str(l);
                out.push('\n');
                if !done && l.starts_with("fn ") && l.trim_end().ends_with('{') {
                    done = true;
                    let _ = writeln!(out, "    print({c});");
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = FuzzGenConfig::default();
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn seeds_differ() {
        let a = generate(&FuzzGenConfig {
            seed: 1,
            ..Default::default()
        });
        let b = generate(&FuzzGenConfig {
            seed: 2,
            ..Default::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn many_seeds_compile() {
        for seed in 0..200 {
            let src = generate(&FuzzGenConfig {
                seed,
                ..Default::default()
            });
            pinpoint_ir::compile(&src)
                .unwrap_or_else(|e| panic!("seed {seed} must compile: {e}\n{src}"));
        }
    }

    #[test]
    fn mutations_compile() {
        let mut rng = SmallRng::seed_from_u64(99);
        for seed in 0..40 {
            let mut src = generate(&FuzzGenConfig {
                seed,
                ..Default::default()
            });
            for step in 0..3 {
                src = mutate(&src, &mut rng);
                pinpoint_ir::compile(&src)
                    .unwrap_or_else(|e| panic!("seed {seed} edit {step}: {e}\n{src}"));
            }
        }
    }

    #[test]
    fn covers_language_surface() {
        // Across a handful of seeds the generator must exercise every
        // headline feature at least once.
        let mut all = String::new();
        for seed in 0..20 {
            all.push_str(&generate(&FuzzGenConfig {
                seed,
                ..Default::default()
            }));
        }
        for needle in [
            "while (",
            "if (",
            "else",
            "global gi0",
            "free(",
            "rec(",
            "int***",
            "***",
            "**",
        ] {
            assert!(all.contains(needle), "missing feature: {needle}");
        }
    }
}
