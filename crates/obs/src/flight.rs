//! Flight recorder: a fixed-capacity ring buffer of structured server
//! events.
//!
//! A long-lived `pinpoint serve` process needs a "what just happened"
//! view that costs almost nothing while nobody is looking: the
//! [`FlightRecorder`] keeps the last *capacity* [`FlightEvent`]s in a
//! preallocated ring — request accepted / started / completed / shed,
//! session open / close, worker panic, slow query — each tagged with
//! its session, request id, operation kind, the queue depth at the
//! instant of the event, and (for completions) the request's wall-clock
//! duration. Recording is one short mutex hold and an O(1) slot
//! overwrite; nothing allocates beyond the event's own strings, and a
//! capacity of 0 disables recording entirely (the push is a single
//! branch).
//!
//! The tail is exported as a JSON array. The *canonical* form zeroes
//! the per-event timestamp and duration, so a deterministic request
//! sequence (e.g. one synchronous session) produces byte-identical
//! tails at any worker-pool size — the same invariant the stats
//! document keeps.

use crate::json::{Arr, Obj};
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// What happened. Wire names are [`FlightEventKind::label`] — stable
/// snake_case strings, never the Rust variant names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightEventKind {
    /// A request passed admission and entered its session's queue.
    Accepted,
    /// A request was refused because the global queue was full.
    Shed,
    /// A worker began executing a request.
    Started,
    /// A worker finished a request (`duration_ns` is meaningful).
    Completed,
    /// A session's workspace was (re)opened.
    SessionOpen,
    /// A session was closed and removed.
    SessionClose,
    /// A worker panicked mid-request; the session's workspace dropped.
    WorkerPanic,
    /// A request exceeded the slow-query threshold; `detail` carries its
    /// per-query solver attribution rows.
    SlowQuery,
}

impl FlightEventKind {
    /// The stable wire name of this event kind.
    pub fn label(self) -> &'static str {
        match self {
            FlightEventKind::Accepted => "accepted",
            FlightEventKind::Shed => "shed",
            FlightEventKind::Started => "started",
            FlightEventKind::Completed => "completed",
            FlightEventKind::SessionOpen => "session_open",
            FlightEventKind::SessionClose => "session_close",
            FlightEventKind::WorkerPanic => "worker_panic",
            FlightEventKind::SlowQuery => "slow_query",
        }
    }
}

/// One recorded event. `seq` is a global monotonically increasing
/// sequence number (events older than `capacity` are overwritten but
/// their numbers are never reused), `t_ns` is nanoseconds since the
/// recorder was created.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global sequence number (assigned by the recorder).
    pub seq: u64,
    /// Nanoseconds since recorder creation (assigned by the recorder).
    pub t_ns: u64,
    /// What happened.
    pub kind: FlightEventKind,
    /// Session the event belongs to (empty for connection-level events).
    pub session: String,
    /// Client-chosen request id (empty for session-level events).
    pub request_id: String,
    /// Operation kind label (`open`, `update`, `check`, `stats`, …).
    pub op: String,
    /// Requests waiting across all sessions at the instant of the event.
    pub queue_depth: u64,
    /// Request wall-clock duration (0 unless the kind carries one).
    pub duration_ns: u64,
    /// Free-form extra payload, already-rendered JSON (`slow_query`
    /// events carry their per-query attribution array here); empty when
    /// unused.
    pub detail: String,
}

impl FlightEvent {
    /// JSON row. With `canonical`, `t_ns` and `duration_ns` are zeroed;
    /// everything else (including `seq` and `queue_depth`) is already
    /// deterministic for a deterministic request sequence.
    pub fn json(&self, canonical: bool) -> String {
        let mut o = Obj::new();
        o.u64("seq", self.seq)
            .u64("t_ns", if canonical { 0 } else { self.t_ns })
            .str("kind", self.kind.label())
            .str("session", &self.session)
            .str("id", &self.request_id)
            .str("op", &self.op)
            .u64("queue_depth", self.queue_depth)
            .u64("duration_ns", if canonical { 0 } else { self.duration_ns });
        if !self.detail.is_empty() {
            o.raw("detail", &self.detail);
        }
        o.finish()
    }
}

/// What a caller records; the recorder assigns `seq` and `t_ns`.
#[derive(Debug, Clone, Default)]
pub struct FlightSample {
    /// What happened.
    pub kind: Option<FlightEventKind>,
    /// Session name.
    pub session: String,
    /// Request id.
    pub request_id: String,
    /// Operation kind label.
    pub op: String,
    /// Queue depth at the event.
    pub queue_depth: u64,
    /// Wall-clock duration, when the kind carries one.
    pub duration_ns: u64,
    /// Already-rendered JSON payload (or empty).
    pub detail: String,
}

impl FlightSample {
    /// A sample of the given kind with everything else empty/zero.
    pub fn of(kind: FlightEventKind) -> Self {
        FlightSample {
            kind: Some(kind),
            ..FlightSample::default()
        }
    }
}

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<FlightEvent>,
    seq: u64,
}

/// The fixed-capacity event ring (see the [module docs](self)).
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    start: Instant,
    ring: Mutex<Ring>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events. Capacity 0
    /// disables recording (every [`FlightRecorder::record`] is a
    /// branch and a return).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity,
            start: Instant::now(),
            ring: Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity),
                seq: 0,
            }),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Nanoseconds since the recorder was created (the `t_ns` clock).
    pub fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Records one event, overwriting the oldest once full.
    pub fn record(&self, sample: FlightSample) {
        let Some(kind) = sample.kind else { return };
        if self.capacity == 0 {
            return;
        }
        let t_ns = self.now_ns();
        let mut ring = self.lock();
        let seq = ring.seq;
        ring.seq += 1;
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
        }
        ring.events.push_back(FlightEvent {
            seq,
            t_ns,
            kind,
            session: sample.session,
            request_id: sample.request_id,
            op: sample.op,
            queue_depth: sample.queue_depth,
            duration_ns: sample.duration_ns,
            detail: sample.detail,
        });
    }

    /// The last `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<FlightEvent> {
        let ring = self.lock();
        let skip = ring.events.len().saturating_sub(n);
        ring.events.iter().skip(skip).cloned().collect()
    }

    /// Total events ever recorded (retained or overwritten).
    pub fn recorded(&self) -> u64 {
        self.lock().seq
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        let ring = self.lock();
        ring.seq - ring.events.len() as u64
    }

    /// The last `n` events as a JSON array, oldest first. See
    /// [`FlightEvent::json`] for the `canonical` contract.
    pub fn tail_json(&self, n: usize, canonical: bool) -> String {
        let mut a = Arr::new();
        for ev in self.tail(n) {
            a.raw(&ev.json(canonical));
        }
        a.finish()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        self.ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kind: FlightEventKind, id: &str) -> FlightSample {
        FlightSample {
            request_id: id.to_string(),
            session: "s".to_string(),
            op: "check".to_string(),
            ..FlightSample::of(kind)
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_keeps_sequence() {
        let fr = FlightRecorder::new(3);
        for i in 0..5 {
            fr.record(sample(FlightEventKind::Completed, &i.to_string()));
        }
        let tail = fr.tail(10);
        assert_eq!(tail.len(), 3);
        assert_eq!(
            tail.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest two were overwritten, seq never reused"
        );
        assert_eq!(fr.recorded(), 5);
        assert_eq!(fr.dropped(), 2);
        let short = fr.tail(2);
        assert_eq!(short.len(), 2);
        assert_eq!(short[0].seq, 3, "tail(n) keeps the newest n");
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let fr = FlightRecorder::new(0);
        fr.record(sample(FlightEventKind::Accepted, "x"));
        assert_eq!(fr.recorded(), 0);
        assert_eq!(fr.tail_json(8, true), "[]");
    }

    #[test]
    fn canonical_json_zeroes_times_only() {
        let fr = FlightRecorder::new(4);
        fr.record(FlightSample {
            queue_depth: 2,
            duration_ns: 999,
            detail: "[{\"id\":0}]".to_string(),
            ..sample(FlightEventKind::SlowQuery, "q1")
        });
        let json = fr.tail_json(4, true);
        assert!(json.contains(r#""kind":"slow_query""#), "{json}");
        assert!(json.contains(r#""t_ns":0"#), "{json}");
        assert!(json.contains(r#""duration_ns":0"#), "{json}");
        assert!(json.contains(r#""queue_depth":2"#), "{json}");
        assert!(json.contains(r#""detail":[{"id":0}]"#), "{json}");
        let real = fr.tail_json(4, false);
        assert!(real.contains(r#""duration_ns":999"#), "{real}");
    }
}
