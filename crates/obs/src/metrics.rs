//! Metrics registry: monotonic counters, point-in-time gauges, and log2
//! histograms.
//!
//! Counter and histogram names are dotted paths whose first segment is
//! the stage family (`frontend`, `pta`, `seg`, `detect`, `smt`, `bench`);
//! the stats serializer groups by that prefix so the exported document
//! mirrors the paper's stage decomposition. Names are stored in
//! `BTreeMap`s, so export order — and therefore the serialized bytes —
//! is deterministic.
//!
//! Counters are cumulative and only ever added to; **gauges** are
//! point-in-time values (worker-pool size, queue depth, open sessions)
//! that are *set*, never summed — re-snapshotting a gauge can never
//! inflate it the way repeated `counter_add` calls would.
//!
//! The canonical export ([`MetricsRegistry::stats_json`] with
//! `canonical = true`) zeroes every counter/histogram value whose key
//! ends in `_ns`, zeroes **every** gauge (a point-in-time reading is
//! inherently not reproducible across runs or worker counts), and omits
//! run metadata, producing bytes that are identical across thread
//! counts; the non-canonical form keeps real values.

use crate::json::{Arr, Obj};
use std::collections::BTreeMap;

/// Number of log2 buckets. Bucket `i` holds values whose bit length is
/// `i`, i.e. `[2^(i-1), 2^i)` for `i >= 1` and `{0}` for bucket 0; with
/// 64 buckets every `u64` is representable exactly by bit length.
pub const HIST_BUCKETS: usize = 64;

/// A fixed-bucket log2 histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Upper bound (inclusive representative) of bucket `i`: the largest
    /// value that lands in it. Percentiles report this bound. The last
    /// physical bucket is the overflow bucket — bit-length-64 samples
    /// clamp into it — so its bound is `u64::MAX`.
    fn bucket_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= HIST_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v).min(HIST_BUCKETS - 1)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Estimated `q`-quantile (`0.0..=1.0`): the upper bound of the
    /// bucket containing the `ceil(q * count)`-th sample. Returns 0 for
    /// an empty histogram; the top quantile is clamped to [`max`].
    ///
    /// [`max`]: Histogram::max
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Iterates the non-empty buckets as `(inclusive upper bound,
    /// count)` pairs in ascending bound order — the shape a Prometheus
    /// `_bucket{le=...}` exposition needs.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n != 0)
            .map(|(i, &n)| (Self::bucket_bound(i), n))
    }

    /// Adds another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// JSON summary. With `canonical`, the value-derived fields (which
    /// for `_ns` histograms vary run to run) are zeroed, keeping only the
    /// sample count.
    pub fn summary_json(&self, canonical: bool) -> String {
        let mut o = Obj::new();
        o.u64("count", self.count);
        if canonical {
            o.u64("sum", 0)
                .u64("p50", 0)
                .u64("p95", 0)
                .u64("p99", 0)
                .u64("max", 0);
        } else {
            o.u64("sum", self.sum)
                .u64("p50", self.p50())
                .u64("p95", self.p95())
                .u64("p99", self.p99())
                .u64("max", self.max);
        }
        o.finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Named monotonic counters, point-in-time gauges, and histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to counter `name` (created at 0 on first use).
    pub fn counter_add(&mut self, name: &str, v: u64) {
        if v != 0 {
            *self.counters.entry(name.to_string()).or_insert(0) += v;
        } else {
            self.counters.entry(name.to_string()).or_insert(0);
        }
    }

    /// Reads counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to its current point-in-time value. Unlike
    /// [`MetricsRegistry::counter_add`], setting is idempotent: taking
    /// two snapshots of the same state writes the same value twice
    /// instead of doubling it.
    pub fn gauge_set(&mut self, name: &str, v: u64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Reads gauge `name` (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Records a sample into histogram `name`.
    pub fn hist_record(&mut self, name: &str, v: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(v);
    }

    /// Looks up a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Absorbs another registry (counters summed, histograms merged,
    /// gauges overwritten — the other registry's reading is the newer
    /// point-in-time value).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// The `"stages"` object: counters grouped by first dot-segment, each
    /// stage an object of the remaining key path → value. With
    /// `canonical`, any counter whose name ends in `_ns` is zeroed.
    fn stages_json(&self, canonical: bool) -> String {
        let mut stages: BTreeMap<&str, Vec<(&str, u64)>> = BTreeMap::new();
        for (name, &v) in &self.counters {
            let (stage, rest) = name.split_once('.').unwrap_or(("misc", name.as_str()));
            let v = if canonical && rest.ends_with("_ns") {
                0
            } else {
                v
            };
            stages.entry(stage).or_default().push((rest, v));
        }
        let mut o = Obj::new();
        for (stage, entries) in stages {
            let mut s = Obj::new();
            for (k, v) in entries {
                s.u64(k, v);
            }
            o.raw(stage, &s.finish());
        }
        o.finish()
    }

    /// The `"gauges"` object: a flat name → value map. With `canonical`
    /// every value is zeroed — gauges are point-in-time readings, so
    /// only their *names* are reproducible across runs.
    fn gauges_json(&self, canonical: bool) -> String {
        let mut o = Obj::new();
        for (name, &v) in &self.gauges {
            o.u64(name, if canonical { 0 } else { v });
        }
        o.finish()
    }

    /// The `"histograms"` object.
    fn histograms_json(&self, canonical: bool) -> String {
        let mut o = Obj::new();
        for (name, h) in &self.histograms {
            let canon = canonical && name.ends_with("_ns");
            o.raw(name, &h.summary_json(canon));
        }
        o.finish()
    }

    /// The full stats document:
    ///
    /// ```json
    /// {"schema":"pinpoint-stats-v1","run":{...},"stages":{...},
    ///  "gauges":{...},"histograms":{...},"queries":[...]}
    /// ```
    ///
    /// `run_meta` fields (thread count etc.) and `queries` rows come from
    /// the caller; pass `canonical = true` to zero timings and omit run
    /// metadata so the bytes are thread-count invariant.
    pub fn stats_json(
        &self,
        run_meta: &[(&str, u64)],
        queries_json: Option<&str>,
        canonical: bool,
    ) -> String {
        let mut o = Obj::new();
        o.str("schema", "pinpoint-stats-v1");
        if !canonical {
            let mut run = Obj::new();
            for (k, v) in run_meta {
                run.u64(k, *v);
            }
            o.raw("run", &run.finish());
        }
        o.raw("stages", &self.stages_json(canonical));
        o.raw("gauges", &self.gauges_json(canonical));
        o.raw("histograms", &self.histograms_json(canonical));
        if let Some(q) = queries_json {
            o.raw("queries", q);
        } else {
            o.raw("queries", &Arr::new().finish());
        }
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_by_bit_length() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn percentiles_track_bucket_bounds() {
        let mut h = Histogram::new();
        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.max(), 1000);
        // p50: 5th sample is a 1 → bucket 1, bound 1.
        assert_eq!(h.p50(), 1);
        // p95: 10th sample (ceil(0.95*10)=10) is 1000 → bucket 10, bound
        // 1023, clamped to max.
        assert_eq!(h.p95(), 1000);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(Histogram::new().p50(), 0);
    }

    #[test]
    fn zero_samples_land_in_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p95(), 0);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn histogram_merge_is_sum() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(7);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 112);
        assert_eq!(a.max(), 100);
    }

    #[test]
    fn registry_groups_by_stage_prefix() {
        let mut m = MetricsRegistry::new();
        m.counter_add("pta.pruned", 3);
        m.counter_add("pta.kept", 9);
        m.counter_add("smt.queries", 2);
        m.counter_add("smt.solve_ns", 12345);
        let doc = m.stats_json(&[("threads", 4)], None, false);
        assert!(doc.contains(r#""schema":"pinpoint-stats-v1""#));
        assert!(doc.contains(r#""run":{"threads":4}"#));
        assert!(doc.contains(r#""pta":{"kept":9,"pruned":3}"#));
        assert!(doc.contains(r#""smt":{"queries":2,"solve_ns":12345}"#));
        let canon = m.stats_json(&[("threads", 4)], None, true);
        assert!(!canon.contains("\"run\""));
        assert!(canon.contains(r#""solve_ns":0"#));
        assert!(canon.contains(r#""queries":2"#));
    }

    #[test]
    fn empty_histogram_summaries_are_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!((h.p50(), h.p95(), h.p99(), h.max()), (0, 0, 0, 0));
        assert_eq!(h.buckets().count(), 0, "no non-empty buckets");
        assert_eq!(
            h.summary_json(false),
            r#"{"count":0,"sum":0,"p50":0,"p95":0,"p99":0,"max":0}"#
        );
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let mut h = Histogram::new();
        h.record(37);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 37, "q={q}");
        }
        assert_eq!(h.buckets().collect::<Vec<_>>(), vec![(63, 1)]);
    }

    #[test]
    fn overflow_bucket_holds_u64_max() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(1);
        // Bit length 64 lands in the last bucket, whose bound is MAX.
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.p99(), u64::MAX);
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
        let (bound, n) = h.buckets().last().unwrap();
        assert_eq!((bound, n), (u64::MAX, 2));
    }

    #[test]
    fn gauges_are_set_not_summed() {
        let mut m = MetricsRegistry::new();
        m.gauge_set("server.workers", 4);
        m.gauge_set("server.workers", 4);
        m.gauge_set("server.queue_depth", 7);
        assert_eq!(m.gauge("server.workers"), 4, "re-setting never inflates");
        assert_eq!(m.gauge("absent"), 0);
        let doc = m.stats_json(&[], None, false);
        assert!(
            doc.contains(r#""gauges":{"server.queue_depth":7,"server.workers":4}"#),
            "{doc}"
        );
        // Canonical zeroes every gauge: point-in-time readings are not
        // reproducible across runs or worker counts, only their names.
        let canon = m.stats_json(&[], None, true);
        assert!(
            canon.contains(r#""gauges":{"server.queue_depth":0,"server.workers":0}"#),
            "{canon}"
        );
    }

    #[test]
    fn merge_overwrites_gauges_with_newer_reading() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.gauge_set("server.sessions_open", 9);
        b.gauge_set("server.sessions_open", 2);
        a.merge(&b);
        assert_eq!(a.gauge("server.sessions_open"), 2);
    }

    #[test]
    fn registry_merge_sums_counters() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.counter_add("detect.sources", 1);
        b.counter_add("detect.sources", 2);
        b.hist_record("smt.query_ns", 64);
        a.merge(&b);
        assert_eq!(a.counter("detect.sources"), 3);
        assert_eq!(a.histogram("smt.query_ns").unwrap().count(), 1);
    }
}
