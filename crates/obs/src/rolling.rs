//! Rolling-window latency histograms.
//!
//! A cumulative [`Histogram`] answers "what were latencies like since
//! the process started"; a live dashboard wants "what are they like
//! *right now*". [`RollingWindow`] keeps a wheel of histogram slots,
//! each covering `slot_ns` nanoseconds; recording a sample lands it in
//! the slot for the sample's epoch (`now_ns / slot_ns`), lazily
//! resetting slots whose epoch has rotated out. A snapshot merges the
//! slots still inside the window, so p50/p95/p99 reflect only the last
//! `slots * slot_ns` nanoseconds.
//!
//! Time is always an explicit `now_ns` argument — callers feed a
//! monotonic clock in production and literal integers in tests, which
//! makes rotation-boundary behaviour deterministic to assert.
//!
//! [`RollingSet`] is the keyed form (one window per op kind or per
//! session) the server uses.

use crate::json::Obj;
use crate::metrics::Histogram;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
struct Slot {
    /// Which epoch this slot's samples belong to. Starts at `u64::MAX`
    /// (never written) so epoch 0 is usable.
    epoch: u64,
    hist: Histogram,
}

/// A wheel of histogram slots covering the last `slots * slot_ns`
/// nanoseconds (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct RollingWindow {
    slot_ns: u64,
    slots: Vec<Slot>,
}

impl RollingWindow {
    /// A window of `slots` slots, each `slot_ns` wide. Both are clamped
    /// to at least 1.
    pub fn new(slot_ns: u64, slots: usize) -> Self {
        RollingWindow {
            slot_ns: slot_ns.max(1),
            slots: vec![
                Slot {
                    epoch: u64::MAX,
                    hist: Histogram::new(),
                };
                slots.max(1)
            ],
        }
    }

    /// Total window width in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.slot_ns.saturating_mul(self.slots.len() as u64)
    }

    fn epoch(&self, now_ns: u64) -> u64 {
        now_ns / self.slot_ns
    }

    /// Records a sample observed at `now_ns`.
    pub fn record(&mut self, now_ns: u64, v: u64) {
        let epoch = self.epoch(now_ns);
        let n = self.slots.len();
        let slot = &mut self.slots[(epoch % n as u64) as usize];
        if slot.epoch != epoch {
            slot.hist = Histogram::new();
            slot.epoch = epoch;
        }
        slot.hist.record(v);
    }

    /// Merges the slots still inside the window ending at `now_ns` into
    /// one histogram. Slots whose epoch rotated out (or was never
    /// written) contribute nothing.
    pub fn snapshot(&self, now_ns: u64) -> Histogram {
        let epoch = self.epoch(now_ns);
        let oldest = epoch.saturating_sub(self.slots.len() as u64 - 1);
        let mut out = Histogram::new();
        for slot in &self.slots {
            if slot.epoch != u64::MAX && (oldest..=epoch).contains(&slot.epoch) {
                out.merge(&slot.hist);
            }
        }
        out
    }
}

/// Keyed rolling windows: one [`RollingWindow`] per name (op kind,
/// session), all sharing one geometry.
#[derive(Debug, Clone)]
pub struct RollingSet {
    slot_ns: u64,
    slots: usize,
    windows: BTreeMap<String, RollingWindow>,
}

impl RollingSet {
    /// An empty set whose windows span `slots * slot_ns` nanoseconds.
    pub fn new(slot_ns: u64, slots: usize) -> Self {
        RollingSet {
            slot_ns: slot_ns.max(1),
            slots: slots.max(1),
            windows: BTreeMap::new(),
        }
    }

    /// Total window width in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.slot_ns.saturating_mul(self.slots as u64)
    }

    /// Records a sample for `key` observed at `now_ns`.
    pub fn record(&mut self, key: &str, now_ns: u64, v: u64) {
        self.windows
            .entry(key.to_string())
            .or_insert_with(|| RollingWindow::new(self.slot_ns, self.slots))
            .record(now_ns, v);
    }

    /// Snapshots every key's window at `now_ns`, in name order. Keys
    /// whose window is currently empty are skipped.
    pub fn snapshots(&self, now_ns: u64) -> Vec<(String, Histogram)> {
        self.windows
            .iter()
            .map(|(k, w)| (k.clone(), w.snapshot(now_ns)))
            .filter(|(_, h)| h.count() > 0)
            .collect()
    }

    /// JSON object `{key: {count,sum,p50,p95,p99,max}, ...}` of the
    /// non-empty windows at `now_ns`. With `canonical` the value-derived
    /// fields are zeroed (rolling latencies are never reproducible, but
    /// canonical consumers may still want the key set).
    pub fn summary_json(&self, now_ns: u64, canonical: bool) -> String {
        let mut o = Obj::new();
        for (k, h) in self.snapshots(now_ns) {
            o.raw(&k, &h.summary_json(canonical));
        }
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u64 = 1_000; // slot width for tests

    #[test]
    fn empty_window_snapshots_to_empty_histogram() {
        let w = RollingWindow::new(S, 4);
        let h = w.snapshot(123);
        assert_eq!(h.count(), 0);
        assert_eq!((h.p50(), h.p95(), h.p99()), (0, 0, 0));
    }

    #[test]
    fn single_sample_is_visible_until_it_ages_out() {
        let mut w = RollingWindow::new(S, 4);
        w.record(0, 42);
        assert_eq!(w.snapshot(0).count(), 1);
        // Still inside the 4-slot window three epochs later...
        assert_eq!(w.snapshot(3 * S).count(), 1);
        assert_eq!(w.snapshot(3 * S).p95(), 42);
        // ...gone one epoch after that, even though the slot was never
        // physically overwritten.
        assert_eq!(w.snapshot(4 * S).count(), 0);
    }

    #[test]
    fn rotation_boundary_resets_reused_slot() {
        let mut w = RollingWindow::new(S, 2);
        w.record(0, 10); // epoch 0 → slot 0
        w.record(S, 20); // epoch 1 → slot 1
                         // Epoch 2 reuses slot 0; the old epoch-0 sample must not leak
                         // into the new epoch's histogram.
        w.record(2 * S, 30);
        let h = w.snapshot(2 * S);
        assert_eq!(h.count(), 2, "window holds epochs 1..=2 only");
        assert_eq!(h.sum(), 50);
        // One nanosecond before the boundary the old epoch was intact.
        let mut w2 = RollingWindow::new(S, 2);
        w2.record(0, 10);
        w2.record(S, 20);
        assert_eq!(w2.snapshot(2 * S - 1).count(), 2);
    }

    #[test]
    fn stale_slot_is_ignored_without_being_written() {
        let mut w = RollingWindow::new(S, 3);
        w.record(0, 7);
        // Jump far ahead: the epoch-0 slot still physically holds the
        // sample but its epoch is outside [8-2, 8].
        w.record(8 * S, 9);
        let h = w.snapshot(8 * S);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 9);
    }

    #[test]
    fn keyed_set_tracks_windows_independently() {
        let mut set = RollingSet::new(S, 4);
        set.record("check", 0, 100);
        set.record("check", S, 200);
        set.record("update", S, 5);
        let snaps = set.snapshots(S);
        assert_eq!(
            snaps.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            vec!["check", "update"]
        );
        assert_eq!(snaps[0].1.count(), 2);
        assert_eq!(snaps[1].1.count(), 1);
        // After "update"'s sample ages out, only "check"'s fresh slot
        // remains and empty windows disappear from the summary.
        set.record("check", 5 * S, 300);
        let json = set.summary_json(5 * S, false);
        assert!(json.contains("\"check\""), "{json}");
        assert!(!json.contains("\"update\""), "{json}");
    }
}
