//! Prometheus text-exposition renderer.
//!
//! Renders a [`MetricsRegistry`] in the Prometheus text format
//! (version 0.0.4): one `# TYPE` comment per metric, dotted pinpoint
//! names sanitized to `snake_case` identifiers, histograms exposed as
//! cumulative `_bucket{le="..."}` series plus `_sum`/`_count`. The
//! output is the other half of the observability story from the
//! pinpoint-stats-v1 JSON document: same registry, scrapeable shape.
//!
//! Registry iteration is `BTreeMap`-ordered, so the exposition is
//! deterministic for a deterministic registry.

use crate::metrics::MetricsRegistry;
use std::fmt::Write as _;

/// Maps a dotted metric name to a Prometheus identifier: every
/// character outside `[a-zA-Z0-9_]` becomes `_`, and a leading digit
/// gains a `_` prefix.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Renders the registry as Prometheus text exposition. Every metric
/// name gains the `pinpoint_` prefix so a scrape of a shared host stays
/// collision-free.
pub fn prometheus_text(m: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, v) in m.counters() {
        let id = format!("pinpoint_{}", sanitize_name(name));
        let _ = writeln!(out, "# TYPE {id} counter");
        let _ = writeln!(out, "{id} {v}");
    }
    for (name, v) in m.gauges() {
        let id = format!("pinpoint_{}", sanitize_name(name));
        let _ = writeln!(out, "# TYPE {id} gauge");
        let _ = writeln!(out, "{id} {v}");
    }
    for (name, h) in m.histograms() {
        let id = format!("pinpoint_{}", sanitize_name(name));
        let _ = writeln!(out, "# TYPE {id} histogram");
        let mut cumulative = 0u64;
        for (bound, n) in h.buckets() {
            cumulative += n;
            if bound == u64::MAX {
                // The overflow bucket is only representable as +Inf.
                continue;
            }
            let _ = writeln!(out, "{id}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{id}_bucket{{le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(out, "{id}_sum {}", h.sum());
        let _ = writeln!(out, "{id}_count {}", h.count());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize_name("server.queue_depth"), "server_queue_depth");
        assert_eq!(sanitize_name("smt.solve-ns"), "smt_solve_ns");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn counters_and_gauges_are_typed_lines() {
        let mut m = MetricsRegistry::new();
        m.counter_add("server.completed", 12);
        m.gauge_set("server.workers", 4);
        let text = prometheus_text(&m);
        assert!(
            text.contains(
                "# TYPE pinpoint_server_completed counter\npinpoint_server_completed 12\n"
            ),
            "{text}"
        );
        assert!(
            text.contains("# TYPE pinpoint_server_workers gauge\npinpoint_server_workers 4\n"),
            "{text}"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let mut m = MetricsRegistry::new();
        for v in [1u64, 1, 3, 200] {
            m.hist_record("server.latency_ns", v);
        }
        let text = prometheus_text(&m);
        assert!(text.contains("# TYPE pinpoint_server_latency_ns histogram"));
        // Bucket bounds: 1 (two samples), 3 (one), 255 (one) — cumulative.
        assert!(
            text.contains("pinpoint_server_latency_ns_bucket{le=\"1\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("pinpoint_server_latency_ns_bucket{le=\"3\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("pinpoint_server_latency_ns_bucket{le=\"255\"} 4\n"),
            "{text}"
        );
        assert!(
            text.contains("pinpoint_server_latency_ns_bucket{le=\"+Inf\"} 4\n"),
            "{text}"
        );
        assert!(
            text.contains("pinpoint_server_latency_ns_sum 205\n"),
            "{text}"
        );
        assert!(
            text.contains("pinpoint_server_latency_ns_count 4\n"),
            "{text}"
        );
    }

    #[test]
    fn overflow_bucket_folds_into_inf() {
        let mut m = MetricsRegistry::new();
        m.hist_record("x.h", u64::MAX);
        let text = prometheus_text(&m);
        assert!(!text.contains(&format!("le=\"{}\"", u64::MAX)), "{text}");
        assert!(
            text.contains("pinpoint_x_h_bucket{le=\"+Inf\"} 1\n"),
            "{text}"
        );
    }
}
