//! Observability layer for the Pinpoint reproduction.
//!
//! Dependency-free instrumentation threaded through the analysis
//! pipeline:
//!
//! * [`span::TraceBuf`] — hierarchical spans in per-thread lock-free
//!   buffers, merged deterministically at pipeline joins, exported as
//!   Chrome trace-event JSON (Perfetto-loadable);
//! * [`metrics::MetricsRegistry`] — monotonic counters and log2
//!   [`metrics::Histogram`]s under one dotted-name schema with a single
//!   JSON serializer, superseding the per-crate ad-hoc `*Stats` structs;
//! * [`attr`] — per-query solver attribution: each source→sink query the
//!   detector evaluates carries an id and its DPLL(T) cost, aggregated
//!   into a top-K "where did the time go" [`attr::ProfileTable`].
//!
//! Everything is behind enums/plain structs (no trait objects per
//! event): a disabled [`span::TraceBuf::Off`] recorder is a branch and a
//! return. Both the trace and the stats documents have *canonical*
//! export forms with timings zeroed and lanes/run-metadata dropped,
//! which are byte-identical across thread counts — the property the
//! parallel-determinism suite asserts.

#![warn(missing_docs)]

pub mod attr;
pub mod json;
pub mod metrics;
pub mod span;

pub use attr::{queries_json, ProfileTable, QueryCost, QueryOutcome, QueryRecord};
pub use metrics::{Histogram, MetricsRegistry};
pub use span::{SpanId, SpanRecord, TraceBuf};
