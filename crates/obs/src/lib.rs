//! Observability layer for the Pinpoint reproduction.
//!
//! Dependency-free instrumentation threaded through the analysis
//! pipeline:
//!
//! * [`span::TraceBuf`] — hierarchical spans in per-thread lock-free
//!   buffers, merged deterministically at pipeline joins, exported as
//!   Chrome trace-event JSON (Perfetto-loadable);
//! * [`metrics::MetricsRegistry`] — monotonic counters and log2
//!   [`metrics::Histogram`]s under one dotted-name schema with a single
//!   JSON serializer, superseding the per-crate ad-hoc `*Stats` structs;
//! * [`attr`] — per-query solver attribution: each source→sink query the
//!   detector evaluates carries an id and its DPLL(T) cost, aggregated
//!   into a top-K "where did the time go" [`attr::ProfileTable`];
//! * [`flight::FlightRecorder`] — a fixed-capacity ring of structured
//!   server events (accepted/started/completed/shed, session lifecycle,
//!   worker panics, slow queries) for live "what just happened"
//!   inspection of a long-running `pinpoint serve`;
//! * [`rolling::RollingWindow`] / [`rolling::RollingSet`] — rolling-window
//!   latency histograms (per-op / per-session p50/p95/p99 over the last N
//!   seconds) built on the log2 [`metrics::Histogram`];
//! * [`prom::prometheus_text`] — Prometheus text exposition of a
//!   [`metrics::MetricsRegistry`], next to the pinpoint-stats-v1 JSON.
//!
//! Everything is behind enums/plain structs (no trait objects per
//! event): a disabled [`span::TraceBuf::Off`] recorder is a branch and a
//! return. Both the trace and the stats documents have *canonical*
//! export forms with timings zeroed and lanes/run-metadata dropped,
//! which are byte-identical across thread counts — the property the
//! parallel-determinism suite asserts.

#![warn(missing_docs)]

pub mod attr;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod prom;
pub mod rolling;
pub mod span;

pub use attr::{queries_json, ProfileTable, QueryCost, QueryOutcome, QueryRecord};
pub use flight::{FlightEvent, FlightEventKind, FlightRecorder, FlightSample};
pub use metrics::{Histogram, MetricsRegistry};
pub use prom::prometheus_text;
pub use rolling::{RollingSet, RollingWindow};
pub use span::{SpanId, SpanRecord, TraceBuf};
