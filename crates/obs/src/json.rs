//! A minimal JSON writer.
//!
//! The workspace vendors no serialization framework, so the observability
//! exporters build their documents through this module: string escaping
//! plus small object/array builders that keep the punctuation bookkeeping
//! in one place. Emission order is whatever the caller feeds in — the
//! exporters feed `BTreeMap`s, so documents are deterministic.

use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Incremental JSON object writer (`{"k":v,...}`).
#[derive(Debug)]
pub struct Obj {
    buf: String,
    first: bool,
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Self {
        Obj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        let _ = write!(self.buf, "\"{}\":", escape(k));
    }

    /// Adds a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "\"{}\"", escape(v));
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a float field (finite values only; non-finite becomes 0).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        if v.is_finite() {
            let _ = write!(self.buf, "{v}");
        } else {
            self.buf.push('0');
        }
        self
    }

    /// Adds a field whose value is already-rendered JSON.
    pub fn raw(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Closes the object and returns the document.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for Obj {
    fn default() -> Self {
        Self::new()
    }
}

/// Incremental JSON array writer (`[v,...]`).
#[derive(Debug)]
pub struct Arr {
    buf: String,
    first: bool,
}

impl Arr {
    /// Starts an empty array.
    pub fn new() -> Self {
        Arr {
            buf: String::from("["),
            first: true,
        }
    }

    /// Appends an already-rendered JSON value.
    pub fn raw(&mut self, v: &str) -> &mut Self {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push_str(v);
        self
    }

    /// Appends an unsigned integer.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.raw(&v.to_string())
    }

    /// Closes the array and returns the document.
    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

impl Default for Arr {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn object_and_array_compose() {
        let mut inner = Arr::new();
        inner.u64(1).u64(2);
        let mut o = Obj::new();
        o.str("name", "x").u64("n", 3).raw("xs", &inner.finish());
        assert_eq!(o.finish(), r#"{"name":"x","n":3,"xs":[1,2]}"#);
    }
}
