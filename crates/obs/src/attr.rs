//! Per-query solver attribution.
//!
//! Every source→sink candidate the detector evaluates becomes a
//! [`QueryRecord`]: which checker raised it, which functions anchor the
//! source and sink, how it was resolved (linear refutation, SMT
//! refutation, reported, or bailed), and what the DPLL(T) core spent on
//! it (wall time, CDCL conflicts, learned clauses, propagations,
//! decisions, theory rounds). Records are assigned ids during the
//! detector's deterministic merge replay, so ids — and everything except
//! the `solver_ns` timing — are byte-identical across thread counts.
//!
//! [`ProfileTable`] folds the records into a per-`(checker, function)`
//! "where did the time go" view for the `pinpoint profile` subcommand.

use crate::json::{Arr, Obj};
use std::collections::BTreeMap;

/// How a query was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOutcome {
    /// Feasible (or assumed feasible): a report was produced.
    Reported,
    /// Refuted by the cheap linear pre-pass; the SMT solver never ran.
    LinearRefuted,
    /// Refuted by the DPLL(T) solver.
    SmtRefuted,
    /// Solver gave up (round budget); treated as feasible.
    Unsolved,
}

impl QueryOutcome {
    /// Stable lowercase label used in JSON and tables.
    pub fn label(self) -> &'static str {
        match self {
            QueryOutcome::Reported => "reported",
            QueryOutcome::LinearRefuted => "linear_refuted",
            QueryOutcome::SmtRefuted => "smt_refuted",
            QueryOutcome::Unsolved => "unsolved",
        }
    }
}

/// Solver-side cost of one query (all zero when the solver never ran).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCost {
    /// Wall time inside the SMT check, nanoseconds.
    pub solver_ns: u64,
    /// CDCL conflicts.
    pub conflicts: u64,
    /// Clauses learned from conflict analysis.
    pub learned: u64,
    /// Unit propagations.
    pub propagations: u64,
    /// Branching decisions.
    pub decisions: u64,
    /// Theory consistency checks (DPLL(T) rounds).
    pub theory_checks: u64,
    /// Theory conflicts (blocking clauses added).
    pub theory_conflicts: u64,
}

impl QueryCost {
    /// Component-wise sum.
    pub fn add(&mut self, other: &QueryCost) {
        self.solver_ns += other.solver_ns;
        self.conflicts += other.conflicts;
        self.learned += other.learned;
        self.propagations += other.propagations;
        self.decisions += other.decisions;
        self.theory_checks += other.theory_checks;
        self.theory_conflicts += other.theory_conflicts;
    }
}

/// One evaluated source→sink query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRecord {
    /// Query id, assigned in deterministic replay order.
    pub id: u32,
    /// Checker that owns the query (`use-after-free`, `memory-leak`, …).
    pub checker: String,
    /// Function containing the source.
    pub source_func: String,
    /// Function containing the sink (usually the same — detection is
    /// per-SEG with connectors inlined).
    pub sink_func: String,
    /// Resolution.
    pub outcome: QueryOutcome,
    /// Solver cost.
    pub cost: QueryCost,
}

impl QueryRecord {
    /// JSON row. With `canonical`, `solver_ns` is zeroed (it is the only
    /// field that varies run to run).
    pub fn json(&self, canonical: bool) -> String {
        let mut o = Obj::new();
        o.u64("id", u64::from(self.id))
            .str("checker", &self.checker)
            .str("source_func", &self.source_func)
            .str("sink_func", &self.sink_func)
            .str("outcome", self.outcome.label())
            .u64("solver_ns", if canonical { 0 } else { self.cost.solver_ns })
            .u64("conflicts", self.cost.conflicts)
            .u64("learned", self.cost.learned)
            .u64("propagations", self.cost.propagations)
            .u64("decisions", self.cost.decisions)
            .u64("theory_checks", self.cost.theory_checks)
            .u64("theory_conflicts", self.cost.theory_conflicts);
        o.finish()
    }
}

/// Serializes query records as a JSON array.
pub fn queries_json(records: &[QueryRecord], canonical: bool) -> String {
    let mut a = Arr::new();
    for r in records {
        a.raw(&r.json(canonical));
    }
    a.finish()
}

/// Aggregate row of a [`ProfileTable`].
#[derive(Debug, Clone, Default)]
pub struct ProfileRow {
    /// Checker name.
    pub checker: String,
    /// Source function name.
    pub func: String,
    /// Number of queries.
    pub queries: u64,
    /// Reported / linear-refuted / SMT-refuted / unsolved tallies.
    pub reported: u64,
    /// Queries killed by the linear pre-pass.
    pub linear_refuted: u64,
    /// Queries killed by the SMT solver.
    pub smt_refuted: u64,
    /// Queries that exhausted the round budget.
    pub unsolved: u64,
    /// Summed solver cost.
    pub cost: QueryCost,
}

/// Per-`(checker, function)` aggregation of query records, sorted by
/// total solver time descending (ties broken by query count, then
/// checker and function name, so the order is deterministic even when
/// all timings are zero).
#[derive(Debug, Clone, Default)]
pub struct ProfileTable {
    rows: Vec<ProfileRow>,
}

impl ProfileTable {
    /// Builds the table from query records.
    pub fn build(records: &[QueryRecord]) -> Self {
        let mut agg: BTreeMap<(&str, &str), ProfileRow> = BTreeMap::new();
        for r in records {
            let row = agg
                .entry((r.checker.as_str(), r.source_func.as_str()))
                .or_insert_with(|| ProfileRow {
                    checker: r.checker.clone(),
                    func: r.source_func.clone(),
                    ..ProfileRow::default()
                });
            row.queries += 1;
            match r.outcome {
                QueryOutcome::Reported => row.reported += 1,
                QueryOutcome::LinearRefuted => row.linear_refuted += 1,
                QueryOutcome::SmtRefuted => row.smt_refuted += 1,
                QueryOutcome::Unsolved => row.unsolved += 1,
            }
            row.cost.add(&r.cost);
        }
        let mut rows: Vec<ProfileRow> = agg.into_values().collect();
        rows.sort_by(|a, b| {
            b.cost
                .solver_ns
                .cmp(&a.cost.solver_ns)
                .then(b.queries.cmp(&a.queries))
                .then(a.checker.cmp(&b.checker))
                .then(a.func.cmp(&b.func))
        });
        ProfileTable { rows }
    }

    /// The sorted rows.
    pub fn rows(&self) -> &[ProfileRow] {
        &self.rows
    }

    /// Renders the top-`k` rows as a fixed-width text table.
    pub fn render(&self, k: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:<24} {:>7} {:>9} {:>8} {:>8} {:>9} {:>9} {:>10}\n",
            "checker",
            "function",
            "queries",
            "reported",
            "linear",
            "smt",
            "unsolved",
            "conflicts",
            "time(us)"
        ));
        let width = 16 + 1 + 24 + 1 + 7 + 1 + 9 + 1 + 8 + 1 + 8 + 1 + 9 + 1 + 9 + 1 + 10;
        out.push_str(&"-".repeat(width));
        out.push('\n');
        for row in self.rows.iter().take(k) {
            out.push_str(&format!(
                "{:<16} {:<24} {:>7} {:>9} {:>8} {:>8} {:>9} {:>9} {:>10.1}\n",
                truncate(&row.checker, 16),
                truncate(&row.func, 24),
                row.queries,
                row.reported,
                row.linear_refuted,
                row.smt_refuted,
                row.unsolved,
                row.cost.conflicts,
                row.cost.solver_ns as f64 / 1000.0,
            ));
        }
        if self.rows.len() > k {
            out.push_str(&format!("... {} more rows\n", self.rows.len() - k));
        }
        out
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let cut: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u32, checker: &str, func: &str, outcome: QueryOutcome, ns: u64) -> QueryRecord {
        QueryRecord {
            id,
            checker: checker.to_string(),
            source_func: func.to_string(),
            sink_func: func.to_string(),
            outcome,
            cost: QueryCost {
                solver_ns: ns,
                conflicts: 1,
                ..QueryCost::default()
            },
        }
    }

    #[test]
    fn table_sorts_by_time_then_count() {
        let records = vec![
            rec(0, "use-after-free", "f", QueryOutcome::Reported, 10),
            rec(1, "use-after-free", "g", QueryOutcome::SmtRefuted, 500),
            rec(2, "use-after-free", "f", QueryOutcome::LinearRefuted, 5),
            rec(3, "memory-leak", "f", QueryOutcome::Unsolved, 0),
        ];
        let t = ProfileTable::build(&records);
        assert_eq!(t.rows()[0].func, "g");
        assert_eq!(t.rows()[1].func, "f");
        assert_eq!(t.rows()[1].queries, 2);
        assert_eq!(t.rows()[1].reported, 1);
        assert_eq!(t.rows()[1].linear_refuted, 1);
        assert_eq!(t.rows()[2].checker, "memory-leak");
        let rendered = t.render(2);
        assert!(rendered.contains("use-after-free"));
        assert!(rendered.contains("... 1 more rows"));
    }

    #[test]
    fn canonical_json_zeroes_only_time() {
        let r = rec(7, "use-after-free", "main", QueryOutcome::SmtRefuted, 999);
        let j = r.json(true);
        assert!(j.contains(r#""solver_ns":0"#));
        assert!(j.contains(r#""conflicts":1"#));
        assert!(j.contains(r#""outcome":"smt_refuted""#));
        let real = r.json(false);
        assert!(real.contains(r#""solver_ns":999"#));
        assert_eq!(queries_json(&[], true), "[]");
    }
}
