//! Hierarchical span tracing.
//!
//! A [`TraceBuf`] records nested spans — name, detail, start, duration,
//! parent, logical lane (worker) id — into a plain `Vec` owned by exactly
//! one thread, so recording is lock-free by construction. The pipeline
//! hands each parallel worker a [`TraceBuf::fork`]ed child buffer; at the
//! join the children are [`TraceBuf::merge`]d back in the deterministic
//! shard order the results themselves are merged in, with child root
//! spans re-parented under whatever span the parent has open.
//!
//! `TraceBuf` is an enum with an [`TraceBuf::Off`] variant rather than a
//! trait object: a disabled trace costs one branch per event and
//! allocates nothing.
//!
//! Two exports:
//!
//! * [`TraceBuf::chrome_json`] — Chrome trace-event JSON (`ph: "X"`
//!   complete events), loadable in Perfetto / `chrome://tracing`;
//! * [`TraceBuf::canonical_json`] — a normalized form with timings and
//!   lanes dropped and spans sorted by `(name, detail, parent)`, which is
//!   byte-identical across thread counts and is what the determinism
//!   tests compare.

use crate::json::{escape, Arr, Obj};
use std::time::Instant;

/// Index of a span inside its buffer, returned by [`TraceBuf::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u32);

/// Sentinel parent index for root spans.
const NO_PARENT: u32 = u32::MAX;

/// One recorded span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name (the taxonomy: `pta`, `pta.func`, `seg.func`,
    /// `detect`, `detect.source`, `smt.query`, …).
    pub name: &'static str,
    /// Instance detail (function name, checker name, `src→sink`, …).
    pub detail: String,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 while still open).
    pub dur_ns: u64,
    /// Index of the parent span in the same buffer, or `u32::MAX`.
    pub parent: u32,
    /// Logical lane: 0 for the coordinating thread, `shard index + 1`
    /// for workers. Deterministic, unlike OS thread ids.
    pub lane: u32,
}

/// The live state of an enabled trace.
#[derive(Debug, Clone)]
pub struct TraceData {
    epoch: Instant,
    lane: u32,
    records: Vec<SpanRecord>,
    /// Indices of currently-open spans (innermost last).
    stack: Vec<u32>,
}

/// A span recorder: either a no-op or an owned, lock-free buffer.
#[derive(Debug, Clone, Default)]
pub enum TraceBuf {
    /// Recording disabled: every call is a branch and a return.
    #[default]
    Off,
    /// Recording enabled.
    On(TraceData),
}

impl TraceBuf {
    /// A disabled recorder.
    pub fn off() -> Self {
        TraceBuf::Off
    }

    /// A new enabled root recorder; its creation instant is the epoch all
    /// timestamps are relative to.
    pub fn on() -> Self {
        TraceBuf::On(TraceData {
            epoch: Instant::now(),
            lane: 0,
            records: Vec::new(),
            stack: Vec::new(),
        })
    }

    /// `true` when recording.
    pub fn is_on(&self) -> bool {
        matches!(self, TraceBuf::On(_))
    }

    /// A fresh empty buffer sharing this trace's epoch, for a parallel
    /// worker. Forking [`TraceBuf::Off`] yields `Off`.
    pub fn fork(&self, lane: u32) -> TraceBuf {
        match self {
            TraceBuf::Off => TraceBuf::Off,
            TraceBuf::On(d) => TraceBuf::On(TraceData {
                epoch: d.epoch,
                lane,
                records: Vec::new(),
                stack: Vec::new(),
            }),
        }
    }

    /// Opens a span nested under the innermost open span.
    pub fn open(&mut self, name: &'static str, detail: impl Into<String>) -> SpanId {
        match self {
            TraceBuf::Off => SpanId(NO_PARENT),
            TraceBuf::On(d) => {
                let idx = u32::try_from(d.records.len()).expect("span count fits u32");
                let parent = d.stack.last().copied().unwrap_or(NO_PARENT);
                d.records.push(SpanRecord {
                    name,
                    detail: detail.into(),
                    start_ns: d.epoch.elapsed().as_nanos() as u64,
                    dur_ns: 0,
                    parent,
                    lane: d.lane,
                });
                d.stack.push(idx);
                SpanId(idx)
            }
        }
    }

    /// Closes `span` (and, defensively, anything opened after it that was
    /// left open).
    pub fn close(&mut self, span: SpanId) {
        if let TraceBuf::On(d) = self {
            if span.0 == NO_PARENT {
                return;
            }
            while let Some(top) = d.stack.pop() {
                let now = d.epoch.elapsed().as_nanos() as u64;
                let r = &mut d.records[top as usize];
                r.dur_ns = now.saturating_sub(r.start_ns);
                if top == span.0 {
                    break;
                }
            }
        }
    }

    /// Runs `f` inside a span (convenience for straight-line stages).
    pub fn span<T>(
        &mut self,
        name: &'static str,
        detail: impl Into<String>,
        f: impl FnOnce(&mut TraceBuf) -> T,
    ) -> T {
        let id = self.open(name, detail);
        let out = f(self);
        self.close(id);
        out
    }

    /// Appends a child buffer's records, re-parenting the child's root
    /// spans under this buffer's innermost open span. Call at the same
    /// deterministic join point the worker's results are merged at.
    pub fn merge(&mut self, child: TraceBuf) {
        let (TraceBuf::On(d), TraceBuf::On(c)) = (&mut *self, child) else {
            return;
        };
        let base = u32::try_from(d.records.len()).expect("span count fits u32");
        let join_parent = d.stack.last().copied().unwrap_or(NO_PARENT);
        for mut r in c.records {
            r.parent = if r.parent == NO_PARENT {
                join_parent
            } else {
                r.parent + base
            };
            d.records.push(r);
        }
    }

    /// The recorded spans (empty when off).
    pub fn records(&self) -> &[SpanRecord] {
        match self {
            TraceBuf::Off => &[],
            TraceBuf::On(d) => &d.records,
        }
    }

    /// Chrome trace-event JSON (`{"traceEvents":[...]}`): one complete
    /// (`ph:"X"`) event per span, timestamps in microseconds, `tid` = the
    /// logical lane. Load the file in Perfetto or `chrome://tracing`.
    pub fn chrome_json(&self) -> String {
        let mut events = Arr::new();
        for r in self.records() {
            let mut e = Obj::new();
            e.str("name", r.name)
                .str("cat", "pinpoint")
                .str("ph", "X")
                .f64("ts", r.start_ns as f64 / 1000.0)
                .f64("dur", r.dur_ns as f64 / 1000.0)
                .u64("pid", 1)
                .u64("tid", u64::from(r.lane));
            if !r.detail.is_empty() {
                let mut args = Obj::new();
                args.str("detail", &r.detail);
                e.raw("args", &args.finish());
            }
            events.raw(&e.finish());
        }
        let mut doc = Obj::new();
        doc.raw("traceEvents", &events.finish())
            .str("displayTimeUnit", "ms");
        doc.finish()
    }

    /// Normalized trace: timestamps, durations and lanes dropped; each
    /// span keyed by `(name, detail, parent name, parent detail)` and the
    /// whole list sorted. The result depends only on *what work was
    /// done*, so it is byte-identical across thread counts.
    pub fn canonical_json(&self) -> String {
        let records = self.records();
        let mut rows: Vec<String> = records
            .iter()
            .map(|r| {
                let parent = if r.parent == NO_PARENT {
                    String::new()
                } else {
                    let p = &records[r.parent as usize];
                    if p.detail.is_empty() {
                        p.name.to_string()
                    } else {
                        format!("{}[{}]", p.name, p.detail)
                    }
                };
                let mut o = Obj::new();
                o.str("name", r.name)
                    .str("detail", &r.detail)
                    .str("parent", &parent);
                o.finish()
            })
            .collect();
        rows.sort_unstable();
        let mut arr = Arr::new();
        for row in &rows {
            arr.raw(row);
        }
        arr.finish()
    }
}

/// Quick sanity check that a chrome export mentions a span name (used by
/// tests; avoids parsing).
pub fn chrome_json_mentions(doc: &str, name: &str) -> bool {
    doc.contains(&format!("\"name\":\"{}\"", escape(name)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_records_nothing() {
        let mut t = TraceBuf::off();
        let s = t.open("pta", "");
        t.close(s);
        assert!(t.records().is_empty());
        assert_eq!(
            t.chrome_json(),
            r#"{"traceEvents":[],"displayTimeUnit":"ms"}"#
        );
    }

    #[test]
    fn nesting_sets_parents() {
        let mut t = TraceBuf::on();
        let a = t.open("analysis", "");
        let b = t.open("pta", "");
        let c = t.open("pta.func", "main");
        t.close(c);
        t.close(b);
        let d = t.open("seg", "");
        t.close(d);
        t.close(a);
        let r = t.records();
        assert_eq!(r.len(), 4);
        assert_eq!(r[0].parent, super::NO_PARENT);
        assert_eq!(r[1].parent, 0);
        assert_eq!(r[2].parent, 1);
        assert_eq!(r[3].parent, 0, "seg is a sibling of pta under analysis");
        assert!(r.iter().all(|x| x.lane == 0));
    }

    #[test]
    fn close_is_defensive_about_leftovers() {
        let mut t = TraceBuf::on();
        let outer = t.open("outer", "");
        let _leaked = t.open("inner", "");
        t.close(outer); // inner left open: closed implicitly
        assert!(t.records().iter().all(|r| r.dur_ns > 0 || r.start_ns > 0));
        let more = t.open("after", "");
        t.close(more);
        assert_eq!(t.records()[2].parent, super::NO_PARENT);
    }

    #[test]
    fn merge_reparents_children_under_open_span() {
        let mut t = TraceBuf::on();
        let stage = t.open("detect", "uaf");
        let mut w1 = t.fork(1);
        let s = w1.open("detect.source", "main@b0.i1");
        w1.close(s);
        let mut w2 = t.fork(2);
        let s = w2.open("detect.source", "main@b0.i2");
        w2.close(s);
        t.merge(w1);
        t.merge(w2);
        t.close(stage);
        let r = t.records();
        assert_eq!(r.len(), 3);
        assert_eq!(r[1].parent, 0);
        assert_eq!(r[2].parent, 0);
        assert_eq!((r[1].lane, r[2].lane), (1, 2));
    }

    #[test]
    fn canonical_json_is_sharding_invariant() {
        // The same logical work recorded on one lane vs split over two
        // lanes must normalize identically.
        let run = |shards: usize| {
            let mut t = TraceBuf::on();
            let stage = t.open("detect", "uaf");
            let details = ["a", "b", "c", "d"];
            let mut bufs: Vec<TraceBuf> = (0..shards).map(|i| t.fork(i as u32 + 1)).collect();
            for (i, d) in details.iter().enumerate() {
                let b = &mut bufs[i % shards];
                let s = b.open("detect.source", *d);
                b.close(s);
            }
            for b in bufs {
                t.merge(b);
            }
            t.close(stage);
            t.canonical_json()
        };
        assert_eq!(run(1), run(2));
        assert_ne!(run(1), TraceBuf::on().canonical_json());
    }

    #[test]
    fn chrome_json_has_trace_events() {
        let mut t = TraceBuf::on();
        let s = t.open("pta", "");
        t.close(s);
        let doc = t.chrome_json();
        assert!(doc.starts_with(r#"{"traceEvents":["#), "{doc}");
        assert!(chrome_json_mentions(&doc, "pta"));
        assert!(doc.contains("\"ph\":\"X\""));
    }
}
