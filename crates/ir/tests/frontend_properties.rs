//! Property tests over the front end and the CFG analyses.

use pinpoint_ir::{Cfg, DomTree, Gating, PostDomTree};

/// Minimal SplitMix64 so the fuzz loops below are deterministic without
/// an external PRNG dependency.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// The parser returns an error — never panics — on arbitrary input.
#[test]
fn parser_is_total_on_garbage() {
    let mut rng = Mix(0xF00D);
    for _ in 0..512 {
        let len = rng.below(200);
        let input: String = (0..len)
            .map(|_| {
                // Printable ASCII plus a few newlines/tabs.
                let c = rng.below(100) as u8;
                if c < 95 {
                    (c + 0x20) as char
                } else {
                    ['\n', '\t', 'λ', '∧', '→'][(c - 95) as usize]
                }
            })
            .collect();
        let _ = pinpoint_ir::parser::parse(&input);
    }
}

/// Ditto for inputs made of plausible tokens (more likely to get deep
/// into the grammar before failing).
#[test]
fn parser_is_total_on_token_soup() {
    const TOKENS: &[&str] = &[
        "fn", "let", "if", "else", "while", "return", "global", "int", "bool", "malloc", "null",
        "(", ")", "{", "}", ";", ":", ",", "=", "==", "*", "+", "->", "x", "y", "42", "true",
    ];
    let mut rng = Mix(0xBEEF);
    for _ in 0..512 {
        let n = rng.below(60);
        let soup: Vec<&str> = (0..n).map(|_| TOKENS[rng.below(TOKENS.len())]).collect();
        let _ = pinpoint_ir::parser::parse(&soup.join(" "));
    }
}

/// A small pool of well-formed programs exercising varied control flow.
fn program_pool() -> Vec<&'static str> {
    vec![
        "fn f(a: bool, b: bool) -> int {
            let x: int = 0;
            if (a) { if (b) { x = 1; } else { x = 2; } }
            else { x = 3; }
            return x;
        }",
        "fn f(a: bool, b: bool, c: bool) -> int {
            let x: int = 0;
            if (a) { x = 1; }
            if (b) { x = x + 1; }
            if (c) { return x; }
            return x + 1;
        }",
        "fn f(n: int) -> int {
            let i: int = 0;
            let acc: int = 0;
            while (i < n) {
                acc = acc + i;
                i = i + 1;
            }
            return acc;
        }",
        "fn f(a: bool) -> int {
            if (a) { return 1; } else { return 2; }
        }",
        "fn f(a: bool, b: bool) {
            if (a) {
                if (b) { print(1); }
                print(2);
            }
            return;
        }",
    ]
}

#[test]
fn dominator_invariants_hold() {
    for src in program_pool() {
        let m = pinpoint_ir::compile(src).unwrap();
        let f = &m.funcs[0];
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(f, &cfg);
        // Entry dominates every reachable block.
        for (bi, &reachable) in cfg.reachable.iter().enumerate() {
            if !reachable {
                continue;
            }
            let b = pinpoint_ir::BlockId(bi as u32);
            assert!(dom.dominates(f.entry(), b), "{src}: entry dom bb{bi}");
            // The idom (strictly) dominates its block.
            if b != f.entry() {
                let idom = dom.idom(b).expect("reachable non-entry has idom");
                assert!(dom.dominates(idom, b));
                assert_ne!(idom, b, "no self-idom outside entry");
            }
        }
    }
}

#[test]
fn postdominator_invariants_hold() {
    for src in program_pool() {
        let m = pinpoint_ir::compile(src).unwrap();
        let f = &m.funcs[0];
        let cfg = Cfg::new(f);
        let pdt = PostDomTree::new(f, &cfg);
        for (bi, &reachable) in cfg.reachable.iter().enumerate() {
            if !reachable {
                continue;
            }
            let b = pinpoint_ir::BlockId(bi as u32);
            assert!(
                pdt.post_dominates(pdt.exit, b),
                "{src}: exit postdominates bb{bi}"
            );
        }
    }
}

/// φ gates are exhaustive: the disjunction of a φ's incoming gates is a
/// tautology relative to reaching the join (checked via the SMT solver:
/// reach(join) ∧ ¬(g₁ ∨ g₂ ∨ …) is unsatisfiable).
#[test]
fn phi_gates_are_exhaustive() {
    use pinpoint_ir::{Inst, ValueId};
    use pinpoint_smt::{SmtResult, SmtSolver, TermArena};
    for src in program_pool() {
        let m = pinpoint_ir::compile(src).unwrap();
        let fid = pinpoint_ir::FuncId(0);
        let f = &m.funcs[0];
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(f, &cfg);
        let gating = Gating::new(f, &cfg, &dom);
        let mut arena = TermArena::new();
        let mut symbols = pinpoint_pta::Symbols::new();
        for (id, inst) in f.iter_insts() {
            let Inst::Phi { incomings, .. } = inst else {
                continue;
            };
            let gates: Vec<_> = incomings
                .iter()
                .map(|&(p, _): &(pinpoint_ir::BlockId, ValueId)| {
                    let g = gating.gate(id.block, p);
                    symbols.gate_term(&mut arena, fid, f, &g)
                })
                .collect();
            let any = arena.or(gates);
            let none = arena.not(any);
            // Under the conditions that reach the join at all, some gate
            // must fire. Our φs sit at structured joins whose reach is
            // implied by the gates' disjunction itself being complete
            // relative to the dominator; so ¬(∨ gates) conjoined with
            // the join's reach must be unsatisfiable. Reach is the
            // disjunction of predecessor reaches — approximated here by
            // the gates themselves, so we check ¬(∨gᵢ) ∧ (∨gᵢ) ≡ ⊥ and,
            // stronger, that the gate disjunction is valid given the
            // dominating block is reached (structured CFGs: it is a
            // tautology over the branch variables).
            let mut solver = SmtSolver::new();
            assert_eq!(
                solver.check(&arena, none),
                SmtResult::Unsat,
                "{src}: φ at {id} has non-exhaustive gates"
            );
        }
    }
}
