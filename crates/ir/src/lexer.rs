//! Lexer for the mini-language.

use crate::ast::Span;
use std::fmt;

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword body.
    Ident(String),
    /// Integer literal.
    Int(i64),
    // Keywords
    /// `fn`.
    Fn,
    /// `let`.
    Let,
    /// `if`.
    If,
    /// `else`.
    Else,
    /// `while`.
    While,
    /// `return`.
    Return,
    /// `global`.
    Global,
    /// `true`.
    True,
    /// `false`.
    False,
    /// `null`.
    Null,
    /// `int` type keyword.
    TyInt,
    /// `bool` type keyword.
    TyBool,
    /// `malloc`.
    Malloc,
    // Punctuation / operators
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `,`.
    Comma,
    /// `;`.
    Semi,
    /// `:`.
    Colon,
    /// `->`.
    Arrow,
    /// `=`.
    Assign,
    /// `==`.
    EqEq,
    /// `!=`.
    NotEq,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `!`.
    Bang,
    /// `&&`.
    AndAnd,
    /// `||`.
    OrOr,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(v) => write!(f, "integer `{v}`"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind.
    pub tok: Tok,
    /// Where it was found.
    pub span: Span,
}

/// Lexing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// Where the error occurred.
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenises `src`.
///
/// # Errors
///
/// Returns a [`LexError`] on unknown characters or malformed literals.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i];
        let span = Span { offset: i, line };
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LexError {
                                message: "unterminated block comment".into(),
                                span,
                            })
                        }
                        Some(b'*') if bytes.get(i + 1) == Some(&b'/') => {
                            i += 2;
                            break;
                        }
                        Some(b'\n') => {
                            line += 1;
                            i += 1;
                        }
                        Some(_) => i += 1,
                    }
                }
            }
            b'"' => {
                // The language has no string type, but a stray quote must
                // produce a diagnostic, not cascade into "unexpected
                // character" errors on every byte of the literal's body.
                i += 1;
                loop {
                    match bytes.get(i) {
                        None | Some(b'\n') => {
                            return Err(LexError {
                                message: "unterminated string literal".into(),
                                span,
                            })
                        }
                        Some(b'\\') => i += 2,
                        Some(b'"') => {
                            return Err(LexError {
                                message: "string literals are not supported".into(),
                                span,
                            })
                        }
                        Some(_) => i += 1,
                    }
                }
            }
            b'(' => {
                out.push(Token {
                    tok: Tok::LParen,
                    span,
                });
                i += 1;
            }
            b')' => {
                out.push(Token {
                    tok: Tok::RParen,
                    span,
                });
                i += 1;
            }
            b'{' => {
                out.push(Token {
                    tok: Tok::LBrace,
                    span,
                });
                i += 1;
            }
            b'}' => {
                out.push(Token {
                    tok: Tok::RBrace,
                    span,
                });
                i += 1;
            }
            b',' => {
                out.push(Token {
                    tok: Tok::Comma,
                    span,
                });
                i += 1;
            }
            b';' => {
                out.push(Token {
                    tok: Tok::Semi,
                    span,
                });
                i += 1;
            }
            b':' => {
                out.push(Token {
                    tok: Tok::Colon,
                    span,
                });
                i += 1;
            }
            b'+' => {
                out.push(Token {
                    tok: Tok::Plus,
                    span,
                });
                i += 1;
            }
            b'*' => {
                out.push(Token {
                    tok: Tok::Star,
                    span,
                });
                i += 1;
            }
            b'-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token {
                        tok: Tok::Arrow,
                        span,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        tok: Tok::Minus,
                        span,
                    });
                    i += 1;
                }
            }
            b'=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        tok: Tok::EqEq,
                        span,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        tok: Tok::Assign,
                        span,
                    });
                    i += 1;
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        tok: Tok::NotEq,
                        span,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        tok: Tok::Bang,
                        span,
                    });
                    i += 1;
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token { tok: Tok::Le, span });
                    i += 2;
                } else {
                    out.push(Token { tok: Tok::Lt, span });
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token { tok: Tok::Ge, span });
                    i += 2;
                } else {
                    out.push(Token { tok: Tok::Gt, span });
                    i += 1;
                }
            }
            b'&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    out.push(Token {
                        tok: Tok::AndAnd,
                        span,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "expected `&&`".into(),
                        span,
                    });
                }
            }
            b'|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    out.push(Token {
                        tok: Tok::OrOr,
                        span,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "expected `||`".into(),
                        span,
                    });
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let v: i64 = text.parse().map_err(|_| LexError {
                    message: format!("integer literal `{text}` out of range"),
                    span,
                })?;
                out.push(Token {
                    tok: Tok::Int(v),
                    span,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let text = &src[start..i];
                let tok = match text {
                    "fn" => Tok::Fn,
                    "let" => Tok::Let,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "return" => Tok::Return,
                    "global" => Tok::Global,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "null" => Tok::Null,
                    "int" => Tok::TyInt,
                    "bool" => Tok::TyBool,
                    "malloc" => Tok::Malloc,
                    _ => Tok::Ident(text.to_string()),
                };
                out.push(Token { tok, span });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{}`", other as char),
                    span,
                })
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        span: Span {
            offset: bytes.len(),
            line,
        },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_function_header() {
        let toks = kinds("fn foo(a: int*) -> int {");
        assert_eq!(
            toks,
            vec![
                Tok::Fn,
                Tok::Ident("foo".into()),
                Tok::LParen,
                Tok::Ident("a".into()),
                Tok::Colon,
                Tok::TyInt,
                Tok::Star,
                Tok::RParen,
                Tok::Arrow,
                Tok::TyInt,
                Tok::LBrace,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn distinguishes_compound_operators() {
        let toks = kinds("= == ! != < <= > >= && || - ->");
        assert_eq!(
            toks,
            vec![
                Tok::Assign,
                Tok::EqEq,
                Tok::Bang,
                Tok::NotEq,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Minus,
                Tok::Arrow,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let toks = lex("// comment\nfn").unwrap();
        assert_eq!(toks[0].tok, Tok::Fn);
        assert_eq!(toks[0].span.line, 2);
    }

    #[test]
    fn rejects_stray_ampersand() {
        assert!(lex("a & b").is_err());
    }

    #[test]
    fn block_comments_skip_and_track_lines() {
        let toks = lex("/* one\n * two\n */ fn").unwrap();
        assert_eq!(toks[0].tok, Tok::Fn);
        assert_eq!(toks[0].span.line, 3);
    }

    #[test]
    fn unterminated_block_comment_is_an_error() {
        let err = lex("fn main() { /* oops").unwrap_err();
        assert!(err.message.contains("unterminated block comment"), "{err}");
        // The span points at the comment opener, not end-of-input.
        assert_eq!(err.span.offset, 12);
    }

    #[test]
    fn string_literals_error_cleanly() {
        let err = lex("let s = \"hello\";").unwrap_err();
        assert!(err.message.contains("not supported"), "{err}");
        let err = lex("let s = \"runaway").unwrap_err();
        assert!(err.message.contains("unterminated string"), "{err}");
        let err = lex("let s = \"multi\nline\"").unwrap_err();
        assert!(err.message.contains("unterminated string"), "{err}");
        // A trailing backslash must not index past end-of-input.
        let err = lex("\"esc\\").unwrap_err();
        assert!(err.message.contains("unterminated string"), "{err}");
    }

    #[test]
    fn lexes_integers() {
        assert_eq!(kinds("42 007"), vec![Tok::Int(42), Tok::Int(7), Tok::Eof]);
    }

    #[test]
    fn keywords_versus_identifiers() {
        assert_eq!(
            kinds("iffy if fnord fn"),
            vec![
                Tok::Ident("iffy".into()),
                Tok::If,
                Tok::Ident("fnord".into()),
                Tok::Fn,
                Tok::Eof
            ]
        );
    }
}
