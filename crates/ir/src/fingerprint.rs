//! Stable content fingerprints for lowered functions.
//!
//! The persistent analysis cache keys each function's artifact by a
//! structural hash of its *pre-transform* SSA body. The hash covers
//! everything the per-function analysis can observe — signature, blocks,
//! instructions, terminators, the values table, and the `(id, name, type)`
//! of every global the body references — and nothing it cannot (block and
//! value ids are function-local indices assigned deterministically by the
//! lowerer, so hashing the raw indices is stable across runs).
//!
//! The hash is FNV-1a widened to 128 bits: dependency-free, deterministic
//! across platforms, and with a collision probability that is negligible
//! for cache-keying purposes (this is a cache key, not a security
//! boundary).

use crate::ir::{Const, Function, Global, Inst, Terminator};
use crate::types::Type;

/// 128-bit FNV-1a hasher (offset basis / prime from the reference spec).
#[derive(Debug, Clone, Copy)]
pub struct Fnv128(u128);

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013B;

impl Default for Fnv128 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv128 {
    /// Creates a hasher seeded with the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv128(FNV128_OFFSET)
    }

    /// Absorbs a byte slice.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Absorbs a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u128` (little-endian).
    pub fn write_u128(&mut self, v: u128) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a length-prefixed string (prefix prevents ambiguity
    /// between adjacent fields).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Returns the accumulated hash.
    pub fn finish(self) -> u128 {
        self.0
    }
}

fn hash_type(h: &mut Fnv128, ty: &Type) {
    // A `Type` is `Int`/`Bool` behind zero or more pointer levels; encode
    // as (indirection depth, base tag).
    let mut depth = 0u32;
    let mut cur = ty;
    while let Type::Ptr(inner) = cur {
        depth += 1;
        cur = inner;
    }
    h.write_u32(depth);
    h.write_u32(match cur {
        Type::Int => 0,
        Type::Bool => 1,
        Type::Ptr(_) => unreachable!(),
    });
}

fn hash_const(h: &mut Fnv128, c: &Const) {
    match c {
        Const::Int(v) => {
            h.write_u32(0);
            h.write_u64(*v as u64);
        }
        Const::Bool(b) => {
            h.write_u32(1);
            h.write_u32(*b as u32);
        }
        Const::Null => h.write_u32(2),
    }
}

fn hash_inst(h: &mut Fnv128, inst: &Inst, globals: &[Global]) {
    match inst {
        Inst::Const { dst, value } => {
            h.write_u32(0);
            h.write_u32(dst.0);
            hash_const(h, value);
        }
        Inst::Copy { dst, src } => {
            h.write_u32(1);
            h.write_u32(dst.0);
            h.write_u32(src.0);
        }
        Inst::Phi { dst, incomings } => {
            h.write_u32(2);
            h.write_u32(dst.0);
            h.write_u64(incomings.len() as u64);
            for (bb, v) in incomings {
                h.write_u32(bb.0);
                h.write_u32(v.0);
            }
        }
        Inst::Bin { dst, op, lhs, rhs } => {
            h.write_u32(3);
            h.write_u32(dst.0);
            h.write_u32(*op as u32);
            h.write_u32(lhs.0);
            h.write_u32(rhs.0);
        }
        Inst::Un { dst, op, operand } => {
            h.write_u32(4);
            h.write_u32(dst.0);
            h.write_u32(*op as u32);
            h.write_u32(operand.0);
        }
        Inst::Load { dst, ptr, depth } => {
            h.write_u32(5);
            h.write_u32(dst.0);
            h.write_u32(ptr.0);
            h.write_u32(*depth);
        }
        Inst::Store { ptr, depth, src } => {
            h.write_u32(6);
            h.write_u32(ptr.0);
            h.write_u32(*depth);
            h.write_u32(src.0);
        }
        Inst::Alloc { dst } => {
            h.write_u32(7);
            h.write_u32(dst.0);
        }
        Inst::GlobalAddr { dst, global } => {
            h.write_u32(8);
            h.write_u32(dst.0);
            h.write_u32(global.0);
            // A raw GlobalId is only meaningful relative to the module's
            // global table; fold in the referenced global's identity so a
            // table reshuffle invalidates exactly the functions touching
            // the shifted globals.
            if let Some(g) = globals.get(global.0 as usize) {
                h.write_str(&g.name);
                hash_type(h, &g.ty);
            } else {
                h.write_u32(u32::MAX);
            }
        }
        Inst::Call { dsts, callee, args } => {
            h.write_u32(9);
            h.write_u64(dsts.len() as u64);
            for d in dsts {
                h.write_u32(d.0);
            }
            h.write_str(callee);
            h.write_u64(args.len() as u64);
            for a in args {
                h.write_u32(a.0);
            }
        }
    }
}

fn hash_terminator(h: &mut Fnv128, term: &Terminator) {
    match term {
        Terminator::Jump(bb) => {
            h.write_u32(0);
            h.write_u32(bb.0);
        }
        Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } => {
            h.write_u32(1);
            h.write_u32(cond.0);
            h.write_u32(then_bb.0);
            h.write_u32(else_bb.0);
        }
        Terminator::Return(vs) => {
            h.write_u32(2);
            h.write_u64(vs.len() as u64);
            for v in vs {
                h.write_u32(v.0);
            }
        }
        Terminator::Unreachable => h.write_u32(3),
    }
}

/// Computes the stable content fingerprint of a lowered function.
///
/// Two functions have equal fingerprints iff their lowered bodies are
/// structurally identical (modulo FNV collisions): same signature, same
/// blocks/instructions/terminators, same values table, and same
/// identities for any globals they address. The fingerprint is
/// independent of where the function sits in the module and of any other
/// function's content.
pub fn func_fingerprint(f: &Function, globals: &[Global]) -> u128 {
    let mut h = Fnv128::new();
    h.write_str(&f.name);
    h.write_u64(f.params.len() as u64);
    for p in &f.params {
        h.write_u32(p.0);
    }
    h.write_u64(f.ret_tys.len() as u64);
    for ty in &f.ret_tys {
        hash_type(&mut h, ty);
    }
    h.write_u64(f.aux_param_count as u64);
    h.write_u64(f.blocks.len() as u64);
    for block in &f.blocks {
        h.write_u64(block.insts.len() as u64);
        for inst in &block.insts {
            hash_inst(&mut h, inst, globals);
        }
        hash_terminator(&mut h, &block.term);
    }
    h.write_u64(f.values.len() as u64);
    for info in &f.values {
        h.write_str(&info.name);
        hash_type(&mut h, &info.ty);
        match info.def {
            Some(iid) => {
                h.write_u32(1);
                h.write_u32(iid.block.0);
                h.write_u64(iid.index as u64);
            }
            None => h.write_u32(0),
        }
    }
    h.finish()
}

/// Computes [`func_fingerprint`] for every function of `module`, indexed
/// by `FuncId`.
///
/// This is the single dirtying primitive every reuse layer shares: the
/// persistent cache folds these into transitive cache keys
/// (`pinpoint-cache`), and the in-memory incremental paths diff them to
/// discover edited functions automatically instead of trusting a
/// caller-supplied change list.
pub fn module_fingerprints(module: &crate::Module) -> Vec<u128> {
    module
        .funcs
        .iter()
        .map(|f| func_fingerprint(f, &module.globals))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn module_fingerprints_index_by_func_id() {
        let m = compile("fn a() { return; } fn b(x: int) -> int { return x; }").unwrap();
        let fps = module_fingerprints(&m);
        assert_eq!(fps.len(), m.funcs.len());
        for (i, f) in m.funcs.iter().enumerate() {
            assert_eq!(fps[i], func_fingerprint(f, &m.globals));
        }
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let src_a = "fn f(x: int) -> int { let y: int = x + 1; return y; }";
        let src_b = "fn f(x: int) -> int { let y: int = x + 2; return y; }";
        let ma1 = compile(src_a).unwrap();
        let ma2 = compile(src_a).unwrap();
        let mb = compile(src_b).unwrap();
        let fa1 = func_fingerprint(&ma1.funcs[0], &ma1.globals);
        let fa2 = func_fingerprint(&ma2.funcs[0], &ma2.globals);
        let fb = func_fingerprint(&mb.funcs[0], &mb.globals);
        assert_eq!(fa1, fa2, "same source, same fingerprint");
        assert_ne!(fa1, fb, "edited body, different fingerprint");
    }

    #[test]
    fn fingerprint_independent_of_module_position() {
        let one = "fn f() { return; }";
        let two = "fn g() { return; } fn f() { return; }";
        let m1 = compile(one).unwrap();
        let m2 = compile(two).unwrap();
        let f1 = &m1.funcs[0];
        let f2 = m2.funcs.iter().find(|f| f.name == "f").unwrap();
        assert_eq!(
            func_fingerprint(f1, &m1.globals),
            func_fingerprint(f2, &m2.globals)
        );
    }
}
