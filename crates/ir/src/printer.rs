//! Textual pretty-printer for the IR, used in tests, examples, and
//! debugging output.

use crate::ir::{BlockId, Const, Function, Inst, Module, Terminator, ValueId};
use std::fmt::Write;

/// Renders a whole module.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    for g in &m.globals {
        let _ = writeln!(out, "global {}: {}", g.name, g.ty);
    }
    for (_, f) in m.iter_funcs() {
        out.push_str(&print_function(m, f));
        out.push('\n');
    }
    out
}

/// Renders one function.
pub fn print_function(m: &Module, f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = f
        .params
        .iter()
        .map(|&p| format!("{}: {}", vname(f, p), f.ty(p)))
        .collect();
    let rets: Vec<String> = f.ret_tys.iter().map(|t| t.to_string()).collect();
    let _ = writeln!(
        out,
        "fn {}({}){} {{",
        f.name,
        params.join(", "),
        if rets.is_empty() {
            String::new()
        } else {
            format!(" -> ({})", rets.join(", "))
        }
    );
    for (bi, blk) in f.blocks.iter().enumerate() {
        let _ = writeln!(out, "bb{bi}:");
        for inst in &blk.insts {
            let _ = writeln!(out, "  {}", print_inst(m, f, inst));
        }
        let _ = writeln!(out, "  {}", print_term(f, &blk.term));
    }
    out.push_str("}\n");
    out
}

fn vname(f: &Function, v: ValueId) -> String {
    format!("%{}.{}", v.0, f.value(v).name)
}

fn print_inst(m: &Module, f: &Function, inst: &Inst) -> String {
    match inst {
        Inst::Const { dst, value } => format!(
            "{} = const {}",
            vname(f, *dst),
            match value {
                Const::Int(v) => v.to_string(),
                Const::Bool(b) => b.to_string(),
                Const::Null => "null".to_string(),
            }
        ),
        Inst::Copy { dst, src } => format!("{} = {}", vname(f, *dst), vname(f, *src)),
        Inst::Phi { dst, incomings } => {
            let args: Vec<String> = incomings
                .iter()
                .map(|(b, v)| format!("[bb{}: {}]", b.0, vname(f, *v)))
                .collect();
            format!("{} = phi {}", vname(f, *dst), args.join(", "))
        }
        Inst::Bin { dst, op, lhs, rhs } => format!(
            "{} = {} {op} {}",
            vname(f, *dst),
            vname(f, *lhs),
            vname(f, *rhs)
        ),
        Inst::Un { dst, op, operand } => {
            format!("{} = {op}{}", vname(f, *dst), vname(f, *operand))
        }
        Inst::Load { dst, ptr, depth } => {
            format!("{} = load({}, {depth})", vname(f, *dst), vname(f, *ptr))
        }
        Inst::Store { ptr, depth, src } => {
            format!("store({}, {depth}) = {}", vname(f, *ptr), vname(f, *src))
        }
        Inst::Alloc { dst } => format!("{} = malloc", vname(f, *dst)),
        Inst::GlobalAddr { dst, global } => format!(
            "{} = &{}",
            vname(f, *dst),
            m.globals[global.0 as usize].name
        ),
        Inst::Call { dsts, callee, args } => {
            let ds: Vec<String> = dsts.iter().map(|&d| vname(f, d)).collect();
            let argt: Vec<String> = args.iter().map(|&a| vname(f, a)).collect();
            if ds.is_empty() {
                format!("call {callee}({})", argt.join(", "))
            } else {
                format!("{{{}}} = call {callee}({})", ds.join(", "), argt.join(", "))
            }
        }
    }
}

fn print_term(f: &Function, t: &Terminator) -> String {
    match t {
        Terminator::Jump(b) => format!("jump bb{}", b.0),
        Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } => format!("br {} ? bb{} : bb{}", vname(f, *cond), then_bb.0, else_bb.0),
        Terminator::Return(vs) => {
            let vals: Vec<String> = vs.iter().map(|&v| vname(f, v)).collect();
            format!("return {{{}}}", vals.join(", "))
        }
        Terminator::Unreachable => "unreachable".to_string(),
    }
}

/// Helper for printing a single block (used by error reports).
pub fn print_block(m: &Module, f: &Function, b: BlockId) -> String {
    let mut out = format!("bb{}:\n", b.0);
    for inst in &f.block(b).insts {
        let _ = writeln!(out, "  {}", print_inst(m, f, inst));
    }
    let _ = writeln!(out, "  {}", print_term(f, &f.block(b).term));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::parser::parse;

    #[test]
    fn prints_round_trippable_shape() {
        let m = lower(
            &parse(
                "global g: int;
                 fn f(c: bool, p: int**) -> int {
                    let x: int = 0;
                    if (c) { x = 1; } else { *p = g; }
                    return x;
                 }",
            )
            .unwrap(),
        )
        .unwrap();
        let text = print_module(&m);
        assert!(text.contains("global g: int"));
        assert!(text.contains("fn f("));
        assert!(text.contains("phi"));
        assert!(text.contains("store"));
        assert!(text.contains("&g"));
        assert!(text.contains("return"));
    }

    #[test]
    fn prints_calls_with_receivers() {
        let m = lower(
            &parse(
                "fn g() -> int { return 1; }
                 fn f() { let x: int = g(); print(x); return; }",
            )
            .unwrap(),
        )
        .unwrap();
        let text = print_module(&m);
        assert!(text.contains("= call g()"));
        assert!(text.contains("call print("));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::lower::lower;
    use crate::parser::parse;

    #[test]
    fn prints_every_instruction_kind() {
        let m = lower(
            &parse(
                "global g: int;
                 fn callee(v: int) -> int { return v; }
                 fn f(c: bool, p: int**) -> int {
                    let x: int = 1;            // Const
                    let y: int = x;            // Copy
                    let z: int = x + y;        // Bin
                    let w: int = -z;           // Un
                    let m0: int** = malloc();  // Alloc
                    let ga: int* = g;          // GlobalAddr
                    *m0 = ga;                  // Store
                    let ld: int* = *m0;        // Load
                    print(ld);                 // Call (void)
                    let r: int = callee(w);    // Call (receiver)
                    let out: int = 0;
                    if (c) { out = r; } else { out = w; } // Phi at join
                    return out;
                 }",
            )
            .unwrap(),
        )
        .unwrap();
        let f = m.func(m.func_by_name("f").unwrap());
        let text = print_function(&m, f);
        for needle in [
            "= const 1",
            "= malloc",
            "= &g",
            "store(",
            "= load(",
            "call print(",
            "= call callee(",
            "= phi",
            "br ",
            "jump bb",
            "return {",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn print_block_isolates_one_block() {
        let m = lower(&parse("fn f() { let x: int = 1; return; }").unwrap()).unwrap();
        let f = m.func(m.func_by_name("f").unwrap());
        let text = print_block(&m, f, f.entry());
        assert!(text.starts_with("bb0:"));
        assert!(text.contains("const 1"));
    }

    #[test]
    fn multi_value_return_printed() {
        // After a connector-style transformation returns are tuples.
        use crate::ir::{Inst, Terminator};
        use crate::types::Type;
        let mut m = lower(&parse("fn f(q: int**) -> int { return 1; }").unwrap()).unwrap();
        let fid = m.func_by_name("f").unwrap();
        let f = m.func_mut(fid);
        let aux = f.new_value("aux_out_p0d1", Type::Int.ptr_to());
        let rb = f.return_block().unwrap();
        let q = f.params[0];
        f.blocks[rb.0 as usize].insts.push(Inst::Load {
            dst: aux,
            ptr: q,
            depth: 1,
        });
        if let Terminator::Return(vals) = &mut f.blocks[rb.0 as usize].term {
            vals.push(aux);
        }
        f.ret_tys.push(Type::Int.ptr_to());
        let f = m.func(fid);
        let text = print_function(&m, f);
        assert!(text.contains("-> (int, int*)"), "{text}");
        assert!(text.contains("aux_out_p0d1}"), "{text}");
    }
}
