//! `pinpoint-ir`: the program-representation substrate for the Pinpoint
//! reproduction (PLDI 2018).
//!
//! The paper defines its analysis over a small call-by-value language (§3)
//! with assignments, φ-assignments, binary/unary operations, k-level
//! pointer loads and stores, branches, calls, and returns. This crate
//! provides that language end to end:
//!
//! * a C-like surface syntax ([`lexer`], [`parser`], [`ast`]);
//! * [`lower`] — lowering to an SSA control-flow-graph IR ([`ir`]), with
//!   loops unrolled once (the §4.2 soundiness rule) so every CFG is
//!   acyclic and every function has a unique return statement;
//! * CFG utilities ([`cfg`](mod@cfg)), dominators and post-dominators ([`dom`]),
//!   control dependence ([`controldep`]), and gating conditions for
//!   φ-assignments ([`gating`]);
//! * the call graph with SCC condensation and bottom-up ordering
//!   ([`callgraph`]) driving the compositional analysis;
//! * a pretty-printer ([`printer`]).
//!
//! # Examples
//!
//! ```
//! use pinpoint_ir::{parser, lower};
//!
//! let src = "fn main() { let p: int* = malloc(); free(p); return; }";
//! let program = parser::parse(src)?;
//! let module = lower::lower(&program)?;
//! assert_eq!(module.funcs.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod callgraph;
pub mod cfg;
pub mod controldep;
pub mod dom;
pub mod fingerprint;
pub mod gating;
pub mod ir;
pub mod lexer;
pub mod lower;
pub mod opt;
pub mod parser;
pub mod printer;
pub mod types;
pub mod verify;

pub use callgraph::CallGraph;
pub use cfg::Cfg;
pub use controldep::{ControlDep, ControlDeps};
pub use dom::{DomTree, PostDomTree};
pub use fingerprint::{func_fingerprint, module_fingerprints};
pub use gating::{Gate, Gating};
pub use ir::intrinsics;
pub use ir::{
    BinOp, Block, BlockId, Const, FuncId, Function, Global, GlobalId, Inst, InstId, Module,
    Terminator, UnOp, ValueId,
};
pub use opt::{optimize_module, OptStats};
pub use types::Type;
pub use verify::{verify_module, VerifyError};

/// Parses and lowers a source string in one step.
///
/// # Errors
///
/// Returns a boxed parse or lowering error.
///
/// # Examples
///
/// ```
/// let module = pinpoint_ir::compile("fn main() { return; }")?;
/// assert_eq!(module.funcs[0].name, "main");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compile(src: &str) -> Result<Module, Box<dyn std::error::Error>> {
    let program = parser::parse(src)?;
    Ok(lower::lower(&program)?)
}
