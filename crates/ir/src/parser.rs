//! Recursive-descent parser for the mini-language.

use crate::ast::{BinOpKind, Expr, FuncDef, GlobalDef, Program, Span, Stmt, UnOpKind};
use crate::lexer::{lex, LexError, Tok, Token};
use crate::types::Type;
use std::fmt;

/// Parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Where the error occurred.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            span: e.span,
        }
    }
}

/// Parses a whole program.
///
/// # Errors
///
/// Returns the first lexing or parsing error encountered.
///
/// # Examples
///
/// ```
/// let src = "fn main() { let x: int = 1; return; }";
/// let program = pinpoint_ir::parser::parse(src)?;
/// assert_eq!(program.funcs.len(), 1);
/// # Ok::<(), pinpoint_ir::parser::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    p.program()
}

/// Maximum statement/expression nesting depth. The parser is recursive
/// descent, so without a bound a hostile input like `((((…))))` would
/// overflow the stack; past this depth it returns a [`ParseError`]
/// instead. Far above anything a real program needs, while keeping the
/// worst-case stack usage (each level costs several unoptimized frames,
/// statement nesting the most) inside a 2 MiB test-thread stack.
const MAX_NESTING_DEPTH: usize = 128;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok) -> Result<(), ParseError> {
        if *self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {want}, found {}", self.peek())))
        }
    }

    fn error(&self, message: String) -> ParseError {
        ParseError {
            message,
            span: self.span(),
        }
    }

    /// Bumps the recursion depth, failing once the input nests deeper
    /// than [`MAX_NESTING_DEPTH`]. Every recursive production calls this
    /// on entry and [`Parser::leave`] on exit.
    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            Err(self.error(format!(
                "nesting too deep (more than {MAX_NESTING_DEPTH} levels)"
            )))
        } else {
            Ok(())
        }
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::default();
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Global => prog.globals.push(self.global()?),
                Tok::Fn => prog.funcs.push(self.func()?),
                other => {
                    return Err(self.error(format!("expected `fn` or `global`, found {other}")))
                }
            }
        }
        Ok(prog)
    }

    fn global(&mut self) -> Result<GlobalDef, ParseError> {
        let span = self.span();
        self.expect(Tok::Global)?;
        let name = self.ident()?;
        self.expect(Tok::Colon)?;
        let ty = self.ty()?;
        self.expect(Tok::Semi)?;
        Ok(GlobalDef { name, ty, span })
    }

    fn func(&mut self) -> Result<FuncDef, ParseError> {
        let span = self.span();
        self.expect(Tok::Fn)?;
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                let pname = self.ident()?;
                self.expect(Tok::Colon)?;
                let ty = self.ty()?;
                params.push((pname, ty));
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        let ret_ty = if *self.peek() == Tok::Arrow {
            self.bump();
            Some(self.ty()?)
        } else {
            None
        };
        let body = self.block()?;
        Ok(FuncDef {
            name,
            params,
            ret_ty,
            body,
            span,
        })
    }

    fn ty(&mut self) -> Result<Type, ParseError> {
        let mut base = match self.bump() {
            Tok::TyInt => Type::Int,
            Tok::TyBool => Type::Bool,
            other => return Err(self.error(format!("expected type, found {other}"))),
        };
        while *self.peek() == Tok::Star {
            self.bump();
            base = base.ptr_to();
        }
        Ok(base)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            stmts.push(self.stmt()?);
        }
        self.expect(Tok::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        self.enter()?;
        let result = self.stmt_inner();
        self.leave();
        result
    }

    fn stmt_inner(&mut self) -> Result<Stmt, ParseError> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Let => {
                self.bump();
                let name = self.ident()?;
                self.expect(Tok::Colon)?;
                let ty = self.ty()?;
                self.expect(Tok::Assign)?;
                let init = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Let {
                    name,
                    ty,
                    init,
                    span,
                })
            }
            Tok::If => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let then_body = self.block()?;
                let else_body = if *self.peek() == Tok::Else {
                    self.bump();
                    if *self.peek() == Tok::If {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    span,
                })
            }
            Tok::While => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, span })
            }
            Tok::Return => {
                self.bump();
                if *self.peek() == Tok::Semi {
                    self.bump();
                    Ok(Stmt::Return(None, span))
                } else {
                    let e = self.expr()?;
                    self.expect(Tok::Semi)?;
                    Ok(Stmt::Return(Some(e), span))
                }
            }
            Tok::Star => {
                // Store: one or more `*` then a primary expr, `=`, value.
                let mut depth = 0u32;
                while *self.peek() == Tok::Star {
                    self.bump();
                    depth += 1;
                }
                let ptr = self.primary()?;
                self.expect(Tok::Assign)?;
                let value = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Store {
                    ptr,
                    depth,
                    value,
                    span,
                })
            }
            Tok::Ident(name) => {
                // Assignment or expression statement (call).
                if self.tokens[self.pos + 1].tok == Tok::Assign {
                    self.bump();
                    self.bump();
                    let value = self.expr()?;
                    self.expect(Tok::Semi)?;
                    Ok(Stmt::Assign { name, value, span })
                } else {
                    let e = self.expr()?;
                    self.expect(Tok::Semi)?;
                    Ok(Stmt::Expr(e))
                }
            }
            other => Err(self.error(format!("expected statement, found {other}"))),
        }
    }

    // Precedence climbing: or < and < cmp < add < mul < unary < primary.
    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let result = self.or_expr();
        self.leave();
        result
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while *self.peek() == Tok::OrOr {
            let span = self.span();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Bin(BinOpKind::Or, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while *self.peek() == Tok::AndAnd {
            let span = self.span();
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::Bin(BinOpKind::And, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::EqEq => Some(BinOpKind::Eq),
            Tok::NotEq => Some(BinOpKind::Ne),
            Tok::Lt => Some(BinOpKind::Lt),
            Tok::Le => Some(BinOpKind::Le),
            Tok::Gt => Some(BinOpKind::Gt),
            Tok::Ge => Some(BinOpKind::Ge),
            _ => None,
        };
        if let Some(op) = op {
            let span = self.span();
            self.bump();
            let rhs = self.add_expr()?;
            Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs), span))
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOpKind::Add,
                Tok::Minus => BinOpKind::Sub,
                _ => break,
            };
            let span = self.span();
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while *self.peek() == Tok::Star {
            let span = self.span();
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Bin(BinOpKind::Mul, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let result = self.unary_inner();
        self.leave();
        result
    }

    fn unary_inner(&mut self) -> Result<Expr, ParseError> {
        let span = self.span();
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Un(UnOpKind::Neg, Box::new(e), span))
            }
            Tok::Bang => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Un(UnOpKind::Not, Box::new(e), span))
            }
            Tok::Star => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Deref(Box::new(e), span))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let span = self.span();
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::True => Ok(Expr::Bool(true)),
            Tok::False => Ok(Expr::Bool(false)),
            Tok::Null => Ok(Expr::Null),
            Tok::Malloc => {
                self.expect(Tok::LParen)?;
                self.expect(Tok::RParen)?;
                Ok(Expr::Malloc(span))
            }
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    Ok(Expr::Call(name, args, span))
                } else {
                    Ok(Expr::Var(name, span))
                }
            }
            other => Err(ParseError {
                message: format!("expected expression, found {other}"),
                span,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure1_bar() {
        let src = r#"
            global gb: int*;
            fn bar(q: int**) {
                let c: int* = malloc();
                if (*q != null) {
                    *q = c;
                    free(c);
                } else {
                    if (nondet_bool()) { *q = gb; }
                }
                return;
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.globals.len(), 1);
        assert_eq!(p.funcs.len(), 1);
        let f = &p.funcs[0];
        assert_eq!(f.name, "bar");
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.params[0].1, Type::int_ptr(2));
        assert_eq!(f.body.len(), 3);
    }

    #[test]
    fn parses_nested_deref_store() {
        let src = "fn f(p: int**) { **p = 3; return; }";
        let prog = parse(src).unwrap();
        match &prog.funcs[0].body[0] {
            Stmt::Store { depth, .. } => assert_eq!(*depth, 2),
            other => panic!("expected store, got {other:?}"),
        }
    }

    #[test]
    fn operator_precedence() {
        let src = "fn f() -> int { return 1 + 2 * 3; }";
        let prog = parse(src).unwrap();
        match &prog.funcs[0].body[0] {
            Stmt::Return(Some(Expr::Bin(BinOpKind::Add, _, rhs, _)), _) => {
                assert!(matches!(**rhs, Expr::Bin(BinOpKind::Mul, ..)));
            }
            other => panic!("expected return of addition, got {other:?}"),
        }
    }

    #[test]
    fn logical_precedence() {
        // a || b && c parses as a || (b && c).
        let src = "fn f(a: bool, b: bool, c: bool) -> bool { return a || b && c; }";
        let prog = parse(src).unwrap();
        match &prog.funcs[0].body[0] {
            Stmt::Return(Some(Expr::Bin(BinOpKind::Or, _, rhs, _)), _) => {
                assert!(matches!(**rhs, Expr::Bin(BinOpKind::And, ..)));
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn else_if_chains() {
        let src = "fn f(a: bool, b: bool) { if (a) {} else if (b) {} else {} return; }";
        let prog = parse(src).unwrap();
        match &prog.funcs[0].body[0] {
            Stmt::If { else_body, .. } => {
                assert_eq!(else_body.len(), 1);
                assert!(matches!(else_body[0], Stmt::If { .. }));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn while_loops_parse() {
        let src = "fn f(n: int) { let i: int = 0; while (i < n) { i = i + 1; } return; }";
        let prog = parse(src).unwrap();
        assert!(matches!(prog.funcs[0].body[1], Stmt::While { .. }));
    }

    #[test]
    fn call_statement_and_expression() {
        let src = "fn f(p: int*) -> int* { free(p); let x: int* = qux(p, 3); return x; }";
        let prog = parse(src).unwrap();
        assert!(matches!(prog.funcs[0].body[0], Stmt::Expr(Expr::Call(..))));
    }

    #[test]
    fn error_on_missing_semicolon() {
        let src = "fn f() { let x: int = 1 return; }";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("expected"), "{}", err);
    }

    #[test]
    fn error_reports_line() {
        let src = "fn f() {\n  let x: int = @;\n}";
        let err = parse(src).unwrap_err();
        assert_eq!(err.span.line, 2);
    }

    #[test]
    fn unary_chains() {
        let src = "fn f(p: int**) -> int { return -**p; }";
        let prog = parse(src).unwrap();
        match &prog.funcs[0].body[0] {
            Stmt::Return(Some(Expr::Un(UnOpKind::Neg, inner, _)), _) => {
                assert!(matches!(**inner, Expr::Deref(..)));
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn deep_paren_nesting_errors_instead_of_overflowing() {
        let src = format!(
            "fn f() -> int {{ return {}1{}; }}",
            "(".repeat(10_000),
            ")".repeat(10_000)
        );
        let err = parse(&src).unwrap_err();
        assert!(err.message.contains("nesting too deep"), "{err}");
    }

    #[test]
    fn deep_unary_nesting_errors_instead_of_overflowing() {
        let src = format!("fn f() -> int {{ return {}1; }}", "-".repeat(10_000));
        let err = parse(&src).unwrap_err();
        assert!(err.message.contains("nesting too deep"), "{err}");
    }

    #[test]
    fn deep_statement_nesting_errors_instead_of_overflowing() {
        let mut src = String::from("fn f(c: bool) {\n");
        for _ in 0..10_000 {
            src.push_str("if (c) {\n");
        }
        src.push_str(&"}\n".repeat(10_000));
        src.push_str("return;\n}");
        let err = parse(&src).unwrap_err();
        assert!(err.message.contains("nesting too deep"), "{err}");
    }

    #[test]
    fn reasonable_nesting_still_parses() {
        // Each paren level passes through both the expr and the unary
        // guard, so 50 levels consume 100 of the 128-deep budget.
        let src = format!(
            "fn f() -> int {{ return {}1{}; }}",
            "(".repeat(50),
            ")".repeat(50)
        );
        assert!(parse(&src).is_ok());
    }
}
