//! Call graph, Tarjan SCC condensation, and bottom-up ordering.
//!
//! Pinpoint is a bottom-up compositional analysis: callees are analysed
//! before callers so their summaries are available at call sites (§3.3.2).
//! Recursive SCCs are cut by the §4.2 soundiness rule (call-graph loops
//! unrolled once): calls to a function in the *same* SCC are treated as
//! summary-free (no value flows through them).

use crate::ir::{intrinsics, FuncId, Inst, Module};
use std::collections::HashMap;

/// Call graph over a module's user-defined functions.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Callees per function (deduplicated; intrinsics excluded).
    pub callees: Vec<Vec<FuncId>>,
    /// Callers per function (deduplicated).
    pub callers: Vec<Vec<FuncId>>,
    /// SCC index per function (condensation node).
    pub scc_of: Vec<usize>,
    /// Functions per SCC, each member list sorted by [`FuncId`].
    pub sccs: Vec<Vec<FuncId>>,
    /// Functions in bottom-up order (callees before callers; within an
    /// SCC, ascending by [`FuncId`]), so schedules derived from the
    /// condensation are deterministic inputs.
    pub bottom_up: Vec<FuncId>,
}

impl CallGraph {
    /// Builds the call graph of `module`.
    pub fn new(module: &Module) -> Self {
        let n = module.funcs.len();
        let mut callees: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        let mut callers: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        for (fid, f) in module.iter_funcs() {
            for (_, inst) in f.iter_insts() {
                if let Inst::Call { callee, .. } = inst {
                    if intrinsics::is_intrinsic(callee) {
                        continue;
                    }
                    if let Some(target) = module.func_by_name(callee) {
                        if !callees[fid.0 as usize].contains(&target) {
                            callees[fid.0 as usize].push(target);
                        }
                        if !callers[target.0 as usize].contains(&fid) {
                            callers[target.0 as usize].push(fid);
                        }
                    }
                }
            }
        }
        let (scc_of, sccs) = tarjan(n, &callees);
        // Tarjan emits SCCs in reverse topological order of the
        // condensation (callees' components before callers'), which is
        // exactly bottom-up.
        let mut bottom_up = Vec::with_capacity(n);
        for scc in &sccs {
            bottom_up.extend(scc.iter().copied());
        }
        CallGraph {
            callees,
            callers,
            scc_of,
            sccs,
            bottom_up,
        }
    }

    /// `true` if `caller` and `callee` are in the same SCC (recursive
    /// call; its summary is unavailable — treated as a no-flow call).
    pub fn same_scc(&self, a: FuncId, b: FuncId) -> bool {
        self.scc_of[a.0 as usize] == self.scc_of[b.0 as usize]
    }

    /// `true` if `f` is self-recursive or part of a larger cycle.
    pub fn is_recursive(&self, f: FuncId) -> bool {
        let scc = self.scc_of[f.0 as usize];
        self.sccs[scc].len() > 1 || self.callees[f.0 as usize].contains(&f)
    }

    /// Condensation levels: SCC indices grouped so that every callee
    /// component of an SCC lives at a strictly lower level. SCCs within
    /// one level have no edges between them, so a bottom-up pass may
    /// process a whole level in parallel; iterating levels in order (and
    /// each level's SCCs in the returned order) is a deterministic
    /// schedule because intra-SCC member order is sorted by [`FuncId`].
    pub fn scc_levels(&self) -> Vec<Vec<usize>> {
        let mut level = vec![0usize; self.sccs.len()];
        // `bottom_up` visits callee components before caller components,
        // so each callee's level is final when its caller reads it.
        for &f in &self.bottom_up {
            let sf = self.scc_of[f.0 as usize];
            for &c in &self.callees[f.0 as usize] {
                let sc = self.scc_of[c.0 as usize];
                if sc != sf {
                    level[sf] = level[sf].max(level[sc] + 1);
                }
            }
        }
        let depth = level.iter().copied().max().map_or(0, |m| m + 1);
        let mut out = vec![Vec::new(); depth];
        for (scc, &l) in level.iter().enumerate() {
            out[l].push(scc);
        }
        out
    }
}

/// Iterative Tarjan SCC. Returns (scc index per node, SCC member lists in
/// reverse-topological order of the condensation).
fn tarjan(n: usize, succs: &[Vec<FuncId>]) -> (Vec<usize>, Vec<Vec<FuncId>>) {
    #[derive(Clone, Copy)]
    struct NodeState {
        index: u32,
        lowlink: u32,
        on_stack: bool,
        visited: bool,
    }
    let mut state = vec![
        NodeState {
            index: 0,
            lowlink: 0,
            on_stack: false,
            visited: false,
        };
        n
    ];
    let mut counter = 0u32;
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<FuncId>> = Vec::new();
    let mut scc_of = vec![usize::MAX; n];

    // Explicit DFS stack: (node, next child index).
    for root in 0..n {
        if state[root].visited {
            continue;
        }
        let mut dfs: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut ci)) = dfs.last_mut() {
            if *ci == 0 && !state[v].visited {
                state[v].visited = true;
                state[v].index = counter;
                state[v].lowlink = counter;
                counter += 1;
                stack.push(v);
                state[v].on_stack = true;
            }
            if *ci < succs[v].len() {
                let w = succs[v][*ci].0 as usize;
                *ci += 1;
                if !state[w].visited {
                    dfs.push((w, 0));
                } else if state[w].on_stack {
                    state[v].lowlink = state[v].lowlink.min(state[w].index);
                }
            } else {
                dfs.pop();
                if let Some(&mut (parent, _)) = dfs.last_mut() {
                    let low = state[v].lowlink;
                    state[parent].lowlink = state[parent].lowlink.min(low);
                }
                if state[v].lowlink == state[v].index {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack nonempty");
                        state[w].on_stack = false;
                        scc_of[w] = sccs.len();
                        comp.push(FuncId(w as u32));
                        if w == v {
                            break;
                        }
                    }
                    // Tarjan pops members in stack order, which depends on
                    // DFS traversal; sort so intra-SCC order is a stable
                    // function of the module alone.
                    comp.sort_unstable();
                    sccs.push(comp);
                }
            }
        }
    }
    (scc_of, sccs)
}

/// Map from function name to id for quick test assertions.
pub fn name_map(module: &Module) -> HashMap<String, FuncId> {
    module
        .iter_funcs()
        .map(|(id, f)| (f.name.clone(), id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::parser::parse;

    fn build(src: &str) -> (Module, CallGraph) {
        let m = lower(&parse(src).unwrap()).unwrap();
        let cg = CallGraph::new(&m);
        (m, cg)
    }

    #[test]
    fn bottom_up_orders_callees_first() {
        let (m, cg) = build(
            "fn leaf() { return; }
             fn mid() { leaf(); return; }
             fn top() { mid(); leaf(); return; }",
        );
        let names = name_map(&m);
        let pos = |n: &str| cg.bottom_up.iter().position(|f| *f == names[n]).unwrap();
        assert!(pos("leaf") < pos("mid"));
        assert!(pos("mid") < pos("top"));
    }

    #[test]
    fn intrinsics_are_not_edges() {
        let (_, cg) = build("fn f(p: int*) { free(p); print(p); return; }");
        assert!(cg.callees[0].is_empty());
    }

    #[test]
    fn mutual_recursion_one_scc() {
        let (m, cg) = build(
            "fn even(n: int) { odd(n - 1); return; }
             fn odd(n: int) { even(n - 1); return; }",
        );
        let names = name_map(&m);
        assert!(cg.same_scc(names["even"], names["odd"]));
        assert!(cg.is_recursive(names["even"]));
        assert_eq!(cg.sccs.iter().filter(|s| s.len() == 2).count(), 1);
    }

    #[test]
    fn self_recursion_detected() {
        let (m, cg) = build("fn f(n: int) { f(n - 1); return; }");
        let names = name_map(&m);
        assert!(cg.is_recursive(names["f"]));
        assert!(cg.same_scc(names["f"], names["f"]));
    }

    #[test]
    fn non_recursive_functions_in_singleton_sccs() {
        let (m, cg) = build(
            "fn a() { b(); return; }
             fn b() { return; }",
        );
        let names = name_map(&m);
        assert!(!cg.is_recursive(names["a"]));
        assert!(!cg.same_scc(names["a"], names["b"]));
    }

    #[test]
    fn intra_scc_order_is_sorted_by_func_id() {
        // Declare the cycle members in an order Tarjan would pop
        // differently from declaration order: the DFS root is `c`
        // (declared last but explored first from main), so stack-pop
        // order differs from FuncId order without the sort.
        let (m, cg) = build(
            "fn a(n: int) { b(n - 1); return; }
             fn b(n: int) { c(n - 1); return; }
             fn c(n: int) { a(n - 1); return; }
             fn main() { c(3); return; }",
        );
        let names = name_map(&m);
        let cycle = cg
            .sccs
            .iter()
            .find(|s| s.len() == 3)
            .expect("a,b,c form one SCC");
        let mut sorted = cycle.clone();
        sorted.sort_unstable();
        assert_eq!(*cycle, sorted, "SCC members must be sorted by FuncId");
        assert_eq!(cycle[0], names["a"]);
        // bottom_up inherits the same deterministic intra-SCC order.
        let pos = |n: &str| cg.bottom_up.iter().position(|f| *f == names[n]).unwrap();
        assert!(pos("a") < pos("b") && pos("b") < pos("c"));
    }

    #[test]
    fn scc_levels_respect_condensation_edges() {
        let (m, cg) = build(
            "fn leaf() { return; }
             fn left() { leaf(); return; }
             fn right() { leaf(); return; }
             fn top() { left(); right(); return; }",
        );
        let names = name_map(&m);
        let levels = cg.scc_levels();
        let level_of = |n: &str| {
            let scc = cg.scc_of[names[n].0 as usize];
            levels.iter().position(|l| l.contains(&scc)).unwrap()
        };
        assert_eq!(level_of("leaf"), 0);
        assert_eq!(level_of("left"), 1);
        assert_eq!(level_of("right"), 1);
        assert_eq!(level_of("top"), 2);
        let total: usize = levels.iter().map(|l| l.len()).sum();
        assert_eq!(total, cg.sccs.len(), "every SCC is scheduled exactly once");
    }

    #[test]
    fn callers_mirror_callees() {
        let (m, cg) = build(
            "fn leaf() { return; }
             fn top() { leaf(); return; }",
        );
        let names = name_map(&m);
        assert_eq!(cg.callers[names["leaf"].0 as usize], vec![names["top"]]);
        assert!(cg.callers[names["top"].0 as usize].is_empty());
    }
}
