//! Types of the mini-language and IR.
//!
//! The paper's formal language (§3) is untyped apart from the distinction
//! between values and k-level pointers; we keep a small nominal type system
//! (`int`, `bool`, and arbitrarily nested pointers) so that the front end
//! can reject ill-formed programs early and the points-to analysis knows
//! which values can carry addresses.

use std::fmt;

/// A mini-language type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// Machine integer.
    Int,
    /// Boolean.
    Bool,
    /// Pointer to a pointee type.
    Ptr(Box<Type>),
}

impl Type {
    /// Pointer to `self`.
    pub fn ptr_to(self) -> Type {
        Type::Ptr(Box::new(self))
    }

    /// Pointer to `int` with the given indirection depth
    /// (`int_ptr(0) = int`, `int_ptr(2) = int**`).
    pub fn int_ptr(depth: usize) -> Type {
        let mut t = Type::Int;
        for _ in 0..depth {
            t = t.ptr_to();
        }
        t
    }

    /// Returns the pointee type, if this is a pointer.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(inner) => Some(inner),
            _ => None,
        }
    }

    /// Number of pointer levels (`int** → 2`).
    pub fn indirection(&self) -> usize {
        match self {
            Type::Ptr(inner) => 1 + inner.indirection(),
            _ => 0,
        }
    }

    /// Result type of dereferencing `k` times, if well-formed.
    pub fn deref(&self, k: usize) -> Option<&Type> {
        if k == 0 {
            return Some(self);
        }
        self.pointee().and_then(|p| p.deref(k - 1))
    }

    /// `true` if the type is a pointer.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Bool => write!(f, "bool"),
            Type::Ptr(inner) => write!(f, "{inner}*"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nested_pointers() {
        assert_eq!(Type::int_ptr(2).to_string(), "int**");
        assert_eq!(Type::Bool.ptr_to().to_string(), "bool*");
    }

    #[test]
    fn indirection_counts_levels() {
        assert_eq!(Type::Int.indirection(), 0);
        assert_eq!(Type::int_ptr(3).indirection(), 3);
    }

    #[test]
    fn deref_walks_levels() {
        let t = Type::int_ptr(2);
        assert_eq!(t.deref(0), Some(&Type::int_ptr(2)));
        assert_eq!(t.deref(1), Some(&Type::int_ptr(1)));
        assert_eq!(t.deref(2), Some(&Type::Int));
        assert_eq!(t.deref(3), None);
        assert_eq!(Type::Bool.deref(1), None);
    }
}
