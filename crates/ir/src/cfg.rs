//! Control-flow-graph utilities: predecessors, successors, reverse
//! postorder, reachability.
//!
//! After lowering (which unrolls loops once — the soundiness rule of §4.2),
//! every CFG in this system is acyclic; [`Cfg::topo_order`] asserts this
//! and yields a topological order used by the flow-sensitive points-to
//! analysis and the gating-condition computation.

use crate::ir::{BlockId, Function};

/// Predecessor/successor view over a function's blocks.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successors per block.
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessors per block.
    pub preds: Vec<Vec<BlockId>>,
    /// Blocks reachable from entry.
    pub reachable: Vec<bool>,
}

impl Cfg {
    /// Builds the CFG view of `f`.
    pub fn new(f: &Function) -> Self {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (b, blk) in f.blocks.iter().enumerate() {
            for s in blk.term.successors() {
                succs[b].push(s);
                preds[s.0 as usize].push(BlockId(b as u32));
            }
        }
        let mut reachable = vec![false; n];
        let mut stack = vec![f.entry()];
        while let Some(b) = stack.pop() {
            if std::mem::replace(&mut reachable[b.0 as usize], true) {
                continue;
            }
            stack.extend(succs[b.0 as usize].iter().copied());
        }
        Cfg {
            succs,
            preds,
            reachable,
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// `true` if the function has no blocks (never happens for built
    /// functions, which always own an entry block).
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Successors of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.0 as usize]
    }

    /// Predecessors of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.0 as usize]
    }

    /// Reverse postorder over reachable blocks, starting at entry.
    pub fn reverse_postorder(&self, entry: BlockId) -> Vec<BlockId> {
        let mut order = Vec::new();
        let mut state = vec![0u8; self.len()]; // 0 unvisited, 1 open, 2 done
                                               // Iterative DFS with an explicit stack of (block, child cursor).
        let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
        state[entry.0 as usize] = 1;
        while let Some(&mut (b, ref mut cursor)) = stack.last_mut() {
            let ss = self.succs(b);
            if *cursor < ss.len() {
                let child = ss[*cursor];
                *cursor += 1;
                if state[child.0 as usize] == 0 {
                    state[child.0 as usize] = 1;
                    stack.push((child, 0));
                }
            } else {
                state[b.0 as usize] = 2;
                order.push(b);
                stack.pop();
            }
        }
        order.reverse();
        order
    }

    /// Topological order of the acyclic CFG.
    ///
    /// # Panics
    ///
    /// Panics if the graph contains a cycle (lowering guarantees it does
    /// not — loops are unrolled once).
    pub fn topo_order(&self, entry: BlockId) -> Vec<BlockId> {
        let order = self.reverse_postorder(entry);
        // Verify acyclicity: every edge must go forward in the order.
        let mut pos = vec![usize::MAX; self.len()];
        for (i, &b) in order.iter().enumerate() {
            pos[b.0 as usize] = i;
        }
        for &b in &order {
            for &s in self.succs(b) {
                assert!(
                    pos[s.0 as usize] > pos[b.0 as usize],
                    "CFG contains a cycle through bb{}",
                    b.0
                );
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Function, Terminator, ValueId};
    use crate::types::Type;

    /// Diamond: 0 → {1, 2} → 3.
    fn diamond() -> Function {
        let mut f = Function::new("d");
        let c = f.new_value("c", Type::Bool);
        let b1 = f.new_block();
        let b2 = f.new_block();
        let b3 = f.new_block();
        f.set_term(
            f.entry(),
            Terminator::Branch {
                cond: c,
                then_bb: b1,
                else_bb: b2,
            },
        );
        f.set_term(b1, Terminator::Jump(b3));
        f.set_term(b2, Terminator::Jump(b3));
        f.set_term(b3, Terminator::Return(vec![]));
        f
    }

    #[test]
    fn preds_succs_of_diamond() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.succs(BlockId(0)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds(BlockId(3)), &[BlockId(1), BlockId(2)]);
        assert!(cfg.reachable.iter().all(|&r| r));
    }

    #[test]
    fn rpo_starts_at_entry_ends_at_exit() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let order = cfg.reverse_postorder(f.entry());
        assert_eq!(order.first(), Some(&BlockId(0)));
        assert_eq!(order.last(), Some(&BlockId(3)));
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn topo_order_respects_edges() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let order = cfg.topo_order(f.entry());
        let pos = |b: BlockId| order.iter().position(|&x| x == b).unwrap();
        assert!(pos(BlockId(0)) < pos(BlockId(1)));
        assert!(pos(BlockId(1)) < pos(BlockId(3)));
        assert!(pos(BlockId(2)) < pos(BlockId(3)));
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_detected() {
        let mut f = Function::new("loop");
        let b1 = f.new_block();
        f.set_term(f.entry(), Terminator::Jump(b1));
        f.set_term(b1, Terminator::Jump(f.entry()));
        let cfg = Cfg::new(&f);
        let _ = cfg.topo_order(f.entry());
    }

    #[test]
    fn unreachable_blocks_flagged() {
        let mut f = Function::new("u");
        let _dead = f.new_block();
        f.set_term(f.entry(), Terminator::Return(vec![ValueId(0); 0]));
        let cfg = Cfg::new(&f);
        assert!(cfg.reachable[0]);
        assert!(!cfg.reachable[1]);
    }
}
