//! The SSA intermediate representation.
//!
//! This IR is a direct encoding of the paper's formal language (§3):
//! assignments, φ-assignments, binary/unary operations, k-level loads and
//! stores, branches, calls, and (multi-value) returns. Functions are
//! control-flow graphs of basic blocks in SSA form; values are defined
//! exactly once, so the paper's `v@s` abbreviation — "the variable `v`
//! defined at statement `s`" — is simply a [`ValueId`].
//!
//! Multi-value calls and returns exist so that the §3.1.2 connector
//! transformation (Aux formal parameters / Aux return values, Fig. 3) can
//! be expressed in the IR itself: `{v0, R1, R2} ← call f(...)`.

use crate::types::Type;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a function within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Identifier of a basic block within a [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Identifier of an SSA value within a [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

/// Identifier of a global variable within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

/// Position of an instruction: block plus index within the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId {
    /// The containing block.
    pub block: BlockId,
    /// Index within the block's instruction list.
    pub index: u32,
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}:{}", self.block.0, self.index)
    }
}

/// Binary operators of the language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Equality (any matching sorts), yields bool.
    Eq,
    /// Disequality, yields bool.
    Ne,
    /// Less-than over ints, yields bool.
    Lt,
    /// Less-or-equal over ints, yields bool.
    Le,
    /// Logical and over bools.
    And,
    /// Logical or over bools.
    Or,
}

impl BinOp {
    /// `true` for operators producing a boolean.
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::And | BinOp::Or
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        f.write_str(s)
    }
}

/// Unary operators of the language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Integer negation.
    Neg,
    /// Boolean negation.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
        })
    }
}

/// Constant operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Const {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// The null pointer.
    Null,
}

/// An instruction (non-terminator statement of the paper's language).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// `dst ← c`.
    Const {
        /// Defined value.
        dst: ValueId,
        /// The constant.
        value: Const,
    },
    /// `dst ← src` (simple assignment).
    Copy {
        /// Defined value.
        dst: ValueId,
        /// Source value.
        src: ValueId,
    },
    /// `dst ← φ(v₁ from bb₁, v₂ from bb₂, …)`.
    Phi {
        /// Defined value.
        dst: ValueId,
        /// Incoming (predecessor block, value) pairs.
        incomings: Vec<(BlockId, ValueId)>,
    },
    /// `dst ← lhs op rhs`.
    Bin {
        /// Defined value.
        dst: ValueId,
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// `dst ← op operand`.
    Un {
        /// Defined value.
        dst: ValueId,
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: ValueId,
    },
    /// `dst ← *(ptr, k)` — load through `k` levels of indirection.
    Load {
        /// Defined value.
        dst: ValueId,
        /// Pointer operand.
        ptr: ValueId,
        /// Dereference depth `k ≥ 1`.
        depth: u32,
    },
    /// `*(ptr, k) ← src` — store through `k` levels of indirection.
    Store {
        /// Pointer operand.
        ptr: ValueId,
        /// Dereference depth `k ≥ 1`.
        depth: u32,
        /// Stored value.
        src: ValueId,
    },
    /// `dst ← malloc()` — allocates a fresh abstract memory object.
    Alloc {
        /// Defined value (the address).
        dst: ValueId,
    },
    /// `dst ← &global` — the address of a module-level global object.
    GlobalAddr {
        /// Defined value (the address).
        dst: ValueId,
        /// Referenced global.
        global: GlobalId,
    },
    /// `{dst₀, dst₁, …} ← call callee(args…)`.
    ///
    /// `dsts` may be empty (procedure call), a single receiver, or — after
    /// the Fig. 3 transformation — the original receiver followed by the
    /// Aux return receivers.
    Call {
        /// Return-value receivers.
        dsts: Vec<ValueId>,
        /// Target function name (resolved through [`Module::func_by_name`])
        /// or intrinsic name.
        callee: String,
        /// Actual arguments.
        args: Vec<ValueId>,
    },
}

impl Inst {
    /// The values defined by this instruction, in order.
    pub fn defs(&self) -> Vec<ValueId> {
        match self {
            Inst::Const { dst, .. }
            | Inst::Copy { dst, .. }
            | Inst::Phi { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Alloc { dst }
            | Inst::GlobalAddr { dst, .. } => vec![*dst],
            Inst::Store { .. } => vec![],
            Inst::Call { dsts, .. } => dsts.clone(),
        }
    }

    /// The values used by this instruction.
    pub fn uses(&self) -> Vec<ValueId> {
        match self {
            Inst::Const { .. } | Inst::Alloc { .. } | Inst::GlobalAddr { .. } => vec![],
            Inst::Copy { src, .. } => vec![*src],
            Inst::Phi { incomings, .. } => incomings.iter().map(|&(_, v)| v).collect(),
            Inst::Bin { lhs, rhs, .. } => vec![*lhs, *rhs],
            Inst::Un { operand, .. } => vec![*operand],
            Inst::Load { ptr, .. } => vec![*ptr],
            Inst::Store { ptr, src, .. } => vec![*ptr, *src],
            Inst::Call { args, .. } => args.clone(),
        }
    }
}

/// Block terminator.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch on a boolean value.
    Branch {
        /// Branch condition.
        cond: ValueId,
        /// Successor when the condition is true.
        then_bb: BlockId,
        /// Successor when the condition is false.
        else_bb: BlockId,
    },
    /// Function return; possibly multiple values after the Fig. 3
    /// transformation (`return {v0, R1, R2, …}`).
    Return(Vec<ValueId>),
    /// Placeholder used while a block is under construction.
    #[default]
    Unreachable,
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Return(_) | Terminator::Unreachable => vec![],
        }
    }

    /// Values used by this terminator.
    pub fn uses(&self) -> Vec<ValueId> {
        match self {
            Terminator::Branch { cond, .. } => vec![*cond],
            Terminator::Return(vs) => vs.clone(),
            _ => vec![],
        }
    }
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Instructions in execution order (φ-instructions first).
    pub insts: Vec<Inst>,
    /// The terminator. [`Terminator::Unreachable`] while building.
    pub term: Terminator,
}

/// Metadata of one SSA value.
#[derive(Debug, Clone)]
pub struct ValueInfo {
    /// Human-readable name hint (source variable, or `tmp`).
    pub name: String,
    /// Static type.
    pub ty: Type,
    /// Defining site: `None` for function parameters, otherwise the
    /// instruction that defines it.
    pub def: Option<InstId>,
}

/// A function: typed parameters, return types, and a CFG in SSA form.
#[derive(Debug, Clone)]
pub struct Function {
    /// Function name, unique within the module.
    pub name: String,
    /// Parameter values (defined at entry). After the Fig. 3
    /// transformation the tail of this list holds Aux formal parameters
    /// (see `aux_param_count`).
    pub params: Vec<ValueId>,
    /// Return types; index 0 is the original return (if any), the rest are
    /// Aux return values.
    pub ret_tys: Vec<Type>,
    /// Number of trailing `params` entries that are Aux formal parameters.
    pub aux_param_count: usize,
    /// Basic blocks; `BlockId(0)` is the entry.
    pub blocks: Vec<Block>,
    /// Value table.
    pub values: Vec<ValueInfo>,
}

impl Function {
    /// Creates an empty function with an entry block.
    pub fn new(name: impl Into<String>) -> Self {
        Function {
            name: name.into(),
            params: Vec::new(),
            ret_tys: Vec::new(),
            aux_param_count: 0,
            blocks: vec![Block::default()],
            values: Vec::new(),
        }
    }

    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Allocates a fresh value.
    pub fn new_value(&mut self, name: impl Into<String>, ty: Type) -> ValueId {
        let id = ValueId(u32::try_from(self.values.len()).expect("too many values"));
        self.values.push(ValueInfo {
            name: name.into(),
            ty,
            def: None,
        });
        id
    }

    /// Allocates a fresh block.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(u32::try_from(self.blocks.len()).expect("too many blocks"));
        self.blocks.push(Block::default());
        id
    }

    /// Appends an instruction to `block`, recording def sites.
    pub fn push_inst(&mut self, block: BlockId, inst: Inst) -> InstId {
        let idx = self.blocks[block.0 as usize].insts.len();
        let id = InstId {
            block,
            index: u32::try_from(idx).expect("too many instructions"),
        };
        for d in inst.defs() {
            self.values[d.0 as usize].def = Some(id);
        }
        self.blocks[block.0 as usize].insts.push(inst);
        id
    }

    /// Sets the terminator of `block`.
    pub fn set_term(&mut self, block: BlockId, term: Terminator) {
        self.blocks[block.0 as usize].term = term;
    }

    /// Borrow a block.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.0 as usize]
    }

    /// Instruction at `id`.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.blocks[id.block.0 as usize].insts[id.index as usize]
    }

    /// Value metadata.
    pub fn value(&self, v: ValueId) -> &ValueInfo {
        &self.values[v.0 as usize]
    }

    /// Type of a value.
    pub fn ty(&self, v: ValueId) -> &Type {
        &self.values[v.0 as usize].ty
    }

    /// Iterates over `(InstId, &Inst)` of the whole function.
    pub fn iter_insts(&self) -> impl Iterator<Item = (InstId, &Inst)> + '_ {
        self.blocks.iter().enumerate().flat_map(|(b, blk)| {
            blk.insts.iter().enumerate().map(move |(i, inst)| {
                (
                    InstId {
                        block: BlockId(b as u32),
                        index: i as u32,
                    },
                    inst,
                )
            })
        })
    }

    /// Number of instructions across all blocks.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// The unique return terminator's block, if the function returns.
    pub fn return_block(&self) -> Option<BlockId> {
        self.blocks
            .iter()
            .position(|b| matches!(b.term, Terminator::Return(_)))
            .map(|i| BlockId(i as u32))
    }

    /// Returned values at the unique return statement.
    pub fn return_values(&self) -> &[ValueId] {
        match self.return_block() {
            Some(b) => match &self.block(b).term {
                Terminator::Return(vs) => vs,
                _ => unreachable!(),
            },
            None => &[],
        }
    }
}

/// A module-level global variable (an abstract memory object with a name).
#[derive(Debug, Clone)]
pub struct Global {
    /// Global name.
    pub name: String,
    /// Type of the *content* of the global cell.
    pub ty: Type,
}

/// A whole program: functions plus globals.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// All functions.
    pub funcs: Vec<Function>,
    /// All globals.
    pub globals: Vec<Global>,
    name_index: HashMap<String, FuncId>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a function, indexing it by name.
    ///
    /// # Panics
    ///
    /// Panics if a function with the same name exists.
    pub fn add_func(&mut self, f: Function) -> FuncId {
        let id = FuncId(u32::try_from(self.funcs.len()).expect("too many functions"));
        let prev = self.name_index.insert(f.name.clone(), id);
        assert!(prev.is_none(), "duplicate function {}", f.name);
        self.funcs.push(f);
        id
    }

    /// Adds a global variable.
    pub fn add_global(&mut self, name: impl Into<String>, ty: Type) -> GlobalId {
        let id = GlobalId(u32::try_from(self.globals.len()).expect("too many globals"));
        self.globals.push(Global {
            name: name.into(),
            ty,
        });
        id
    }

    /// Looks up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.name_index.get(name).copied()
    }

    /// Borrow a function.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Mutably borrow a function.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.0 as usize]
    }

    /// Iterates over `(FuncId, &Function)`.
    pub fn iter_funcs(&self) -> impl Iterator<Item = (FuncId, &Function)> + '_ {
        self.funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Total instruction count (a proxy for program size).
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(Function::inst_count).sum()
    }
}

/// Names treated as intrinsics rather than user functions.
pub mod intrinsics {
    /// Releases the memory its pointer argument refers to.
    pub const FREE: &str = "free";
    /// Benign output routine (dereferences nothing by itself).
    pub const PRINT: &str = "print";
    /// Unknown boolean (models unmodelled conditions).
    pub const NONDET_BOOL: &str = "nondet_bool";
    /// Unknown integer.
    pub const NONDET_INT: &str = "nondet_int";
    /// Taint source: user input byte (path-traversal checker).
    pub const FGETC: &str = "fgetc";
    /// Taint source: network receive (path-traversal checker).
    pub const RECV: &str = "recv";
    /// Taint source: secret data (data-transmission checker).
    pub const GETPASS: &str = "getpass";
    /// Taint sink: file open (path-traversal checker).
    pub const FOPEN: &str = "fopen";
    /// Taint sink: network send (data-transmission checker).
    pub const SENDTO: &str = "sendto";

    /// Returns `true` if `name` is any intrinsic.
    pub fn is_intrinsic(name: &str) -> bool {
        matches!(
            name,
            FREE | PRINT | NONDET_BOOL | NONDET_INT | FGETC | RECV | GETPASS | FOPEN | SENDTO
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_function() -> Function {
        // fn id(a: int) -> int { return a; }
        let mut f = Function::new("id");
        let a = f.new_value("a", Type::Int);
        f.params.push(a);
        f.ret_tys.push(Type::Int);
        f.set_term(f.entry(), Terminator::Return(vec![a]));
        f
    }

    #[test]
    fn defs_and_uses() {
        let mut f = Function::new("t");
        let x = f.new_value("x", Type::Int);
        let y = f.new_value("y", Type::Int);
        let inst = Inst::Copy { dst: y, src: x };
        assert_eq!(inst.defs(), vec![y]);
        assert_eq!(inst.uses(), vec![x]);
        let store = Inst::Store {
            ptr: x,
            depth: 1,
            src: y,
        };
        assert!(store.defs().is_empty());
        assert_eq!(store.uses(), vec![x, y]);
    }

    #[test]
    fn def_sites_recorded() {
        let mut f = Function::new("t");
        let x = f.new_value("x", Type::Int);
        let id = f.push_inst(
            f.entry(),
            Inst::Const {
                dst: x,
                value: Const::Int(3),
            },
        );
        assert_eq!(f.value(x).def, Some(id));
    }

    #[test]
    fn module_name_lookup() {
        let mut m = Module::new();
        let id = m.add_func(tiny_function());
        assert_eq!(m.func_by_name("id"), Some(id));
        assert_eq!(m.func_by_name("missing"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate function")]
    fn duplicate_function_panics() {
        let mut m = Module::new();
        m.add_func(tiny_function());
        m.add_func(tiny_function());
    }

    #[test]
    fn return_values_found() {
        let f = tiny_function();
        assert_eq!(f.return_values().len(), 1);
        assert_eq!(f.return_block(), Some(BlockId(0)));
    }

    #[test]
    fn terminator_successors() {
        let mut f = Function::new("t");
        let c = f.new_value("c", Type::Bool);
        let b1 = f.new_block();
        let b2 = f.new_block();
        let t = Terminator::Branch {
            cond: c,
            then_bb: b1,
            else_bb: b2,
        };
        assert_eq!(t.successors(), vec![b1, b2]);
        assert_eq!(t.uses(), vec![c]);
        assert!(Terminator::Return(vec![]).successors().is_empty());
    }

    #[test]
    fn intrinsics_recognised() {
        assert!(intrinsics::is_intrinsic("free"));
        assert!(intrinsics::is_intrinsic("fgetc"));
        assert!(!intrinsics::is_intrinsic("main"));
    }
}
