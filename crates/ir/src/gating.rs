//! Gating conditions for φ-assignments (Tu–Padua style).
//!
//! For each φ-assignment `v ← φ(v₁, v₂, …)` the SEG needs the condition
//! under which each `vᵢ` is selected — the paper's "gated function", which
//! labels the conditional data-dependence edges of the SEG (Example 3.4:
//! the edge `(b, Y)` is labelled `m = ¬θ₃ ∧ θ₄`).
//!
//! On the acyclic CFGs this system produces (loops unrolled once), the
//! gate of the incoming edge from predecessor `P` into join block `B` is
//! the condition of reaching `P` from `idom(B)` conjoined with the edge
//! condition of `P → B`, computed by a forward pass in topological order
//! with disjunction at merges.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::ir::{BlockId, Function, Terminator, ValueId};
use std::collections::HashMap;

/// A symbolic gating condition over branch-condition values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Gate {
    /// Always taken.
    True,
    /// The branch value with a polarity (`Lit(c, false)` means `¬c`).
    Lit(ValueId, bool),
    /// Conjunction.
    And(Vec<Gate>),
    /// Disjunction.
    Or(Vec<Gate>),
}

impl Gate {
    fn and(a: Gate, b: Gate) -> Gate {
        match (a, b) {
            (Gate::True, x) | (x, Gate::True) => x,
            (Gate::And(mut xs), Gate::And(ys)) => {
                xs.extend(ys);
                Gate::And(xs)
            }
            (Gate::And(mut xs), y) => {
                xs.push(y);
                Gate::And(xs)
            }
            (x, Gate::And(mut ys)) => {
                ys.insert(0, x);
                Gate::And(ys)
            }
            (x, y) => Gate::And(vec![x, y]),
        }
    }

    fn or(a: Option<Gate>, b: Gate) -> Gate {
        match a {
            None => b,
            Some(Gate::True) => Gate::True,
            Some(x) if x == b => x,
            Some(Gate::Or(mut xs)) => {
                xs.push(b);
                Gate::Or(xs)
            }
            Some(x) => Gate::Or(vec![x, b]),
        }
    }
}

/// Computes gating conditions for the φ-incomings of a function.
#[derive(Debug)]
pub struct Gating {
    /// `(join block, predecessor) → gate`.
    gates: HashMap<(BlockId, BlockId), Gate>,
}

impl Gating {
    /// Computes gates for every join block of `f` (blocks with ≥ 2
    /// predecessors).
    pub fn new(f: &Function, cfg: &Cfg, dom: &DomTree) -> Self {
        let mut gates = HashMap::new();
        let topo = cfg.topo_order(f.entry());
        let mut topo_pos = vec![usize::MAX; cfg.len()];
        for (i, &b) in topo.iter().enumerate() {
            topo_pos[b.0 as usize] = i;
        }
        for &b in &topo {
            if cfg.preds(b).len() < 2 {
                continue;
            }
            let Some(d) = dom.idom(b) else { continue };
            // Forward reachability conditions from d within [d, b].
            let mut reach: HashMap<BlockId, Gate> = HashMap::new();
            reach.insert(d, Gate::True);
            let lo = topo_pos[d.0 as usize];
            let hi = topo_pos[b.0 as usize];
            for &x in &topo[lo..hi] {
                let Some(gx) = reach.get(&x).cloned() else {
                    continue;
                };
                match &f.block(x).term {
                    Terminator::Jump(s) if topo_pos[s.0 as usize] <= hi => {
                        let prev = reach.remove(s);
                        reach.insert(*s, Gate::or(prev, gx));
                    }
                    Terminator::Branch {
                        cond,
                        then_bb,
                        else_bb,
                    } => {
                        for (s, pol) in [(then_bb, true), (else_bb, false)] {
                            if topo_pos[s.0 as usize] <= hi {
                                let edge = Gate::and(gx.clone(), Gate::Lit(*cond, pol));
                                let prev = reach.remove(s);
                                reach.insert(*s, Gate::or(prev, edge));
                            }
                        }
                    }
                    _ => {}
                }
            }
            for &p in cfg.preds(b) {
                let base = reach.get(&p).cloned().unwrap_or(Gate::True);
                let edge_cond = match &f.block(p).term {
                    Terminator::Branch {
                        cond,
                        then_bb,
                        else_bb,
                    } => {
                        if *then_bb == b && *else_bb == b {
                            Gate::True
                        } else if *then_bb == b {
                            Gate::Lit(*cond, true)
                        } else {
                            Gate::Lit(*cond, false)
                        }
                    }
                    _ => Gate::True,
                };
                gates.insert((b, p), Gate::and(base, edge_cond));
            }
        }
        Gating { gates }
    }

    /// The gate of the φ-incoming edge from `pred` into join `block`.
    /// `Gate::True` when the edge is unconditional (single-pred blocks).
    pub fn gate(&self, block: BlockId, pred: BlockId) -> Gate {
        self.gates
            .get(&(block, pred))
            .cloned()
            .unwrap_or(Gate::True)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::parser::parse;

    fn build(src: &str) -> (Function, Cfg, DomTree) {
        let m = lower(&parse(src).unwrap()).unwrap();
        let f = m.funcs.into_iter().next().unwrap();
        let cfg = Cfg::new(&f);
        let dom = DomTree::dominators(&f, &cfg);
        (f, cfg, dom)
    }

    /// Finds the φ for variable `name` and returns its gated incomings.
    fn phi_gates(f: &Function, cfg: &Cfg, dom: &DomTree, name: &str) -> Vec<(ValueId, Gate)> {
        let gating = Gating::new(f, cfg, dom);
        for (id, inst) in f.iter_insts() {
            if let crate::ir::Inst::Phi { dst, incomings } = inst {
                if f.value(*dst).name == name {
                    return incomings
                        .iter()
                        .map(|&(p, v)| (v, gating.gate(id.block, p)))
                        .collect();
                }
            }
        }
        panic!("no φ for {name}");
    }

    #[test]
    fn simple_diamond_gates_are_literals() {
        let (f, cfg, dom) = build(
            "fn f(c: bool) -> int {
                let x: int = 0;
                if (c) { x = 1; } else { x = 2; }
                return x;
            }",
        );
        let gates = phi_gates(&f, &cfg, &dom, "x");
        assert_eq!(gates.len(), 2);
        let pols: Vec<bool> = gates
            .iter()
            .map(|(_, g)| match g {
                Gate::Lit(_, p) => *p,
                other => panic!("expected literal gate, got {other:?}"),
            })
            .collect();
        assert!(pols.contains(&true) && pols.contains(&false));
    }

    #[test]
    fn nested_branch_gates_conjoin() {
        // The paper's bar-like shape: x = c on θ3; x = b on ¬θ3 ∧ θ4;
        // otherwise unchanged.
        let (f, cfg, dom) = build(
            "fn f(t3: bool, t4: bool) -> int {
                let x: int = 0;
                if (t3) { x = 1; }
                else { if (t4) { x = 2; } }
                return x;
            }",
        );
        // The outer φ merges the then-arm value with the inner join value.
        let gates = phi_gates(&f, &cfg, &dom, "x");
        assert_eq!(gates.len(), 2);
        // At least one gate must be a bare literal on t3.
        assert!(gates.iter().any(|(_, g)| matches!(g, Gate::Lit(_, _))));
    }

    #[test]
    fn single_pred_gate_defaults_to_true() {
        let (f, cfg, dom) = build("fn f() { return; }");
        let gating = Gating::new(&f, &cfg, &dom);
        assert_eq!(
            gating.gate(f.entry(), f.entry()),
            Gate::True,
            "missing edges are unconditional"
        );
    }

    #[test]
    fn gate_and_flattens() {
        let g = Gate::and(
            Gate::and(Gate::Lit(ValueId(0), true), Gate::Lit(ValueId(1), false)),
            Gate::Lit(ValueId(2), true),
        );
        match g {
            Gate::And(xs) => assert_eq!(xs.len(), 3),
            other => panic!("expected flattened And, got {other:?}"),
        }
    }

    #[test]
    fn gate_or_merges_duplicates() {
        let a = Gate::Lit(ValueId(0), true);
        assert_eq!(Gate::or(Some(a.clone()), a.clone()), a);
    }
}
