//! Cleanup optimisations over the SSA IR.
//!
//! The front end is deliberately naive (every `let` emits a `Copy`, every
//! literal a fresh `Const`), which keeps lowering auditable but inflates
//! the value graph the analyses walk. These passes shrink it without
//! changing semantics:
//!
//! * [`propagate_copies`] — rewrites uses of `Copy` destinations to their
//!   sources (pure SSA renaming; copies become dead);
//! * [`fold_constants`] — evaluates `Bin`/`Un` over constant operands
//!   into `Const`s and collapses branches on constant conditions into
//!   jumps;
//! * [`eliminate_dead_code`] — removes side-effect-free instructions
//!   whose results are never used (calls, stores and allocations are
//!   conservatively kept: allocations are leak-checker sources);
//! * [`optimize_module`] — runs the three to a fixpoint.
//!
//! Analyses run unchanged on optimised modules; the SEG just has fewer
//! trivial vertices.

use crate::ir::{BinOp, Const, Function, Inst, Module, Terminator, UnOp, ValueId};
use std::collections::{HashMap, HashSet};

/// Statistics of one optimisation run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OptStats {
    /// Uses rewritten by copy propagation.
    pub copies_propagated: usize,
    /// Instructions folded to constants.
    pub constants_folded: usize,
    /// Branches collapsed to jumps.
    pub branches_collapsed: usize,
    /// Dead instructions removed.
    pub dead_removed: usize,
}

impl OptStats {
    /// `true` if nothing changed.
    pub fn is_noop(&self) -> bool {
        *self == OptStats::default()
    }

    fn merge(&mut self, other: OptStats) {
        self.copies_propagated += other.copies_propagated;
        self.constants_folded += other.constants_folded;
        self.branches_collapsed += other.branches_collapsed;
        self.dead_removed += other.dead_removed;
    }
}

/// Runs all passes over every function until nothing changes.
pub fn optimize_module(module: &mut Module) -> OptStats {
    let mut total = OptStats::default();
    for f in &mut module.funcs {
        loop {
            let mut round = OptStats::default();
            round.merge(propagate_copies(f));
            round.merge(fold_constants(f));
            round.merge(eliminate_dead_code(f));
            if round.is_noop() {
                break;
            }
            total.merge(round);
        }
    }
    total
}

/// Replaces every use of a `Copy` destination with the copy's source
/// (following chains), leaving the copies dead.
pub fn propagate_copies(f: &mut Function) -> OptStats {
    let mut stats = OptStats::default();
    // Resolve copy chains to their roots.
    let mut alias: HashMap<ValueId, ValueId> = HashMap::new();
    for (_, inst) in f.iter_insts() {
        if let Inst::Copy { dst, src } = inst {
            alias.insert(*dst, *src);
        }
    }
    let resolve = |alias: &HashMap<ValueId, ValueId>, mut v: ValueId| -> ValueId {
        let mut hops = 0;
        while let Some(&next) = alias.get(&v) {
            v = next;
            hops += 1;
            if hops > alias.len() {
                break; // cycle guard (cannot happen in valid SSA)
            }
        }
        v
    };
    let rewrite = |v: &mut ValueId, stats: &mut OptStats| {
        let r = resolve(&alias, *v);
        if r != *v {
            *v = r;
            stats.copies_propagated += 1;
        }
    };
    for blk in &mut f.blocks {
        for inst in &mut blk.insts {
            match inst {
                Inst::Copy { src, .. } => rewrite(src, &mut stats),
                Inst::Phi { incomings, .. } => {
                    for (_, v) in incomings {
                        rewrite(v, &mut stats);
                    }
                }
                Inst::Bin { lhs, rhs, .. } => {
                    rewrite(lhs, &mut stats);
                    rewrite(rhs, &mut stats);
                }
                Inst::Un { operand, .. } => rewrite(operand, &mut stats),
                Inst::Load { ptr, .. } => rewrite(ptr, &mut stats),
                Inst::Store { ptr, src, .. } => {
                    rewrite(ptr, &mut stats);
                    rewrite(src, &mut stats);
                }
                Inst::Call { args, .. } => {
                    for a in args {
                        rewrite(a, &mut stats);
                    }
                }
                _ => {}
            }
        }
        match &mut blk.term {
            Terminator::Branch { cond, .. } => rewrite(cond, &mut stats),
            Terminator::Return(vals) => {
                for v in vals {
                    rewrite(v, &mut stats);
                }
            }
            _ => {}
        }
    }
    stats
}

/// Evaluates operations over constants and collapses constant branches.
pub fn fold_constants(f: &mut Function) -> OptStats {
    let mut stats = OptStats::default();
    // Collect constants.
    let mut consts: HashMap<ValueId, Const> = HashMap::new();
    for (_, inst) in f.iter_insts() {
        if let Inst::Const { dst, value } = inst {
            consts.insert(*dst, *value);
        }
    }
    for blk in &mut f.blocks {
        for inst in &mut blk.insts {
            let folded: Option<(ValueId, Const)> = match inst {
                Inst::Bin { dst, op, lhs, rhs } => match (consts.get(lhs), consts.get(rhs)) {
                    (Some(&Const::Int(a)), Some(&Const::Int(b))) => {
                        let v = match op {
                            BinOp::Add => Some(Const::Int(a.wrapping_add(b))),
                            BinOp::Sub => Some(Const::Int(a.wrapping_sub(b))),
                            BinOp::Mul => Some(Const::Int(a.wrapping_mul(b))),
                            BinOp::Eq => Some(Const::Bool(a == b)),
                            BinOp::Ne => Some(Const::Bool(a != b)),
                            BinOp::Lt => Some(Const::Bool(a < b)),
                            BinOp::Le => Some(Const::Bool(a <= b)),
                            _ => None,
                        };
                        v.map(|v| (*dst, v))
                    }
                    (Some(&Const::Bool(a)), Some(&Const::Bool(b))) => {
                        let v = match op {
                            BinOp::And => Some(Const::Bool(a && b)),
                            BinOp::Or => Some(Const::Bool(a || b)),
                            BinOp::Eq => Some(Const::Bool(a == b)),
                            BinOp::Ne => Some(Const::Bool(a != b)),
                            _ => None,
                        };
                        v.map(|v| (*dst, v))
                    }
                    _ => None,
                },
                Inst::Un { dst, op, operand } => match (op, consts.get(operand)) {
                    (UnOp::Neg, Some(&Const::Int(a))) => Some((*dst, Const::Int(a.wrapping_neg()))),
                    (UnOp::Not, Some(&Const::Bool(a))) => Some((*dst, Const::Bool(!a))),
                    _ => None,
                },
                _ => None,
            };
            if let Some((dst, value)) = folded {
                *inst = Inst::Const { dst, value };
                consts.insert(dst, value);
                stats.constants_folded += 1;
            }
        }
        // Constant branches become jumps (the dead arm stays as an
        // unreachable block; φs in the live target keep their incoming
        // from this block).
        if let Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } = blk.term
        {
            if let Some(&Const::Bool(b)) = consts.get(&cond) {
                blk.term = Terminator::Jump(if b { then_bb } else { else_bb });
                stats.branches_collapsed += 1;
            }
        }
    }
    if stats.branches_collapsed > 0 {
        prune_dead_phi_incomings(f);
    }
    stats
}

/// After branch collapsing, φ incomings from no-longer-predecessor blocks
/// must be dropped (the verifier checks this invariant).
fn prune_dead_phi_incomings(f: &mut Function) {
    let cfg = crate::cfg::Cfg::new(f);
    for bi in 0..f.blocks.len() {
        // Only *reachable* predecessors count: a collapsed branch leaves
        // the dead arm in place (with its jump to the join), but control
        // can never arrive through it.
        let preds: HashSet<_> = cfg
            .preds(crate::ir::BlockId(bi as u32))
            .iter()
            .copied()
            .filter(|p| cfg.reachable[p.0 as usize])
            .collect();
        for inst in &mut f.blocks[bi].insts {
            if let Inst::Phi { incomings, .. } = inst {
                incomings.retain(|(p, _)| preds.contains(p));
            }
        }
    }
}

/// Removes instructions with unused results and no side effects.
pub fn eliminate_dead_code(f: &mut Function) -> OptStats {
    let mut stats = OptStats::default();
    let mut used: HashSet<ValueId> = HashSet::new();
    for (_, inst) in f.iter_insts() {
        used.extend(inst.uses());
    }
    for blk in &f.blocks {
        used.extend(blk.term.uses());
    }
    for blk in &mut f.blocks {
        let before = blk.insts.len();
        blk.insts.retain(|inst| match inst {
            // Side effects (or checker-relevant events): always keep.
            Inst::Store { .. } | Inst::Call { .. } | Inst::Alloc { .. } => true,
            // Loads may trap (null deref) — they are checker sinks; keep.
            Inst::Load { .. } => true,
            other => other.defs().iter().any(|d| used.contains(d)),
        });
        stats.dead_removed += before - blk.insts.len();
    }
    if stats.dead_removed > 0 {
        transform_support::rebuild_def_sites(f);
    }
    stats
}

/// Shared def-site rebuilding (also used by the connector transformation
/// in `pinpoint-pta`).
pub mod transform_support {
    use crate::ir::{Function, InstId, ValueId};

    /// Recomputes every value's defining site after block surgery.
    pub fn rebuild_def_sites(f: &mut Function) {
        for v in &mut f.values {
            v.def = None;
        }
        let ids: Vec<(InstId, Vec<ValueId>)> =
            f.iter_insts().map(|(id, i)| (id, i.defs())).collect();
        for (id, defs) in ids {
            for d in defs {
                f.values[d.0 as usize].def = Some(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::parser::parse;
    use crate::verify::verify_module;

    fn optimized(src: &str) -> (Module, OptStats) {
        let mut m = lower(&parse(src).unwrap()).unwrap();
        let stats = optimize_module(&mut m);
        let errs = verify_module(&m);
        assert!(errs.is_empty(), "optimised module verifies: {errs:?}");
        (m, stats)
    }

    #[test]
    fn copy_chains_collapse() {
        let (m, stats) = optimized(
            "fn f(a: int) -> int {
                let b: int = a;
                let c: int = b;
                let d: int = c;
                return d;
            }",
        );
        assert!(stats.copies_propagated > 0);
        assert!(stats.dead_removed >= 3, "the copies die: {stats:?}");
        let f = &m.funcs[0];
        // Return references the parameter directly.
        assert_eq!(f.return_values()[0], f.params[0]);
    }

    #[test]
    fn constants_fold_through_arithmetic() {
        let (m, stats) = optimized("fn f() -> int { return (2 + 3) * 4; }");
        assert!(stats.constants_folded >= 2);
        let f = &m.funcs[0];
        let ret = f.return_values()[0];
        let def = f.value(ret).def.unwrap();
        assert!(
            matches!(
                f.inst(def),
                Inst::Const {
                    value: Const::Int(20),
                    ..
                }
            ),
            "return folds to 20"
        );
    }

    #[test]
    fn constant_branch_collapses() {
        let (m, stats) = optimized(
            "fn f() -> int {
                let x: int = 0;
                if (true) { x = 1; } else { x = 2; }
                return x;
            }",
        );
        assert_eq!(stats.branches_collapsed, 1);
        // The φ lost its dead incoming and the verifier is happy.
        let f = &m.funcs[0];
        for (_, inst) in f.iter_insts() {
            if let Inst::Phi { incomings, .. } = inst {
                assert_eq!(incomings.len(), 1);
            }
        }
        let _ = m;
    }

    #[test]
    fn side_effects_survive_dce() {
        let (m, _stats) = optimized(
            "fn f(p: int*) {
                let unused: int = 1 + 2;
                *p = 3;
                free(p);
                return;
            }",
        );
        let f = &m.funcs[0];
        let kinds: Vec<&Inst> = f.iter_insts().map(|(_, i)| i).collect();
        assert!(kinds.iter().any(|i| matches!(i, Inst::Store { .. })));
        assert!(kinds.iter().any(|i| matches!(i, Inst::Call { .. })));
        assert!(
            !kinds
                .iter()
                .any(|i| matches!(i, Inst::Bin { op: BinOp::Add, .. })),
            "the unused addition dies"
        );
    }

    #[test]
    fn loads_survive_dce() {
        // A load's result may be unused but the deref is checker-relevant.
        let (m, _stats) = optimized(
            "fn f(p: int*) {
                let x: int = *p;
                return;
            }",
        );
        let f = &m.funcs[0];
        assert!(f.iter_insts().any(|(_, i)| matches!(i, Inst::Load { .. })));
    }

    #[test]
    fn optimizer_reaches_fixpoint() {
        let (mut m, _first) = optimized(
            "fn f(a: int) -> int {
                let b: int = a;
                let c: int = b + 0;
                return c;
            }",
        );
        let second = optimize_module(&mut m);
        assert!(second.is_noop(), "idempotent: {second:?}");
    }

    #[test]
    fn analysis_agrees_after_optimization() {
        // The UAF verdict must be identical on the optimised module.
        let src = "fn main(c: bool) {
            let p: int* = malloc();
            let alias: int* = p;
            if (c) { free(alias); }
            if (c) { let x: int = *p; print(x); }
            return;
        }";
        let m1 = lower(&parse(src).unwrap()).unwrap();
        let mut m2 = lower(&parse(src).unwrap()).unwrap();
        optimize_module(&mut m2);
        // Both modules must contain the same free/load/store skeleton.
        let count = |m: &Module, pred: fn(&Inst) -> bool| {
            m.funcs[0].iter_insts().filter(|(_, i)| pred(i)).count()
        };
        for (m, label) in [(&m1, "raw"), (&m2, "optimised")] {
            assert_eq!(
                count(m, |i| matches!(i, Inst::Call { .. })),
                2,
                "{label}: free + print"
            );
            assert_eq!(count(m, |i| matches!(i, Inst::Load { .. })), 1, "{label}");
        }
    }
}
