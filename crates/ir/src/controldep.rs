//! Control dependence (Ferrante et al.), feeding the SEG's `Gc` subgraph.
//!
//! A block `B` is control dependent on branch edge `(A, polarity)` when
//! taking that edge makes `B`'s execution inevitable while the other edge
//! can avoid `B`. We compute this with the standard post-dominance
//! criterion: for each CFG edge `A → B` where `B` does not post-dominate
//! `A`, every block on the post-dominator-tree path from `B` up to (but
//! not including) `ipdom(A)` is control dependent on the edge.
//!
//! The paper's SEG stores, per statement, the *immediate* control
//! dependence as a branch-condition variable plus polarity (Example 3.5);
//! nested dependences are recovered transitively by following the `Gc`
//! edges of the controlling branch's condition. [`ControlDeps::deps`]
//! returns exactly that immediate set.

use crate::cfg::Cfg;
use crate::dom::PostDomTree;
use crate::ir::{BlockId, Function, Terminator, ValueId};

/// One control dependence: the branch condition value and the polarity of
/// the edge on which the dependent block executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ControlDep {
    /// The branch-condition SSA value.
    pub cond: ValueId,
    /// `true` when the block runs on the then-edge.
    pub polarity: bool,
}

/// Control dependences of every block of a function.
#[derive(Debug, Clone)]
pub struct ControlDeps {
    deps: Vec<Vec<ControlDep>>,
}

impl ControlDeps {
    /// Computes control dependences for `f`.
    pub fn new(f: &Function, cfg: &Cfg, pdt: &PostDomTree) -> Self {
        let n = cfg.len();
        let mut deps: Vec<Vec<ControlDep>> = vec![Vec::new(); n];
        for (a_idx, blk) in f.blocks.iter().enumerate() {
            let a = BlockId(a_idx as u32);
            if !cfg.reachable[a_idx] {
                continue;
            }
            let Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } = blk.term
            else {
                continue;
            };
            for (succ, polarity) in [(then_bb, true), (else_bb, false)] {
                if pdt.post_dominates(succ, a) {
                    continue; // edge does not decide anything
                }
                // Walk B up the post-dominator tree to ipdom(A).
                let stop = pdt.ipdom(a);
                let mut cur = Some(succ);
                while let Some(b) = cur {
                    if Some(b) == stop {
                        break;
                    }
                    let dep = ControlDep { cond, polarity };
                    if !deps[b.0 as usize].contains(&dep) {
                        deps[b.0 as usize].push(dep);
                    }
                    let next = pdt.ipdom(b);
                    if next == Some(b) {
                        break;
                    }
                    cur = next;
                }
            }
        }
        ControlDeps { deps }
    }

    /// Immediate control dependences of `b`.
    pub fn deps(&self, b: BlockId) -> &[ControlDep] {
        &self.deps[b.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Function, Terminator};
    use crate::types::Type;

    /// 0 -(c)→ {1, 2}; both → 3 (exit).
    fn diamond() -> (Function, ValueId) {
        let mut f = Function::new("d");
        let c = f.new_value("c", Type::Bool);
        let b1 = f.new_block();
        let b2 = f.new_block();
        let b3 = f.new_block();
        f.set_term(
            f.entry(),
            Terminator::Branch {
                cond: c,
                then_bb: b1,
                else_bb: b2,
            },
        );
        f.set_term(b1, Terminator::Jump(b3));
        f.set_term(b2, Terminator::Jump(b3));
        f.set_term(b3, Terminator::Return(vec![]));
        (f, c)
    }

    #[test]
    fn diamond_arms_depend_on_branch() {
        let (f, c) = diamond();
        let cfg = Cfg::new(&f);
        let pdt = PostDomTree::new(&f, &cfg);
        let cd = ControlDeps::new(&f, &cfg, &pdt);
        assert_eq!(
            cd.deps(BlockId(1)),
            &[ControlDep {
                cond: c,
                polarity: true
            }]
        );
        assert_eq!(
            cd.deps(BlockId(2)),
            &[ControlDep {
                cond: c,
                polarity: false
            }]
        );
        assert!(cd.deps(BlockId(0)).is_empty());
        assert!(cd.deps(BlockId(3)).is_empty());
    }

    #[test]
    fn nested_branch_immediate_dependence_only() {
        // 0 -(c)→ {1, 4}; 1 -(d)→ {2, 3}; 2 → 3; 3 → 5; 4 → 5; 5 ret.
        let mut f = Function::new("n");
        let c = f.new_value("c", Type::Bool);
        let d = f.new_value("d", Type::Bool);
        let b1 = f.new_block();
        let b2 = f.new_block();
        let b3 = f.new_block();
        let b4 = f.new_block();
        let b5 = f.new_block();
        f.set_term(
            f.entry(),
            Terminator::Branch {
                cond: c,
                then_bb: b1,
                else_bb: b4,
            },
        );
        f.set_term(
            b1,
            Terminator::Branch {
                cond: d,
                then_bb: b2,
                else_bb: b3,
            },
        );
        f.set_term(b2, Terminator::Jump(b3));
        f.set_term(b3, Terminator::Jump(b5));
        f.set_term(b4, Terminator::Jump(b5));
        f.set_term(b5, Terminator::Return(vec![]));
        let cfg = Cfg::new(&f);
        let pdt = PostDomTree::new(&f, &cfg);
        let cd = ControlDeps::new(&f, &cfg, &pdt);
        // b2 depends only on d (its dependence on c is transitive through
        // the statement defining d, exactly as in the paper's Example 3.5).
        assert_eq!(
            cd.deps(b2),
            &[ControlDep {
                cond: d,
                polarity: true
            }]
        );
        // b1 and b3 depend on c=true: b3 joins the inner diamond but is
        // still inside the outer then-arm.
        assert_eq!(
            cd.deps(b1),
            &[ControlDep {
                cond: c,
                polarity: true
            }]
        );
        assert_eq!(
            cd.deps(b3),
            &[ControlDep {
                cond: c,
                polarity: true
            }]
        );
        assert_eq!(
            cd.deps(b4),
            &[ControlDep {
                cond: c,
                polarity: false
            }]
        );
    }

    #[test]
    fn early_return_arm() {
        // 0 -(c)→ {1 (ret path merges), 2}; model: then-arm jumps straight
        // to exit, else falls through to exit too — both arms post-dominate
        // nothing special; then-arm depends on c.
        let mut f = Function::new("e");
        let c = f.new_value("c", Type::Bool);
        let b1 = f.new_block();
        let b2 = f.new_block();
        let exit = f.new_block();
        f.set_term(
            f.entry(),
            Terminator::Branch {
                cond: c,
                then_bb: b1,
                else_bb: b2,
            },
        );
        f.set_term(b1, Terminator::Jump(exit));
        f.set_term(b2, Terminator::Jump(exit));
        f.set_term(exit, Terminator::Return(vec![]));
        let cfg = Cfg::new(&f);
        let pdt = PostDomTree::new(&f, &cfg);
        let cd = ControlDeps::new(&f, &cfg, &pdt);
        assert_eq!(cd.deps(b1).len(), 1);
        assert_eq!(cd.deps(exit).len(), 0);
    }
}
