//! Dominator and post-dominator trees, and dominance frontiers.
//!
//! Uses the Cooper–Harvey–Kennedy iterative algorithm over reverse
//! postorder. Dominance frontiers drive control-dependence computation
//! (a statement is control dependent on the branches in the post-dominance
//! frontier of its block, following Ferrante et al., which the paper cites
//! for the `Gc` subgraph of the SEG).

use crate::cfg::Cfg;
use crate::ir::{BlockId, Function, Terminator};

/// A dominator tree over a function's blocks.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator per block (`idom[entry] == entry`); `None` for
    /// unreachable blocks.
    pub idom: Vec<Option<BlockId>>,
    /// Reverse postorder used during construction.
    pub order: Vec<BlockId>,
}

impl DomTree {
    /// Computes the dominator tree of the forward CFG.
    pub fn dominators(f: &Function, cfg: &Cfg) -> Self {
        let order = cfg.reverse_postorder(f.entry());
        Self::compute(cfg.len(), f.entry(), &order, |b| cfg.preds(b))
    }

    /// Core CHK iteration, parameterised over the edge direction.
    fn compute<'a, P>(n: usize, root: BlockId, order: &[BlockId], preds: P) -> Self
    where
        P: Fn(BlockId) -> &'a [BlockId],
    {
        let mut rpo_num = vec![usize::MAX; n];
        for (i, &b) in order.iter().enumerate() {
            rpo_num[b.0 as usize] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[root.0 as usize] = Some(root);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in order.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in preds(b) {
                    if idom[p.0 as usize].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => Self::intersect(&idom, &rpo_num, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.0 as usize] != Some(ni) {
                        idom[b.0 as usize] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree {
            idom,
            order: order.to_vec(),
        }
    }

    fn intersect(
        idom: &[Option<BlockId>],
        rpo_num: &[usize],
        mut a: BlockId,
        mut b: BlockId,
    ) -> BlockId {
        while a != b {
            while rpo_num[a.0 as usize] > rpo_num[b.0 as usize] {
                a = idom[a.0 as usize].expect("processed block has idom");
            }
            while rpo_num[b.0 as usize] > rpo_num[a.0 as usize] {
                b = idom[b.0 as usize].expect("processed block has idom");
            }
        }
        a
    }

    /// Immediate dominator of `b` (or post-dominator, for a post-dom tree).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.0 as usize]
    }

    /// `true` if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(p) if p != cur => cur = p,
                _ => return false,
            }
        }
    }

    /// Dominance frontier of every block.
    pub fn frontiers<'a, P>(&self, n: usize, preds: P) -> Vec<Vec<BlockId>>
    where
        P: Fn(BlockId) -> &'a [BlockId],
    {
        let mut df: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for bi in 0..n {
            let b = BlockId(bi as u32);
            let ps = preds(b);
            if ps.len() < 2 {
                continue;
            }
            let Some(target) = self.idom(b) else { continue };
            for &p in ps {
                if self.idom(p).is_none() {
                    continue; // unreachable pred
                }
                let mut runner = p;
                while runner != target {
                    if !df[runner.0 as usize].contains(&b) {
                        df[runner.0 as usize].push(b);
                    }
                    runner = match self.idom(runner) {
                        Some(r) if r != runner => r,
                        _ => break,
                    };
                }
            }
        }
        df
    }
}

/// Post-dominator tree, computed on the reverse CFG from a virtual exit.
///
/// Functions in this IR have a unique return statement (the front end
/// guarantees it), so the return block is the post-dominance root.
#[derive(Debug, Clone)]
pub struct PostDomTree {
    /// The underlying tree (indices are block ids).
    pub tree: DomTree,
    /// The root (unique exit block).
    pub exit: BlockId,
}

impl PostDomTree {
    /// Computes post-dominators.
    ///
    /// # Panics
    ///
    /// Panics if the function has no return block.
    pub fn new(f: &Function, cfg: &Cfg) -> Self {
        let exit = f
            .blocks
            .iter()
            .position(|b| matches!(b.term, Terminator::Return(_)))
            .map(|i| BlockId(i as u32))
            .expect("function must have a return block");
        // Reverse postorder on the reverse CFG.
        let n = cfg.len();
        let order = {
            let mut order = Vec::new();
            let mut state = vec![0u8; n];
            let mut stack: Vec<(BlockId, usize)> = vec![(exit, 0)];
            state[exit.0 as usize] = 1;
            while let Some(&mut (b, ref mut cursor)) = stack.last_mut() {
                let ss = cfg.preds(b);
                if *cursor < ss.len() {
                    let child = ss[*cursor];
                    *cursor += 1;
                    if state[child.0 as usize] == 0 {
                        state[child.0 as usize] = 1;
                        stack.push((child, 0));
                    }
                } else {
                    state[b.0 as usize] = 2;
                    order.push(b);
                    stack.pop();
                }
            }
            order.reverse();
            order
        };
        let tree = DomTree::compute(n, exit, &order, |b| cfg.succs(b));
        PostDomTree { tree, exit }
    }

    /// Immediate post-dominator of `b`.
    pub fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        self.tree.idom(b)
    }

    /// `true` if `a` post-dominates `b` (reflexive).
    pub fn post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        self.tree.dominates(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Function, Terminator};
    use crate::types::Type;

    /// 0 → {1, 2}; 1 → 3; 2 → 3; 3 → ret.
    fn diamond() -> (Function, Cfg) {
        let mut f = Function::new("d");
        let c = f.new_value("c", Type::Bool);
        let b1 = f.new_block();
        let b2 = f.new_block();
        let b3 = f.new_block();
        f.set_term(
            f.entry(),
            Terminator::Branch {
                cond: c,
                then_bb: b1,
                else_bb: b2,
            },
        );
        f.set_term(b1, Terminator::Jump(b3));
        f.set_term(b2, Terminator::Jump(b3));
        f.set_term(b3, Terminator::Return(vec![]));
        let cfg = Cfg::new(&f);
        (f, cfg)
    }

    #[test]
    fn diamond_dominators() {
        let (f, cfg) = diamond();
        let dt = DomTree::dominators(&f, &cfg);
        assert_eq!(dt.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dt.idom(BlockId(2)), Some(BlockId(0)));
        assert_eq!(dt.idom(BlockId(3)), Some(BlockId(0)));
        assert!(dt.dominates(BlockId(0), BlockId(3)));
        assert!(!dt.dominates(BlockId(1), BlockId(3)));
    }

    #[test]
    fn diamond_frontiers() {
        let (f, cfg) = diamond();
        let dt = DomTree::dominators(&f, &cfg);
        let df = dt.frontiers(cfg.len(), |b| cfg.preds(b));
        assert_eq!(df[1], vec![BlockId(3)]);
        assert_eq!(df[2], vec![BlockId(3)]);
        assert!(df[0].is_empty());
        assert!(df[3].is_empty());
    }

    #[test]
    fn diamond_postdominators() {
        let (f, cfg) = diamond();
        let pdt = PostDomTree::new(&f, &cfg);
        assert_eq!(pdt.exit, BlockId(3));
        assert_eq!(pdt.ipdom(BlockId(1)), Some(BlockId(3)));
        assert_eq!(pdt.ipdom(BlockId(0)), Some(BlockId(3)));
        assert!(pdt.post_dominates(BlockId(3), BlockId(0)));
        assert!(!pdt.post_dominates(BlockId(1), BlockId(0)));
    }

    /// Nested: 0 → {1, 4}; 1 → {2, 3}; 2 → 3'; … chain to exit.
    #[test]
    fn nested_branch_dominators() {
        let mut f = Function::new("n");
        let c = f.new_value("c", Type::Bool);
        let d = f.new_value("d", Type::Bool);
        let b1 = f.new_block(); // then of outer
        let b2 = f.new_block(); // then of inner
        let b3 = f.new_block(); // inner join
        let b4 = f.new_block(); // outer else
        let b5 = f.new_block(); // outer join / exit
        f.set_term(
            f.entry(),
            Terminator::Branch {
                cond: c,
                then_bb: b1,
                else_bb: b4,
            },
        );
        f.set_term(
            b1,
            Terminator::Branch {
                cond: d,
                then_bb: b2,
                else_bb: b3,
            },
        );
        f.set_term(b2, Terminator::Jump(b3));
        f.set_term(b3, Terminator::Jump(b5));
        f.set_term(b4, Terminator::Jump(b5));
        f.set_term(b5, Terminator::Return(vec![]));
        let cfg = Cfg::new(&f);
        let dt = DomTree::dominators(&f, &cfg);
        assert_eq!(dt.idom(b3), Some(b1));
        assert_eq!(dt.idom(b5), Some(BlockId(0)));
        let pdt = PostDomTree::new(&f, &cfg);
        assert_eq!(pdt.ipdom(b1), Some(b3));
        assert_eq!(pdt.ipdom(BlockId(0)), Some(b5));
    }
}
