//! Abstract syntax tree of the mini-language.
//!
//! The surface language is a small C-like language designed so that every
//! construct maps one-to-one onto the paper's formal language of §3:
//! typed locals, k-level pointer loads and stores, `malloc`/`free`,
//! branches, (once-unrolled) loops, calls, and a single return.
//!
//! ```text
//! fn bar(q: int**) -> int* {
//!     let c: int* = malloc();
//!     if (*q != null) { *q = c; free(c); }
//!     else { if (nondet_bool()) { *q = gb; } }
//!     let y: int* = *q;
//!     return y;
//! }
//! ```

use crate::types::Type;
use std::fmt;

/// Source position (byte offset) for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the token that produced the node.
    pub offset: usize,
    /// Line number (1-based).
    pub line: usize,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.line)
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// The null pointer literal.
    Null,
    /// Variable (local, parameter, or global) reference.
    Var(String, Span),
    /// `*e`, possibly nested (`**e` parses as `Deref(Deref(e))`).
    Deref(Box<Expr>, Span),
    /// Unary operation.
    Un(UnOpKind, Box<Expr>, Span),
    /// Binary operation.
    Bin(BinOpKind, Box<Expr>, Box<Expr>, Span),
    /// Function or intrinsic call.
    Call(String, Vec<Expr>, Span),
    /// `malloc()` — fresh heap cell.
    Malloc(Span),
}

impl Expr {
    /// The span of this expression, when it has one.
    pub fn span(&self) -> Span {
        match self {
            Expr::Var(_, s)
            | Expr::Deref(_, s)
            | Expr::Un(_, _, s)
            | Expr::Bin(_, _, _, s)
            | Expr::Call(_, _, s)
            | Expr::Malloc(s) => *s,
            _ => Span::default(),
        }
    }
}

/// Surface unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOpKind {
    /// `-e`.
    Neg,
    /// `!e`.
    Not,
}

/// Surface binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOpKind {
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>` (lowered as swapped `<`).
    Gt,
    /// `>=` (lowered as swapped `<=`).
    Ge,
    /// `&&` (non-short-circuit: both sides are evaluated; the language has
    /// no side effects in conditions).
    And,
    /// `||`.
    Or,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let x: T = e;`.
    Let {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Initialiser.
        init: Expr,
        /// Source location.
        span: Span,
    },
    /// `x = e;`.
    Assign {
        /// Target local.
        name: String,
        /// Right-hand side.
        value: Expr,
        /// Source location.
        span: Span,
    },
    /// `*x = e;` / `**x = e;` — store through `depth` levels.
    Store {
        /// Pointer-valued expression being stored through.
        ptr: Expr,
        /// Dereference depth (`*x` is 1).
        depth: u32,
        /// Stored value.
        value: Expr,
        /// Source location.
        span: Span,
    },
    /// Expression statement (a call evaluated for effect).
    Expr(Expr),
    /// `if (c) { … } else { … }`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_body: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `while (c) { … }` — analysed as a single guarded iteration
    /// (the §4.2 soundiness rule: loops unrolled once).
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `return;` / `return e;`.
    Return(Option<Expr>, Span),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Parameters: `(name, type)`.
    pub params: Vec<(String, Type)>,
    /// Return type (`None` for procedures).
    pub ret_ty: Option<Type>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Source location.
    pub span: Span,
}

/// A global declaration: `global g: int*;`.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    /// Global name.
    pub name: String,
    /// Content type of the global cell.
    pub ty: Type,
    /// Source location.
    pub span: Span,
}

/// A whole parsed program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Global declarations.
    pub globals: Vec<GlobalDef>,
    /// Function definitions.
    pub funcs: Vec<FuncDef>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_span_defaults_for_literals() {
        assert_eq!(Expr::Int(1).span(), Span::default());
        let s = Span { offset: 5, line: 2 };
        assert_eq!(Expr::Var("x".into(), s).span(), s);
    }

    #[test]
    fn span_displays_line() {
        let s = Span { offset: 0, line: 7 };
        assert_eq!(s.to_string(), "line 7");
    }
}
