//! Lowering from the AST to the SSA IR.
//!
//! Because the surface language is structured, SSA construction is done
//! directly during lowering: each structured branch is lowered with its own
//! variable environment and φ-instructions are inserted at joins for the
//! variables whose definitions differ between the arms. `while` loops are
//! analysed as a single guarded iteration (`if (c) { body }`), which is the
//! paper's §4.2 soundiness rule of unrolling each loop once and keeps every
//! CFG acyclic.
//!
//! Functions are normalised to have exactly one `return` statement: all
//! source-level returns jump to a dedicated exit block that φ-merges the
//! returned values, matching the paper's assumption ("with no loss of
//! generality, we assume each function has only one return statement").

use crate::ast::{BinOpKind, Expr, FuncDef, Program, Span, Stmt, UnOpKind};
use crate::ir::{
    intrinsics, BinOp, BlockId, Const, Function, GlobalId, Inst, Module, Terminator, UnOp, ValueId,
};
use crate::types::Type;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Semantic error raised during lowering.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerError {
    /// Human-readable message.
    pub message: String,
    /// Source location.
    pub span: Span,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LowerError {}

/// Signature of a callable (user function or intrinsic).
#[derive(Debug, Clone)]
struct Signature {
    params: Vec<Type>,
    ret: Option<Type>,
    /// Intrinsics with polymorphic parameters skip strict checking.
    polymorphic: bool,
}

/// Lowers a parsed program to an SSA module.
///
/// # Errors
///
/// Returns a [`LowerError`] on type errors, unknown names, arity
/// mismatches, or invalid dereferences.
///
/// # Examples
///
/// ```
/// let src = "fn main() { let p: int* = malloc(); free(p); return; }";
/// let program = pinpoint_ir::parser::parse(src).unwrap();
/// let module = pinpoint_ir::lower::lower(&program)?;
/// assert_eq!(module.funcs.len(), 1);
/// # Ok::<(), pinpoint_ir::lower::LowerError>(())
/// ```
pub fn lower(program: &Program) -> Result<Module, LowerError> {
    let mut module = Module::new();
    let mut globals: HashMap<String, (GlobalId, Type)> = HashMap::new();
    for g in &program.globals {
        let id = module.add_global(&g.name, g.ty.clone());
        if globals.insert(g.name.clone(), (id, g.ty.clone())).is_some() {
            return Err(LowerError {
                message: format!("duplicate global `{}`", g.name),
                span: g.span,
            });
        }
    }
    let mut signatures: HashMap<String, Signature> = intrinsic_signatures();
    for f in &program.funcs {
        let sig = Signature {
            params: f.params.iter().map(|(_, t)| t.clone()).collect(),
            ret: f.ret_ty.clone(),
            polymorphic: false,
        };
        if signatures.insert(f.name.clone(), sig).is_some() {
            return Err(LowerError {
                message: format!("duplicate function `{}`", f.name),
                span: f.span,
            });
        }
    }
    for fdef in &program.funcs {
        let func = FnLowerer::new(fdef, &signatures, &globals).run()?;
        module.add_func(func);
    }
    Ok(module)
}

fn intrinsic_signatures() -> HashMap<String, Signature> {
    let mut m = HashMap::new();
    let poly = |params: usize, ret: Option<Type>| Signature {
        params: vec![Type::Int; params],
        ret,
        polymorphic: true,
    };
    m.insert(intrinsics::FREE.into(), poly(1, None));
    m.insert(intrinsics::PRINT.into(), poly(1, None));
    m.insert(
        intrinsics::NONDET_BOOL.into(),
        Signature {
            params: vec![],
            ret: Some(Type::Bool),
            polymorphic: false,
        },
    );
    m.insert(
        intrinsics::NONDET_INT.into(),
        Signature {
            params: vec![],
            ret: Some(Type::Int),
            polymorphic: false,
        },
    );
    m.insert(
        intrinsics::FGETC.into(),
        Signature {
            params: vec![],
            ret: Some(Type::Int),
            polymorphic: false,
        },
    );
    m.insert(
        intrinsics::RECV.into(),
        Signature {
            params: vec![],
            ret: Some(Type::Int),
            polymorphic: false,
        },
    );
    m.insert(
        intrinsics::GETPASS.into(),
        Signature {
            params: vec![],
            ret: Some(Type::Int),
            polymorphic: false,
        },
    );
    m.insert(intrinsics::FOPEN.into(), poly(1, Some(Type::Int)));
    m.insert(intrinsics::SENDTO.into(), poly(1, None));
    m
}

/// Variable environment: source name → current SSA value. Ordered so
/// φ-merges iterate variables in one canonical (name) order: φ emission
/// order numbers the join block's values, and every content fingerprint
/// downstream assumes lowering is a pure function of the source text.
type Env = BTreeMap<String, ValueId>;

struct FnLowerer<'a> {
    def: &'a FuncDef,
    sigs: &'a HashMap<String, Signature>,
    globals: &'a HashMap<String, (GlobalId, Type)>,
    f: Function,
    cur: BlockId,
    /// Return sites: (predecessor block, returned value).
    ret_sites: Vec<(BlockId, Option<ValueId>)>,
    /// `true` once the current block has been terminated.
    terminated: bool,
}

impl<'a> FnLowerer<'a> {
    fn new(
        def: &'a FuncDef,
        sigs: &'a HashMap<String, Signature>,
        globals: &'a HashMap<String, (GlobalId, Type)>,
    ) -> Self {
        let f = Function::new(&def.name);
        let cur = f.entry();
        FnLowerer {
            def,
            sigs,
            globals,
            f,
            cur,
            ret_sites: Vec::new(),
            terminated: false,
        }
    }

    fn run(mut self) -> Result<Function, LowerError> {
        let mut env: Env = Env::new();
        for (name, ty) in &self.def.params {
            let v = self.f.new_value(name.clone(), ty.clone());
            self.f.params.push(v);
            env.insert(name.clone(), v);
        }
        if let Some(rt) = &self.def.ret_ty {
            self.f.ret_tys.push(rt.clone());
        }
        self.lower_stmts(&self.def.body, &mut env)?;
        // Implicit `return;` for procedures that fall off the end.
        if !self.terminated {
            if self.def.ret_ty.is_some() {
                return Err(LowerError {
                    message: format!(
                        "function `{}` may fall off the end without returning a value",
                        self.def.name
                    ),
                    span: self.def.span,
                });
            }
            let cur = self.cur;
            self.ret_sites.push((cur, None));
            self.terminated = true; // jump patched below
        }
        // Build the unique exit block.
        let exit = self.f.new_block();
        for &(pred, _) in &self.ret_sites {
            self.f.set_term(pred, Terminator::Jump(exit));
        }
        let ret_vals: Vec<ValueId> = if let Some(rt) = &self.def.ret_ty {
            let vals: Vec<(BlockId, ValueId)> = self
                .ret_sites
                .iter()
                .map(|&(b, v)| (b, v.expect("typed return checked per-site")))
                .collect();
            let merged = if vals.len() == 1 {
                vals[0].1
            } else {
                let dst = self.f.new_value("ret", rt.clone());
                self.f.push_inst(
                    exit,
                    Inst::Phi {
                        dst,
                        incomings: vals,
                    },
                );
                dst
            };
            vec![merged]
        } else {
            vec![]
        };
        self.f.set_term(exit, Terminator::Return(ret_vals));
        Ok(self.f)
    }

    fn err(&self, message: impl Into<String>, span: Span) -> LowerError {
        LowerError {
            message: message.into(),
            span,
        }
    }

    fn lower_stmts(&mut self, stmts: &[Stmt], env: &mut Env) -> Result<(), LowerError> {
        for s in stmts {
            if self.terminated {
                break; // unreachable code after return: ignore
            }
            self.lower_stmt(s, env)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt, env: &mut Env) -> Result<(), LowerError> {
        match stmt {
            Stmt::Let {
                name,
                ty,
                init,
                span,
            } => {
                let v = self.lower_expr(init, env)?;
                let vt = self.f.ty(v).clone();
                if !types_compatible(ty, &vt) {
                    return Err(self.err(
                        format!("type mismatch in `let {name}`: declared {ty}, got {vt}"),
                        *span,
                    ));
                }
                let named = self.f.new_value(name.clone(), ty.clone());
                self.f
                    .push_inst(self.cur, Inst::Copy { dst: named, src: v });
                env.insert(name.clone(), named);
                Ok(())
            }
            Stmt::Assign { name, value, span } => {
                let old = *env
                    .get(name)
                    .ok_or_else(|| self.err(format!("unknown variable `{name}`"), *span))?;
                let old_ty = self.f.ty(old).clone();
                let v = self.lower_expr(value, env)?;
                let vt = self.f.ty(v).clone();
                if !types_compatible(&old_ty, &vt) {
                    return Err(self.err(
                        format!("type mismatch assigning `{name}`: {old_ty} vs {vt}"),
                        *span,
                    ));
                }
                let named = self.f.new_value(name.clone(), old_ty);
                self.f
                    .push_inst(self.cur, Inst::Copy { dst: named, src: v });
                env.insert(name.clone(), named);
                Ok(())
            }
            Stmt::Store {
                ptr,
                depth,
                value,
                span,
            } => {
                let p = self.lower_expr(ptr, env)?;
                let pt = self.f.ty(p).clone();
                let Some(target_ty) = pt.deref(*depth as usize) else {
                    return Err(self.err(format!("cannot dereference {pt} {depth} time(s)"), *span));
                };
                let target_ty = target_ty.clone();
                let v = self.lower_expr(value, env)?;
                let vt = self.f.ty(v).clone();
                if !types_compatible(&target_ty, &vt) {
                    return Err(self.err(
                        format!("type mismatch in store: cell is {target_ty}, value is {vt}"),
                        *span,
                    ));
                }
                self.f.push_inst(
                    self.cur,
                    Inst::Store {
                        ptr: p,
                        depth: *depth,
                        src: v,
                    },
                );
                Ok(())
            }
            Stmt::Expr(e) => {
                let _ = self.lower_expr_allow_void(e, env)?;
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                span,
            } => self.lower_if(cond, then_body, else_body, *span, env),
            Stmt::While { cond, body, span } => {
                // Soundiness: analyse one guarded iteration.
                self.lower_if(cond, body, &[], *span, env)
            }
            Stmt::Return(e, span) => {
                let v = match (e, &self.def.ret_ty) {
                    (Some(e), Some(rt)) => {
                        let v = self.lower_expr(e, env)?;
                        let vt = self.f.ty(v).clone();
                        if !types_compatible(rt, &vt) {
                            return Err(self.err(
                                format!("return type mismatch: expected {rt}, got {vt}"),
                                *span,
                            ));
                        }
                        Some(v)
                    }
                    (None, None) => None,
                    (Some(_), None) => {
                        return Err(self.err("returning a value from a procedure", *span))
                    }
                    (None, Some(_)) => {
                        return Err(self.err("missing return value", *span));
                    }
                };
                self.ret_sites.push((self.cur, v));
                self.terminated = true;
                Ok(())
            }
        }
    }

    fn lower_if(
        &mut self,
        cond: &Expr,
        then_body: &[Stmt],
        else_body: &[Stmt],
        span: Span,
        env: &mut Env,
    ) -> Result<(), LowerError> {
        let c = self.lower_expr(cond, env)?;
        if *self.f.ty(c) != Type::Bool {
            return Err(self.err("branch condition must be bool", span));
        }
        let then_bb = self.f.new_block();
        let else_bb = self.f.new_block();
        self.f.set_term(
            self.cur,
            Terminator::Branch {
                cond: c,
                then_bb,
                else_bb,
            },
        );
        // Then arm.
        let mut then_env = env.clone();
        self.cur = then_bb;
        self.terminated = false;
        self.lower_stmts(then_body, &mut then_env)?;
        let then_exit = if self.terminated {
            None
        } else {
            Some(self.cur)
        };
        // Else arm.
        let mut else_env = env.clone();
        self.cur = else_bb;
        self.terminated = false;
        self.lower_stmts(else_body, &mut else_env)?;
        let else_exit = if self.terminated {
            None
        } else {
            Some(self.cur)
        };
        // Join.
        match (then_exit, else_exit) {
            (None, None) => {
                // Both arms returned; the code after the if is unreachable.
                self.terminated = true;
                Ok(())
            }
            (Some(b), None) => {
                let join = self.f.new_block();
                self.f.set_term(b, Terminator::Jump(join));
                self.cur = join;
                self.terminated = false;
                *env = then_env;
                Ok(())
            }
            (None, Some(b)) => {
                let join = self.f.new_block();
                self.f.set_term(b, Terminator::Jump(join));
                self.cur = join;
                self.terminated = false;
                *env = else_env;
                Ok(())
            }
            (Some(tb), Some(eb)) => {
                let join = self.f.new_block();
                self.f.set_term(tb, Terminator::Jump(join));
                self.f.set_term(eb, Terminator::Jump(join));
                self.cur = join;
                self.terminated = false;
                // φ-merge differing variables.
                let mut merged = Env::new();
                for (name, &tv) in &then_env {
                    let Some(&ev) = else_env.get(name) else {
                        continue; // declared only in the then-arm: out of scope
                    };
                    if tv == ev {
                        merged.insert(name.clone(), tv);
                    } else {
                        let ty = self.f.ty(tv).clone();
                        let dst = self.f.new_value(name.clone(), ty);
                        self.f.push_inst(
                            join,
                            Inst::Phi {
                                dst,
                                incomings: vec![(tb, tv), (eb, ev)],
                            },
                        );
                        merged.insert(name.clone(), dst);
                    }
                }
                *env = merged;
                Ok(())
            }
        }
    }

    fn lower_expr(&mut self, e: &Expr, env: &Env) -> Result<ValueId, LowerError> {
        match self.lower_expr_allow_void(e, env)? {
            Some(v) => Ok(v),
            None => Err(self.err("void call used as a value", e.span())),
        }
    }

    fn lower_expr_allow_void(
        &mut self,
        e: &Expr,
        env: &Env,
    ) -> Result<Option<ValueId>, LowerError> {
        match e {
            Expr::Int(v) => {
                let dst = self.f.new_value("c", Type::Int);
                self.f.push_inst(
                    self.cur,
                    Inst::Const {
                        dst,
                        value: Const::Int(*v),
                    },
                );
                Ok(Some(dst))
            }
            Expr::Bool(b) => {
                let dst = self.f.new_value("c", Type::Bool);
                self.f.push_inst(
                    self.cur,
                    Inst::Const {
                        dst,
                        value: Const::Bool(*b),
                    },
                );
                Ok(Some(dst))
            }
            Expr::Null => {
                let dst = self.f.new_value("null", Type::Int.ptr_to());
                self.f.push_inst(
                    self.cur,
                    Inst::Const {
                        dst,
                        value: Const::Null,
                    },
                );
                Ok(Some(dst))
            }
            Expr::Var(name, span) => {
                if let Some(&v) = env.get(name) {
                    return Ok(Some(v));
                }
                if let Some((gid, ty)) = self.globals.get(name) {
                    let dst = self.f.new_value(name.clone(), ty.clone().ptr_to());
                    self.f
                        .push_inst(self.cur, Inst::GlobalAddr { dst, global: *gid });
                    return Ok(Some(dst));
                }
                Err(self.err(format!("unknown variable `{name}`"), *span))
            }
            Expr::Deref(inner, span) => {
                let p = self.lower_expr(inner, env)?;
                let pt = self.f.ty(p).clone();
                let Some(pointee) = pt.pointee() else {
                    return Err(self.err(format!("cannot dereference non-pointer {pt}"), *span));
                };
                let pointee = pointee.clone();
                let dst = self.f.new_value("ld", pointee);
                self.f.push_inst(
                    self.cur,
                    Inst::Load {
                        dst,
                        ptr: p,
                        depth: 1,
                    },
                );
                Ok(Some(dst))
            }
            Expr::Un(op, inner, span) => {
                let v = self.lower_expr(inner, env)?;
                let vt = self.f.ty(v).clone();
                let (irop, want, out) = match op {
                    UnOpKind::Neg => (UnOp::Neg, Type::Int, Type::Int),
                    UnOpKind::Not => (UnOp::Not, Type::Bool, Type::Bool),
                };
                if vt != want {
                    return Err(self.err(format!("operand of `{irop}` must be {want}"), *span));
                }
                let dst = self.f.new_value("t", out);
                self.f.push_inst(
                    self.cur,
                    Inst::Un {
                        dst,
                        op: irop,
                        operand: v,
                    },
                );
                Ok(Some(dst))
            }
            Expr::Bin(op, l, r, span) => {
                let lv = self.lower_expr(l, env)?;
                let rv = self.lower_expr(r, env)?;
                let lt = self.f.ty(lv).clone();
                let rt = self.f.ty(rv).clone();
                // Gt/Ge lower to swapped Lt/Le.
                let (irop, lv, rv, lt, rt) = match op {
                    BinOpKind::Gt => (BinOp::Lt, rv, lv, rt, lt),
                    BinOpKind::Ge => (BinOp::Le, rv, lv, rt, lt),
                    BinOpKind::Add => (BinOp::Add, lv, rv, lt, rt),
                    BinOpKind::Sub => (BinOp::Sub, lv, rv, lt, rt),
                    BinOpKind::Mul => (BinOp::Mul, lv, rv, lt, rt),
                    BinOpKind::Eq => (BinOp::Eq, lv, rv, lt, rt),
                    BinOpKind::Ne => (BinOp::Ne, lv, rv, lt, rt),
                    BinOpKind::Lt => (BinOp::Lt, lv, rv, lt, rt),
                    BinOpKind::Le => (BinOp::Le, lv, rv, lt, rt),
                    BinOpKind::And => (BinOp::And, lv, rv, lt, rt),
                    BinOpKind::Or => (BinOp::Or, lv, rv, lt, rt),
                };
                let out_ty = match irop {
                    BinOp::Add | BinOp::Sub | BinOp::Mul => {
                        if lt != Type::Int || rt != Type::Int {
                            return Err(
                                self.err(format!("arithmetic on non-int: {lt} {irop} {rt}"), *span)
                            );
                        }
                        Type::Int
                    }
                    BinOp::Lt | BinOp::Le => {
                        if lt != Type::Int || rt != Type::Int {
                            return Err(
                                self.err(format!("comparison on non-int: {lt} {irop} {rt}"), *span)
                            );
                        }
                        Type::Bool
                    }
                    BinOp::Eq | BinOp::Ne => {
                        if !types_compatible(&lt, &rt) {
                            return Err(self.err(
                                format!("equality between incompatible types {lt} and {rt}"),
                                *span,
                            ));
                        }
                        Type::Bool
                    }
                    BinOp::And | BinOp::Or => {
                        if lt != Type::Bool || rt != Type::Bool {
                            return Err(self.err("logical op on non-bool", *span));
                        }
                        Type::Bool
                    }
                };
                let dst = self.f.new_value("t", out_ty);
                self.f.push_inst(
                    self.cur,
                    Inst::Bin {
                        dst,
                        op: irop,
                        lhs: lv,
                        rhs: rv,
                    },
                );
                Ok(Some(dst))
            }
            Expr::Malloc(_) => {
                // A fresh cell; its type is inferred from the declaration
                // that consumes it — represented as int* by default and
                // adjusted by `types_compatible`'s malloc rule.
                let dst = self.f.new_value("m", Type::Int.ptr_to());
                self.f.push_inst(self.cur, Inst::Alloc { dst });
                Ok(Some(dst))
            }
            Expr::Call(name, args, span) => {
                let sig = self
                    .sigs
                    .get(name)
                    .ok_or_else(|| self.err(format!("unknown function `{name}`"), *span))?
                    .clone();
                if args.len() != sig.params.len() {
                    return Err(self.err(
                        format!(
                            "`{name}` expects {} argument(s), got {}",
                            sig.params.len(),
                            args.len()
                        ),
                        *span,
                    ));
                }
                let mut argv = Vec::with_capacity(args.len());
                for (a, pt) in args.iter().zip(&sig.params) {
                    let v = self.lower_expr(a, env)?;
                    let vt = self.f.ty(v).clone();
                    if !sig.polymorphic && !types_compatible(pt, &vt) {
                        return Err(self.err(
                            format!("argument type mismatch for `{name}`: expected {pt}, got {vt}"),
                            a.span(),
                        ));
                    }
                    argv.push(v);
                }
                let dsts = match &sig.ret {
                    Some(rt) => {
                        let dst = self.f.new_value("r", rt.clone());
                        vec![dst]
                    }
                    None => vec![],
                };
                let ret = dsts.first().copied();
                self.f.push_inst(
                    self.cur,
                    Inst::Call {
                        dsts,
                        callee: name.clone(),
                        args: argv,
                    },
                );
                Ok(ret)
            }
        }
    }
}

/// Type compatibility: exact match, or a `malloc` cell (`int*`) used at any
/// pointer type, or `null` (`int*`) used at any pointer type.
fn types_compatible(expected: &Type, got: &Type) -> bool {
    expected == got || (expected.is_ptr() && *got == Type::Int.ptr_to())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::parser::parse;

    fn lower_src(src: &str) -> Module {
        lower(&parse(src).unwrap()).unwrap()
    }

    fn lower_err(src: &str) -> LowerError {
        lower(&parse(src).unwrap()).unwrap_err()
    }

    #[test]
    fn straightline_function() {
        let m = lower_src("fn main() { let p: int* = malloc(); free(p); return; }");
        let f = &m.funcs[0];
        assert_eq!(f.params.len(), 0);
        assert!(f.ret_tys.is_empty());
        // Alloc, Copy (let), Call (free).
        let kinds: Vec<_> = f.iter_insts().map(|(_, i)| i.clone()).collect();
        assert!(matches!(kinds[0], Inst::Alloc { .. }));
        assert!(matches!(kinds[1], Inst::Copy { .. }));
        assert!(matches!(kinds[2], Inst::Call { ref callee, .. } if callee == "free"));
    }

    #[test]
    fn if_inserts_phi_for_divergent_variable() {
        let m = lower_src(
            "fn f(c: bool) -> int {
                let x: int = 0;
                if (c) { x = 1; } else { x = 2; }
                return x;
            }",
        );
        let f = &m.funcs[0];
        let phis: Vec<_> = f
            .iter_insts()
            .filter(|(_, i)| matches!(i, Inst::Phi { .. }))
            .collect();
        assert_eq!(phis.len(), 1, "one φ for x at the join");
    }

    #[test]
    fn join_phis_are_emitted_in_name_order() {
        // The φ-merge iterates the branch environments; with an
        // unordered map the emission order (and hence ValueId numbering
        // and every content fingerprint downstream) would vary with the
        // per-process hash seed. Declare the variables in an order that
        // is neither sorted nor reverse-sorted to catch both accidents.
        let m = lower_src(
            "fn f(c: bool) -> int {
                let z: int = 0;
                let a: int = 0;
                let m: int = 0;
                if (c) { z = 1; a = 1; m = 1; } else { z = 2; a = 2; m = 2; }
                return z + a + m;
            }",
        );
        let f = &m.funcs[0];
        let phi_names: Vec<&str> = f
            .iter_insts()
            .filter_map(|(_, i)| match i {
                Inst::Phi { dst, .. } => Some(f.value(*dst).name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(phi_names, vec!["a", "m", "z"]);
    }

    #[test]
    fn unchanged_variable_needs_no_phi() {
        let m = lower_src(
            "fn f(c: bool) -> int {
                let x: int = 0;
                let y: int = 0;
                if (c) { y = 1; } else { y = 2; }
                return x;
            }",
        );
        let f = &m.funcs[0];
        let phi_names: Vec<&str> = f
            .iter_insts()
            .filter_map(|(_, i)| match i {
                Inst::Phi { dst, .. } => Some(f.value(*dst).name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(phi_names, vec!["y"]);
    }

    #[test]
    fn multiple_returns_merge_in_exit_block() {
        let m = lower_src(
            "fn f(c: bool) -> int {
                if (c) { return 1; }
                return 2;
            }",
        );
        let f = &m.funcs[0];
        assert_eq!(f.return_values().len(), 1);
        let rb = f.return_block().unwrap();
        // The exit block φ-merges the two returned constants.
        assert!(matches!(f.block(rb).insts.first(), Some(Inst::Phi { .. })));
    }

    #[test]
    fn while_unrolls_to_guarded_iteration() {
        let m = lower_src(
            "fn f(n: int) {
                let i: int = 0;
                while (i < n) { i = i + 1; }
                return;
            }",
        );
        let f = &m.funcs[0];
        // Acyclic CFG — topo_order must not panic.
        let cfg = Cfg::new(f);
        let order = cfg.topo_order(f.entry());
        assert!(order.len() >= 3);
    }

    #[test]
    fn globals_are_addresses() {
        let m = lower_src(
            "global g: int;
             fn f(p: int**) { *p = g; return; }",
        );
        let f = &m.funcs[0];
        assert!(f
            .iter_insts()
            .any(|(_, i)| matches!(i, Inst::GlobalAddr { .. })));
        assert_eq!(m.globals.len(), 1);
    }

    #[test]
    fn figure2_example_lowers() {
        // The paper's Fig. 1/2 program in surface syntax.
        let src = r#"
            global gb: int;
            fn foo(a: int*) {
                let ptr: int** = malloc();
                *ptr = a;
                if (nondet_bool()) { bar(ptr); } else { qux(ptr); }
                let f: int* = *ptr;
                if (nondet_bool()) { print(*f); }
                return;
            }
            fn bar(q: int**) {
                let c: int* = malloc();
                let t3: bool = *q != null;
                if (t3) { *q = c; free(c); }
                else { if (nondet_bool()) { *q = gb; } }
                return;
            }
            fn qux(r: int**) {
                if (nondet_bool()) { *r = null; } else { *r = null; }
                return;
            }
        "#;
        let m = lower_src(src);
        assert_eq!(m.funcs.len(), 3);
        assert!(m.func_by_name("foo").is_some());
        // Each function must have a single return block.
        for (_, f) in m.iter_funcs() {
            assert!(f.return_block().is_some(), "{} has a return", f.name);
        }
    }

    #[test]
    fn type_error_let_mismatch() {
        let e = lower_err("fn f() { let x: int = true; return; }");
        assert!(e.message.contains("type mismatch"), "{}", e.message);
    }

    #[test]
    fn type_error_branch_condition() {
        let e = lower_err("fn f() { if (1) { } return; }");
        assert!(e.message.contains("bool"), "{}", e.message);
    }

    #[test]
    fn error_unknown_variable() {
        let e = lower_err("fn f() { x = 1; return; }");
        assert!(e.message.contains("unknown variable"), "{}", e.message);
    }

    #[test]
    fn error_unknown_function() {
        let e = lower_err("fn f() { g(); return; }");
        assert!(e.message.contains("unknown function"), "{}", e.message);
    }

    #[test]
    fn error_arity_mismatch() {
        let e = lower_err("fn g(x: int) { return; } fn f() { g(); return; }");
        assert!(e.message.contains("argument"), "{}", e.message);
    }

    #[test]
    fn error_missing_return_value() {
        let e = lower_err("fn f() -> int { return; }");
        assert!(e.message.contains("return"), "{}", e.message);
    }

    #[test]
    fn error_fall_off_typed_function() {
        let e = lower_err("fn f(c: bool) -> int { if (c) { return 1; } }");
        assert!(e.message.contains("fall off"), "{}", e.message);
    }

    #[test]
    fn error_deref_non_pointer() {
        let e = lower_err("fn f(x: int) { let y: int = *x; return; }");
        assert!(e.message.contains("dereference"), "{}", e.message);
    }

    #[test]
    fn nested_store_depth_checked() {
        let m = lower_src("fn f(p: int**) { **p = 3; return; }");
        let f = &m.funcs[0];
        assert!(f
            .iter_insts()
            .any(|(_, i)| matches!(i, Inst::Store { depth: 2, .. })));
        let e = lower_err("fn f(p: int*) { **p = 3; return; }");
        assert!(e.message.contains("dereference"), "{}", e.message);
    }

    #[test]
    fn dead_code_after_return_ignored() {
        let m = lower_src("fn f() { return; free(null); }");
        let f = &m.funcs[0];
        assert_eq!(
            f.iter_insts()
                .filter(|(_, i)| matches!(i, Inst::Call { .. }))
                .count(),
            0
        );
    }

    #[test]
    fn both_arms_return_makes_join_unreachable() {
        let m = lower_src(
            "fn f(c: bool) -> int {
                if (c) { return 1; } else { return 2; }
            }",
        );
        let f = &m.funcs[0];
        assert!(f.return_block().is_some());
    }
}
