//! IR well-formedness verification.
//!
//! Run after lowering and after every transforming pass (the Fig. 3
//! connector rewriting mutates functions heavily); catches malformed SSA,
//! dangling references, and type violations early instead of as mystery
//! analysis results.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::ir::{Function, Inst, Module, Terminator, ValueId};
use std::collections::HashSet;
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function name.
    pub func: String,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in `{}`: {}", self.func, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies every function of `module`; returns all violations found.
pub fn verify_module(module: &Module) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    for (_, f) in module.iter_funcs() {
        verify_function(module, f, &mut errors);
    }
    errors
}

/// Verifies one function.
pub fn verify_function(module: &Module, f: &Function, errors: &mut Vec<VerifyError>) {
    let err = |errors: &mut Vec<VerifyError>, message: String| {
        errors.push(VerifyError {
            func: f.name.clone(),
            message,
        });
    };
    let valid_value = |v: ValueId| (v.0 as usize) < f.values.len();

    // 1. Single static assignment: every value defined at most once, and
    //    defs match the recorded def sites.
    let mut defined: HashSet<ValueId> = f.params.iter().copied().collect();
    if defined.len() != f.params.len() {
        err(errors, "duplicate parameter value".into());
    }
    for (id, inst) in f.iter_insts() {
        for d in inst.defs() {
            if !valid_value(d) {
                err(
                    errors,
                    format!("instruction {id} defines unknown value {d:?}"),
                );
                continue;
            }
            if !defined.insert(d) {
                err(
                    errors,
                    format!("value {d:?} defined more than once (at {id})"),
                );
            }
            if f.value(d).def != Some(id) {
                err(
                    errors,
                    format!(
                        "def-site of {d:?} is stale (recorded {:?}, actual {id})",
                        f.value(d).def
                    ),
                );
            }
        }
    }

    // 2. Terminator targets must be in range before any CFG-based check
    //    (building a CFG over dangling targets would panic).
    let mut targets_ok = true;
    for (bi, blk) in f.blocks.iter().enumerate() {
        for t in blk.term.successors() {
            if t.0 as usize >= f.blocks.len() {
                err(errors, format!("bb{bi} targets unknown bb{}", t.0));
                targets_ok = false;
            }
        }
    }
    if !targets_ok {
        return;
    }

    // 3. Every use references a defined value; uses are dominated by defs
    //    (checked structurally: defs must appear in a block dominating the
    //    use, or earlier in the same block — φ uses checked at preds).
    let cfg = Cfg::new(f);
    let dom = DomTree::dominators(f, &cfg);
    for (id, inst) in f.iter_insts() {
        let uses: Vec<(ValueId, Option<crate::ir::BlockId>)> = match inst {
            Inst::Phi { incomings, .. } => {
                incomings.iter().map(|&(pred, v)| (v, Some(pred))).collect()
            }
            other => other.uses().into_iter().map(|v| (v, None)).collect(),
        };
        for (v, phi_pred) in uses {
            if !valid_value(v) {
                err(errors, format!("instruction {id} uses unknown value {v:?}"));
                continue;
            }
            if !defined.contains(&v) {
                err(
                    errors,
                    format!("instruction {id} uses undefined value {v:?}"),
                );
                continue;
            }
            let Some(def) = f.value(v).def else {
                continue; // parameter: defined at entry, dominates all
            };
            if !cfg.reachable[id.block.0 as usize] {
                continue;
            }
            match phi_pred {
                Some(pred) => {
                    // The incoming value must be available at the end of
                    // the predecessor.
                    if !dom.dominates(def.block, pred) {
                        err(
                            errors,
                            format!(
                                "φ at {id}: incoming {v:?} (defined in bb{}) not available from bb{}",
                                def.block.0, pred.0
                            ),
                        );
                    }
                }
                None => {
                    let ok = if def.block == id.block {
                        def.index < id.index
                    } else {
                        dom.dominates(def.block, id.block)
                    };
                    if !ok {
                        err(
                            errors,
                            format!(
                                "use of {v:?} at {id} not dominated by its definition at {def}"
                            ),
                        );
                    }
                }
            }
        }
    }

    // 3. φ-instructions: incoming edges must match CFG predecessors.
    for (id, inst) in f.iter_insts() {
        if let Inst::Phi { incomings, .. } = inst {
            if !cfg.reachable[id.block.0 as usize] {
                continue;
            }
            let preds: HashSet<_> = cfg.preds(id.block).iter().copied().collect();
            for &(pred, _) in incomings {
                if !preds.contains(&pred) {
                    err(
                        errors,
                        format!("φ at {id} has incoming from non-predecessor bb{}", pred.0),
                    );
                }
            }
        }
    }

    // 4. Terminators: exactly one Return; branch targets in range; no
    //    Unreachable in reachable blocks.
    let mut returns = 0;
    for (bi, blk) in f.blocks.iter().enumerate() {
        match &blk.term {
            Terminator::Return(vals) => {
                returns += 1;
                if vals.len() != f.ret_tys.len() {
                    err(
                        errors,
                        format!(
                            "return arity {} does not match signature {}",
                            vals.len(),
                            f.ret_tys.len()
                        ),
                    );
                }
            }
            Terminator::Jump(_) => {}
            Terminator::Branch { cond, .. } => {
                if valid_value(*cond) && *f.ty(*cond) != crate::types::Type::Bool {
                    err(errors, format!("bb{bi} branches on non-bool {cond:?}"));
                }
            }
            Terminator::Unreachable => {
                if cfg.reachable[bi] {
                    err(errors, format!("reachable bb{bi} has no terminator"));
                }
            }
        }
    }
    if returns != 1 {
        err(
            errors,
            format!("expected exactly one return, found {returns}"),
        );
    }

    // 5. Calls to known functions have matching arity (post-transform
    //    shapes included).
    for (id, inst) in f.iter_insts() {
        if let Inst::Call { callee, args, dsts } = inst {
            if let Some(target) = module.func_by_name(callee) {
                let g = module.func(target);
                if args.len() != g.params.len() {
                    err(
                        errors,
                        format!(
                            "call at {id}: `{callee}` takes {} argument(s), got {}",
                            g.params.len(),
                            args.len()
                        ),
                    );
                }
                if dsts.len() > g.ret_tys.len() {
                    err(
                        errors,
                        format!(
                            "call at {id}: `{callee}` returns {} value(s), {} receivers",
                            g.ret_tys.len(),
                            dsts.len()
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BlockId, Const, InstId};
    use crate::lower::lower;
    use crate::parser::parse;
    use crate::types::Type;

    fn verify_src(src: &str) -> Vec<VerifyError> {
        let m = lower(&parse(src).unwrap()).unwrap();
        verify_module(&m)
    }

    #[test]
    fn lowered_programs_verify() {
        let errs = verify_src(
            "global g: int;
             fn helper(q: int**) -> int* { let v: int* = *q; return v; }
             fn main(c: bool) {
                let pp: int** = malloc();
                let p: int* = malloc();
                *pp = p;
                if (c) { let r: int* = helper(pp); free(r); }
                while (c) { print(g); }
                return;
             }",
        );
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn transformed_programs_verify() {
        let mut m = crate::compile(
            "fn set(q: int**, v: int*) { *q = v; return; }
             fn main() {
                let pp: int** = malloc();
                let p: int* = malloc();
                set(pp, p);
                return;
             }",
        )
        .unwrap();
        // The connector transformation must preserve well-formedness.
        pinpoint_verify_after_transform(&mut m);
        let errs = verify_module(&m);
        assert!(errs.is_empty(), "{errs:?}");
    }

    /// Applies a minimal version of the connector transformation (the
    /// full pipeline lives in pinpoint-pta, which depends on this crate;
    /// here we just exercise multi-value returns and call rewrites by
    /// hand to keep the dependency direction).
    fn pinpoint_verify_after_transform(m: &mut Module) {
        let set = m.func_by_name("set").unwrap();
        let f = m.func_mut(set);
        // Append an aux return value loaded from *(q,1).
        let q = f.params[0];
        let aux = f.new_value("aux_out_p0d1", Type::Int.ptr_to());
        let rb = f.return_block().unwrap();
        f.blocks[rb.0 as usize].insts.push(Inst::Load {
            dst: aux,
            ptr: q,
            depth: 1,
        });
        if let Terminator::Return(vals) = &mut f.blocks[rb.0 as usize].term {
            vals.push(aux);
        }
        f.ret_tys.push(Type::Int.ptr_to());
        // Fix def sites after surgery.
        for v in 0..f.values.len() {
            f.values[v].def = None;
        }
        let ids: Vec<(InstId, Vec<ValueId>)> =
            f.iter_insts().map(|(id, i)| (id, i.defs())).collect();
        for (id, defs) in ids {
            for d in defs {
                f.values[d.0 as usize].def = Some(id);
            }
        }
        // Rewrite main's call site to receive it.
        let main = m.func_by_name("main").unwrap();
        let f = m.func_mut(main);
        let recv = f.new_value("aux_recv_p0d1", Type::Int.ptr_to());
        for blk in &mut f.blocks {
            for inst in &mut blk.insts {
                if let Inst::Call { callee, dsts, .. } = inst {
                    if callee == "set" {
                        dsts.push(recv);
                    }
                }
            }
        }
        for v in 0..f.values.len() {
            f.values[v].def = None;
        }
        let ids: Vec<(InstId, Vec<ValueId>)> =
            f.iter_insts().map(|(id, i)| (id, i.defs())).collect();
        for (id, defs) in ids {
            for d in defs {
                f.values[d.0 as usize].def = Some(id);
            }
        }
    }

    #[test]
    fn detects_double_definition() {
        let mut m = lower(&parse("fn f() { return; }").unwrap()).unwrap();
        let fid = m.func_by_name("f").unwrap();
        let f = m.func_mut(fid);
        let x = f.new_value("x", Type::Int);
        let entry = f.entry();
        f.push_inst(
            entry,
            Inst::Const {
                dst: x,
                value: Const::Int(1),
            },
        );
        f.push_inst(
            entry,
            Inst::Const {
                dst: x,
                value: Const::Int(2),
            },
        );
        let errs = verify_module(&m);
        assert!(
            errs.iter().any(|e| e.message.contains("more than once")),
            "{errs:?}"
        );
    }

    #[test]
    fn detects_use_before_def() {
        let mut m = lower(&parse("fn f() { return; }").unwrap()).unwrap();
        let fid = m.func_by_name("f").unwrap();
        let f = m.func_mut(fid);
        let x = f.new_value("x", Type::Int);
        let y = f.new_value("y", Type::Int);
        let entry = f.entry();
        // y = x before x is defined.
        f.push_inst(entry, Inst::Copy { dst: y, src: x });
        f.push_inst(
            entry,
            Inst::Const {
                dst: x,
                value: Const::Int(1),
            },
        );
        let errs = verify_module(&m);
        assert!(
            errs.iter()
                .any(|e| e.message.contains("not dominated") || e.message.contains("undefined")),
            "{errs:?}"
        );
    }

    #[test]
    fn detects_bad_branch_target() {
        let mut m = lower(&parse("fn f(c: bool) { return; }").unwrap()).unwrap();
        let fid = m.func_by_name("f").unwrap();
        let f = m.func_mut(fid);
        let c = f.params[0];
        let entry = f.entry();
        f.set_term(
            entry,
            Terminator::Branch {
                cond: c,
                then_bb: BlockId(99),
                else_bb: BlockId(1),
            },
        );
        let errs = verify_module(&m);
        assert!(
            errs.iter().any(|e| e.message.contains("unknown bb99")),
            "{errs:?}"
        );
        // Verification stops before CFG-based checks; no panic.
    }

    #[test]
    fn detects_return_arity_mismatch() {
        let mut m = lower(&parse("fn f() -> int { return 1; }").unwrap()).unwrap();
        let fid = m.func_by_name("f").unwrap();
        let f = m.func_mut(fid);
        let rb = f.return_block().unwrap();
        f.set_term(rb, Terminator::Return(vec![]));
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.message.contains("arity")), "{errs:?}");
    }

    #[test]
    fn detects_phi_from_non_predecessor() {
        let mut m = lower(
            &parse(
                "fn f(c: bool) -> int {
                    let x: int = 0;
                    if (c) { x = 1; } else { x = 2; }
                    return x;
                }",
            )
            .unwrap(),
        )
        .unwrap();
        let fid = m.func_by_name("f").unwrap();
        let f = m.func_mut(fid);
        // Corrupt the φ's first incoming block.
        let phi_pos = f
            .iter_insts()
            .find_map(|(id, i)| matches!(i, Inst::Phi { .. }).then_some(id))
            .unwrap();
        if let Inst::Phi { incomings, .. } =
            &mut f.blocks[phi_pos.block.0 as usize].insts[phi_pos.index as usize]
        {
            incomings[0].0 = BlockId(0);
        }
        let errs = verify_module(&m);
        assert!(
            errs.iter().any(|e| e.message.contains("non-predecessor")),
            "{errs:?}"
        );
    }
}
