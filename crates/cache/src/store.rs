//! The on-disk object store.
//!
//! Layout: `<dir>/objects/<stage>-<key as 032x hex>.bin`, one file per
//! artifact. Every file carries a header — magic, format version, an
//! echo of the key it was stored under, and an FNV-1a checksum of the
//! payload — so any torn, truncated, stale, or foreign file is detected
//! on load and counted as an invalidation (and a miss), never trusted.
//!
//! Writes go to a process-unique `.tmp-*` file first and are moved into
//! place with an atomic rename: a crashed writer leaves only an ignored
//! temp file, and two concurrent writers of the same key race to
//! install byte-identical content (artifacts are deterministic
//! functions of their key). Store failures are swallowed — the worst
//! outcome of any filesystem trouble is a cold run.

use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Version of the on-disk artifact format. Bump on any codec or
/// key-derivation change; it participates both in every file header and
/// in every cache key (via [`crate::keys::config_fp`]).
pub const FORMAT_VERSION: u32 = 1;

const MAGIC: [u8; 4] = *b"PPCF";
/// Size in bytes of a cache frame's header: magic, format version,
/// key echo, payload checksum.
pub const HEADER_LEN: usize = 4 + 4 + 16 + 8;

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Counters describing a run's cache traffic, exported as the
/// `cache.*` metrics family.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Artifacts loaded and accepted.
    pub hits: u64,
    /// Keys with no usable stored artifact.
    pub misses: u64,
    /// Stored artifacts rejected (bad magic/version/key/checksum or
    /// undecodable payload); each also counts as a miss.
    pub invalidated: u64,
    /// Wall-clock nanoseconds spent probing and loading.
    pub load_ns: u64,
    /// Wall-clock nanoseconds spent encoding headers and writing.
    pub store_ns: u64,
}

/// Summary returned by [`CacheStore::info`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheInfo {
    /// Number of stored objects.
    pub entries: u64,
    /// Total bytes across stored objects.
    pub bytes: u64,
    /// Leftover temp files from interrupted writes.
    pub temp_files: u64,
}

/// Outcome of [`CacheStore::verify`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct VerifyOutcome {
    /// Objects whose header and checksum verified.
    pub ok: u64,
    /// Paths of objects that failed verification.
    pub corrupt: Vec<PathBuf>,
}

/// A directory-backed artifact store with hit/miss accounting.
#[derive(Debug)]
pub struct CacheStore {
    objects: PathBuf,
    stats: CacheStats,
}

impl CacheStore {
    /// Opens (creating if needed) the store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the objects directory cannot
    /// be created.
    pub fn open(dir: &Path) -> io::Result<CacheStore> {
        let objects = dir.join("objects");
        fs::create_dir_all(&objects)?;
        Ok(CacheStore {
            objects,
            stats: CacheStats::default(),
        })
    }

    /// The counters accumulated by this handle.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn object_path(&self, stage: &str, key: u128) -> PathBuf {
        self.objects.join(format!("{stage}-{key:032x}.bin"))
    }

    /// Loads the object stored under `(stage, key)` and decodes it with
    /// `decode`. Classifies the outcome into the stats counters: absent
    /// file → miss; present but failing any header, checksum, or decode
    /// check → invalidated *and* miss; success → hit.
    pub fn load_with<T>(
        &mut self,
        stage: &str,
        key: u128,
        decode: impl FnOnce(&[u8]) -> Option<T>,
    ) -> Option<T> {
        let start = Instant::now();
        let out = self.load_inner(stage, key, decode);
        self.stats.load_ns += start.elapsed().as_nanos() as u64;
        out
    }

    fn load_inner<T>(
        &mut self,
        stage: &str,
        key: u128,
        decode: impl FnOnce(&[u8]) -> Option<T>,
    ) -> Option<T> {
        let path = self.object_path(stage, key);
        let mut bytes = Vec::new();
        match fs::File::open(&path).and_then(|mut f| f.read_to_end(&mut bytes)) {
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.stats.misses += 1;
                return None;
            }
            Err(_) => {
                self.stats.invalidated += 1;
                self.stats.misses += 1;
                return None;
            }
        }
        match Self::check_frame(&bytes, key).and_then(decode) {
            Some(v) => {
                self.stats.hits += 1;
                Some(v)
            }
            None => {
                self.stats.invalidated += 1;
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Validates a stored frame's magic, version, key echo, and payload
    /// checksum, returning the payload on success.
    fn check_frame(bytes: &[u8], key: u128) -> Option<&[u8]> {
        if bytes.len() < HEADER_LEN {
            return None;
        }
        if bytes[0..4] != MAGIC {
            return None;
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != FORMAT_VERSION {
            return None;
        }
        let echo = u128::from_le_bytes(bytes[8..24].try_into().unwrap());
        if echo != key {
            return None;
        }
        let checksum = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
        let payload = &bytes[HEADER_LEN..];
        if checksum != fnv64(payload) {
            return None;
        }
        Some(payload)
    }

    /// Persists `payload` under `(stage, key)` atomically (temp file +
    /// rename). Failures are swallowed: the next run just misses.
    pub fn store(&mut self, stage: &str, key: u128, payload: &[u8]) {
        let start = Instant::now();
        let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        frame.extend_from_slice(&key.to_le_bytes());
        frame.extend_from_slice(&fnv64(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        let tmp = self
            .objects
            .join(format!(".tmp-{key:032x}-{}", std::process::id()));
        let final_path = self.object_path(stage, key);
        let result = fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(&frame))
            .and_then(|_| fs::rename(&tmp, &final_path));
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        self.stats.store_ns += start.elapsed().as_nanos() as u64;
    }

    /// Counts the store's objects and bytes without touching counters.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory is unreadable.
    /// A store that was never created reports zero entries.
    pub fn info(dir: &Path) -> io::Result<CacheInfo> {
        let mut out = CacheInfo::default();
        for entry in Self::read_objects(dir)? {
            let (path, meta) = entry?;
            if Self::is_temp(&path) {
                out.temp_files += 1;
            } else {
                out.entries += 1;
                out.bytes += meta.len();
            }
        }
        Ok(out)
    }

    /// Removes every stored object and temp file, returning how many
    /// files were deleted.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered.
    pub fn clear(dir: &Path) -> io::Result<u64> {
        let mut removed = 0;
        for entry in Self::read_objects(dir)? {
            let (path, _) = entry?;
            fs::remove_file(&path)?;
            removed += 1;
        }
        Ok(removed)
    }

    /// Checks every stored object's header and checksum (temp files are
    /// skipped — they are never read by loads).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory is unreadable.
    pub fn verify(dir: &Path) -> io::Result<VerifyOutcome> {
        let mut out = VerifyOutcome::default();
        let mut paths = Vec::new();
        for entry in Self::read_objects(dir)? {
            let (path, _) = entry?;
            if !Self::is_temp(&path) {
                paths.push(path);
            }
        }
        paths.sort();
        for path in paths {
            let bytes = fs::read(&path)?;
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            let key = name
                .rsplit('-')
                .next()
                .and_then(|tail| tail.strip_suffix(".bin"))
                .and_then(|hex| u128::from_str_radix(hex, 16).ok());
            let valid = match key {
                Some(k) => Self::check_frame(&bytes, k).is_some(),
                None => false,
            };
            if valid {
                out.ok += 1;
            } else {
                out.corrupt.push(path);
            }
        }
        Ok(out)
    }

    fn is_temp(path: &Path) -> bool {
        path.file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with(".tmp-"))
    }

    /// Iterates `<dir>/objects`, treating a missing directory as empty.
    #[allow(clippy::type_complexity)]
    fn read_objects(
        dir: &Path,
    ) -> io::Result<Box<dyn Iterator<Item = io::Result<(PathBuf, fs::Metadata)>>>> {
        let objects = dir.join("objects");
        match fs::read_dir(&objects) {
            Ok(rd) => Ok(Box::new(rd.map(|e| {
                let e = e?;
                let meta = e.metadata()?;
                Ok((e.path(), meta))
            }))),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Box::new(std::iter::empty())),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pinpoint-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_hit_after_store() {
        let dir = tmp_dir("roundtrip");
        let mut store = CacheStore::open(&dir).unwrap();
        store.store("pta", 42, b"payload");
        let got = store.load_with("pta", 42, |b| Some(b.to_vec()));
        assert_eq!(got.as_deref(), Some(&b"payload"[..]));
        assert_eq!(store.stats().hits, 1);
        assert_eq!(store.stats().misses, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn absent_key_is_a_plain_miss() {
        let dir = tmp_dir("miss");
        let mut store = CacheStore::open(&dir).unwrap();
        assert!(store.load_with("pta", 7, |b| Some(b.to_vec())).is_none());
        assert_eq!(store.stats().misses, 1);
        assert_eq!(store.stats().invalidated, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_frames_invalidate() {
        let dir = tmp_dir("corrupt");
        let mut store = CacheStore::open(&dir).unwrap();
        store.store("pta", 1, b"data");
        // Flip a payload byte: checksum fails.
        let path = dir.join("objects").join(format!("pta-{:032x}.bin", 1u128));
        let mut bytes = fs::read(&path).unwrap();
        *bytes.last_mut().unwrap() ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load_with("pta", 1, |b| Some(b.to_vec())).is_none());
        assert_eq!(store.stats().invalidated, 1);
        assert_eq!(store.stats().misses, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn maintenance_info_clear_verify() {
        let dir = tmp_dir("maint");
        let mut store = CacheStore::open(&dir).unwrap();
        store.store("pta", 1, b"one");
        store.store("seg", 2, b"two");
        fs::write(dir.join("objects").join(".tmp-dead-1"), b"partial").unwrap();
        let info = CacheStore::info(&dir).unwrap();
        assert_eq!(info.entries, 2);
        assert_eq!(info.temp_files, 1);
        let v = CacheStore::verify(&dir).unwrap();
        assert_eq!(v.ok, 2);
        assert!(v.corrupt.is_empty());
        let removed = CacheStore::clear(&dir).unwrap();
        assert_eq!(removed, 3);
        assert_eq!(CacheStore::info(&dir).unwrap().entries, 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
