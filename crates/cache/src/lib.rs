//! `pinpoint-cache`: a dependency-free persistent analysis cache for the
//! Pinpoint reproduction (PLDI 2018).
//!
//! The paper's industrial requirement — checking millions of lines in
//! hours (§5) — demands that repeated runs not pay the whole-program
//! price. The bottom-up, per-function architecture makes that possible:
//! each function's analysis depends only on its own lowered body, the
//! summary shapes of its (transitive) callees, and the configuration.
//! This crate persists those per-function artifacts on disk, keyed by a
//! content hash of exactly those inputs, so a warm re-run re-analyzes
//! only the edited caller chain and splices everything else.
//!
//! * [`keys`] — derives the cache key per function: a 128-bit FNV hash
//!   of `(format version ⊕ config, transitive SCC fingerprint, own
//!   fingerprint, function id)`;
//! * [`codec`] — a hand-rolled binary codec (no serde) for the artifact
//!   types: transformed bodies, connector shapes, guarded points-to
//!   results, and private term arenas;
//! * [`store`] — the on-disk object store with atomic (temp file +
//!   rename) writes, per-entry checksums, and hit/miss/invalidation
//!   counters; a crashed or concurrent run degrades to a cold run, never
//!   a corrupt one.
//!
//! The [`PtaArtifactStore`] adapter plugs a [`CacheStore`] into
//! [`pinpoint_pta::analyze_module_cached`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod keys;
pub mod store;

pub use codec::{ByteReader, ByteWriter, DecodeError};
pub use keys::{config_fp, module_keys};
pub use store::{CacheInfo, CacheStats, CacheStore, VerifyOutcome, FORMAT_VERSION, HEADER_LEN};

use pinpoint_pta::{ArtifactStore, FuncArtifact};

/// Adapter implementing [`pinpoint_pta::ArtifactStore`] over a
/// [`CacheStore`], using the `"pta"` stage namespace.
#[derive(Debug)]
pub struct PtaArtifactStore<'a> {
    store: &'a mut CacheStore,
}

impl<'a> PtaArtifactStore<'a> {
    /// Wraps `store`.
    pub fn new(store: &'a mut CacheStore) -> Self {
        PtaArtifactStore { store }
    }
}

impl ArtifactStore for PtaArtifactStore<'_> {
    fn load(&mut self, key: u128) -> Option<FuncArtifact> {
        self.store
            .load_with("pta", key, |bytes| codec::decode_artifact(bytes).ok())
    }

    fn store(&mut self, key: u128, artifact: &FuncArtifact) {
        let payload = codec::encode_artifact(artifact);
        self.store.store("pta", key, &payload);
    }
}
