//! Cache-key derivation.
//!
//! A function's artifact is valid exactly when every input of its
//! analysis is unchanged. Those inputs are:
//!
//! * its own lowered body ([`pinpoint_ir::func_fingerprint`]);
//! * the summary shapes of its transitive callees — covered by a
//!   *transitive SCC fingerprint* folded bottom-up over the call-graph
//!   condensation, so any edit below a function changes its key;
//! * the configuration that shapes artifacts ([`config_fp`]: the
//!   [`PtaConfig`] knobs, the access-path depth bound, and the on-disk
//!   [`FORMAT_VERSION`]);
//! * its `FuncId`. Persisted private arenas name opaque values
//!   `f{fid}.v{vid}`, so an artifact is only byte-compatible at the same
//!   function index. Including the id makes index shifts (function
//!   insertions/deletions) conservative invalidations rather than wrong
//!   splices.
//!
//! Detection-stage knobs (`DetectConfig`) are deliberately *excluded*:
//! artifacts capture the points-to/SEG stages only, which detection
//! consumes read-only.

use crate::store::FORMAT_VERSION;
use pinpoint_ir::fingerprint::Fnv128;
use pinpoint_ir::{module_fingerprints, CallGraph, Module};
use pinpoint_pta::{PtaConfig, MAX_PATH_DEPTH};

/// Fingerprint of everything configuration-shaped that flows into
/// artifacts: the points-to knobs, the path-depth bound, and the
/// artifact format version.
pub fn config_fp(config: &PtaConfig) -> u128 {
    let mut h = Fnv128::new();
    h.write_u32(FORMAT_VERSION);
    h.write_u32(config.prune as u32);
    h.write_u32(MAX_PATH_DEPTH);
    h.finish()
}

/// Derives the cache key of every function in `module` (indexed by
/// `FuncId`), against the *pre-transform* module.
///
/// The transitive SCC fingerprint is computed bottom-up over the
/// condensation: `tfp(scc) = H(sorted member fingerprints, sorted
/// distinct callee-SCC tfps)`. Because call-graph edges are derived
/// from callee *names* resolved against the module, adding or removing
/// a function that changes any resolution changes the affected callers'
/// edge sets and hence their keys.
pub fn module_keys(module: &Module, config_fp: u128) -> Vec<u128> {
    let cg = CallGraph::new(module);
    let fps = module_fingerprints(module);
    // `sccs` is emitted in reverse topological order of the condensation
    // (callee components first), so one forward pass sees every callee
    // tfp before it is needed.
    let mut scc_tfp = vec![0u128; cg.sccs.len()];
    for (si, members) in cg.sccs.iter().enumerate() {
        let mut member_fps: Vec<u128> = members.iter().map(|f| fps[f.0 as usize]).collect();
        member_fps.sort_unstable();
        let mut callee_tfps: Vec<u128> = members
            .iter()
            .flat_map(|f| cg.callees[f.0 as usize].iter())
            .map(|c| cg.scc_of[c.0 as usize])
            .filter(|&sc| sc != si)
            .map(|sc| scc_tfp[sc])
            .collect();
        callee_tfps.sort_unstable();
        callee_tfps.dedup();
        let mut h = Fnv128::new();
        h.write_u64(member_fps.len() as u64);
        for fp in member_fps {
            h.write_u128(fp);
        }
        h.write_u64(callee_tfps.len() as u64);
        for fp in callee_tfps {
            h.write_u128(fp);
        }
        scc_tfp[si] = h.finish();
    }
    (0..module.funcs.len())
        .map(|i| {
            let mut h = Fnv128::new();
            h.write_u128(config_fp);
            h.write_u128(scc_tfp[cg.scc_of[i]]);
            h.write_u128(fps[i]);
            h.write_u32(i as u32);
            h.finish()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys_of(src: &str) -> (Module, Vec<u128>) {
        let m = pinpoint_ir::compile(src).unwrap();
        let cfg = config_fp(&PtaConfig::default());
        let keys = module_keys(&m, cfg);
        (m, keys)
    }

    #[test]
    fn callee_edit_invalidates_caller_chain_only() {
        let base = "fn leaf() { return; }
                    fn mid(p: int*) { leaf(); return; }
                    fn top(p: int*) { mid(p); return; }
                    fn lone(p: int*) { free(p); return; }";
        let edited = "fn leaf() { let x: int = 1; print(x); return; }
                      fn mid(p: int*) { leaf(); return; }
                      fn top(p: int*) { mid(p); return; }
                      fn lone(p: int*) { free(p); return; }";
        let (m1, k1) = keys_of(base);
        let (m2, k2) = keys_of(edited);
        let idx = |m: &Module, n: &str| m.func_by_name(n).unwrap().0 as usize;
        assert_ne!(k1[idx(&m1, "leaf")], k2[idx(&m2, "leaf")]);
        assert_ne!(
            k1[idx(&m1, "mid")],
            k2[idx(&m2, "mid")],
            "caller chain dirty"
        );
        assert_ne!(k1[idx(&m1, "top")], k2[idx(&m2, "top")]);
        assert_eq!(
            k1[idx(&m1, "lone")],
            k2[idx(&m2, "lone")],
            "untouched stays clean"
        );
    }

    #[test]
    fn config_changes_every_key() {
        let src = "fn f(p: int*) { free(p); return; }";
        let m = pinpoint_ir::compile(src).unwrap();
        let a = module_keys(&m, config_fp(&PtaConfig { prune: true }));
        let b = module_keys(&m, config_fp(&PtaConfig { prune: false }));
        assert_ne!(a[0], b[0]);
    }
}
