//! Hand-rolled binary codec for persisted analysis artifacts.
//!
//! The format is a flat little-endian byte stream with length-prefixed
//! sequences and one tag byte per enum variant — no self-description, no
//! schema evolution. Compatibility is handled entirely by the cache key:
//! [`crate::store::FORMAT_VERSION`] participates in every key (via
//! [`crate::keys::config_fp`]) and in every file header, so a format
//! change simply misses on everything written by older builds.
//!
//! Decoding is total: every read is bounds-checked and every tag
//! validated, returning [`DecodeError`] rather than panicking, so a
//! corrupt or truncated object degrades to a cache miss.

use pinpoint_ir::ir::{
    Block, BlockId, Const, Function, GlobalId, Inst, InstId, Terminator, ValueId, ValueInfo,
};
use pinpoint_ir::{BinOp, Type, UnOp};
use pinpoint_pta::intra::{GlobalAccess, MemDep, PtaStats};
use pinpoint_pta::{AccessPath, AuxShape, FuncArtifact, FuncPta, Obj};
use pinpoint_smt::term::{Sort, TermArena, TermId, TermKind};
use std::collections::HashMap;

/// Error raised when a persisted byte stream cannot be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError(pub &'static str);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cache decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

type Result<T> = std::result::Result<T, DecodeError>;

/// Append-only little-endian byte stream writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends a `u32` little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u128` little-endian.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a sequence length prefix.
    pub fn len(&mut self, n: usize) {
        self.u64(n as u64);
    }
}

/// Bounds-checked reader over a persisted byte stream.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// `true` if every byte has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(DecodeError("truncated stream"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool (rejecting values other than 0/1).
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError("invalid bool")),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError("invalid utf-8"))
    }

    /// Reads a sequence length prefix, sanity-bounded by the remaining
    /// byte count so corrupt lengths fail fast instead of allocating.
    // Not a container length — it consumes a prefix from the stream.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&mut self) -> Result<usize> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n > remaining {
            return Err(DecodeError("length prefix exceeds stream"));
        }
        Ok(n as usize)
    }
}

// ---- IR ----------------------------------------------------------------

fn put_type(w: &mut ByteWriter, ty: &Type) {
    let mut depth = 0u32;
    let mut cur = ty;
    while let Type::Ptr(inner) = cur {
        depth += 1;
        cur = inner;
    }
    w.u32(depth);
    w.u8(match cur {
        Type::Int => 0,
        Type::Bool => 1,
        Type::Ptr(_) => unreachable!(),
    });
}

fn get_type(r: &mut ByteReader) -> Result<Type> {
    let depth = r.u32()?;
    if depth > 64 {
        return Err(DecodeError("absurd pointer depth"));
    }
    let mut ty = match r.u8()? {
        0 => Type::Int,
        1 => Type::Bool,
        _ => return Err(DecodeError("invalid type tag")),
    };
    for _ in 0..depth {
        ty = Type::Ptr(Box::new(ty));
    }
    Ok(ty)
}

fn put_inst_id(w: &mut ByteWriter, id: InstId) {
    w.u32(id.block.0);
    w.u32(id.index);
}

fn get_inst_id(r: &mut ByteReader) -> Result<InstId> {
    Ok(InstId {
        block: BlockId(r.u32()?),
        index: r.u32()?,
    })
}

fn put_const(w: &mut ByteWriter, c: &Const) {
    match c {
        Const::Int(v) => {
            w.u8(0);
            w.i64(*v);
        }
        Const::Bool(b) => {
            w.u8(1);
            w.bool(*b);
        }
        Const::Null => w.u8(2),
    }
}

fn get_const(r: &mut ByteReader) -> Result<Const> {
    Ok(match r.u8()? {
        0 => Const::Int(r.i64()?),
        1 => Const::Bool(r.bool()?),
        2 => Const::Null,
        _ => return Err(DecodeError("invalid const tag")),
    })
}

const BIN_OPS: [BinOp; 9] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Le,
    BinOp::And,
    BinOp::Or,
];

fn put_bin_op(w: &mut ByteWriter, op: BinOp) {
    w.u8(BIN_OPS.iter().position(|&o| o == op).unwrap() as u8);
}

fn get_bin_op(r: &mut ByteReader) -> Result<BinOp> {
    BIN_OPS
        .get(r.u8()? as usize)
        .copied()
        .ok_or(DecodeError("invalid binop tag"))
}

fn put_inst(w: &mut ByteWriter, inst: &Inst) {
    match inst {
        Inst::Const { dst, value } => {
            w.u8(0);
            w.u32(dst.0);
            put_const(w, value);
        }
        Inst::Copy { dst, src } => {
            w.u8(1);
            w.u32(dst.0);
            w.u32(src.0);
        }
        Inst::Phi { dst, incomings } => {
            w.u8(2);
            w.u32(dst.0);
            w.len(incomings.len());
            for (bb, v) in incomings {
                w.u32(bb.0);
                w.u32(v.0);
            }
        }
        Inst::Bin { dst, op, lhs, rhs } => {
            w.u8(3);
            w.u32(dst.0);
            put_bin_op(w, *op);
            w.u32(lhs.0);
            w.u32(rhs.0);
        }
        Inst::Un { dst, op, operand } => {
            w.u8(4);
            w.u32(dst.0);
            w.u8(match op {
                UnOp::Neg => 0,
                UnOp::Not => 1,
            });
            w.u32(operand.0);
        }
        Inst::Load { dst, ptr, depth } => {
            w.u8(5);
            w.u32(dst.0);
            w.u32(ptr.0);
            w.u32(*depth);
        }
        Inst::Store { ptr, depth, src } => {
            w.u8(6);
            w.u32(ptr.0);
            w.u32(*depth);
            w.u32(src.0);
        }
        Inst::Alloc { dst } => {
            w.u8(7);
            w.u32(dst.0);
        }
        Inst::GlobalAddr { dst, global } => {
            w.u8(8);
            w.u32(dst.0);
            w.u32(global.0);
        }
        Inst::Call { dsts, callee, args } => {
            w.u8(9);
            w.len(dsts.len());
            for d in dsts {
                w.u32(d.0);
            }
            w.str(callee);
            w.len(args.len());
            for a in args {
                w.u32(a.0);
            }
        }
    }
}

fn get_inst(r: &mut ByteReader) -> Result<Inst> {
    Ok(match r.u8()? {
        0 => Inst::Const {
            dst: ValueId(r.u32()?),
            value: get_const(r)?,
        },
        1 => Inst::Copy {
            dst: ValueId(r.u32()?),
            src: ValueId(r.u32()?),
        },
        2 => {
            let dst = ValueId(r.u32()?);
            let n = r.len()?;
            let mut incomings = Vec::with_capacity(n);
            for _ in 0..n {
                incomings.push((BlockId(r.u32()?), ValueId(r.u32()?)));
            }
            Inst::Phi { dst, incomings }
        }
        3 => Inst::Bin {
            dst: ValueId(r.u32()?),
            op: get_bin_op(r)?,
            lhs: ValueId(r.u32()?),
            rhs: ValueId(r.u32()?),
        },
        4 => Inst::Un {
            dst: ValueId(r.u32()?),
            op: match r.u8()? {
                0 => UnOp::Neg,
                1 => UnOp::Not,
                _ => return Err(DecodeError("invalid unop tag")),
            },
            operand: ValueId(r.u32()?),
        },
        5 => Inst::Load {
            dst: ValueId(r.u32()?),
            ptr: ValueId(r.u32()?),
            depth: r.u32()?,
        },
        6 => Inst::Store {
            ptr: ValueId(r.u32()?),
            depth: r.u32()?,
            src: ValueId(r.u32()?),
        },
        7 => Inst::Alloc {
            dst: ValueId(r.u32()?),
        },
        8 => Inst::GlobalAddr {
            dst: ValueId(r.u32()?),
            global: GlobalId(r.u32()?),
        },
        9 => {
            let n = r.len()?;
            let mut dsts = Vec::with_capacity(n);
            for _ in 0..n {
                dsts.push(ValueId(r.u32()?));
            }
            let callee = r.str()?;
            let n = r.len()?;
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(ValueId(r.u32()?));
            }
            Inst::Call { dsts, callee, args }
        }
        _ => return Err(DecodeError("invalid inst tag")),
    })
}

fn put_terminator(w: &mut ByteWriter, term: &Terminator) {
    match term {
        Terminator::Jump(bb) => {
            w.u8(0);
            w.u32(bb.0);
        }
        Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } => {
            w.u8(1);
            w.u32(cond.0);
            w.u32(then_bb.0);
            w.u32(else_bb.0);
        }
        Terminator::Return(vs) => {
            w.u8(2);
            w.len(vs.len());
            for v in vs {
                w.u32(v.0);
            }
        }
        Terminator::Unreachable => w.u8(3),
    }
}

fn get_terminator(r: &mut ByteReader) -> Result<Terminator> {
    Ok(match r.u8()? {
        0 => Terminator::Jump(BlockId(r.u32()?)),
        1 => Terminator::Branch {
            cond: ValueId(r.u32()?),
            then_bb: BlockId(r.u32()?),
            else_bb: BlockId(r.u32()?),
        },
        2 => {
            let n = r.len()?;
            let mut vs = Vec::with_capacity(n);
            for _ in 0..n {
                vs.push(ValueId(r.u32()?));
            }
            Terminator::Return(vs)
        }
        3 => Terminator::Unreachable,
        _ => return Err(DecodeError("invalid terminator tag")),
    })
}

/// Encodes a lowered function body.
pub fn put_function(w: &mut ByteWriter, f: &Function) {
    w.str(&f.name);
    w.len(f.params.len());
    for p in &f.params {
        w.u32(p.0);
    }
    w.len(f.ret_tys.len());
    for ty in &f.ret_tys {
        put_type(w, ty);
    }
    w.u64(f.aux_param_count as u64);
    w.len(f.blocks.len());
    for block in &f.blocks {
        w.len(block.insts.len());
        for inst in &block.insts {
            put_inst(w, inst);
        }
        put_terminator(w, &block.term);
    }
    w.len(f.values.len());
    for info in &f.values {
        w.str(&info.name);
        put_type(w, &info.ty);
        match info.def {
            Some(iid) => {
                w.u8(1);
                put_inst_id(w, iid);
            }
            None => w.u8(0),
        }
    }
}

/// Decodes a lowered function body.
pub fn get_function(r: &mut ByteReader) -> Result<Function> {
    let name = r.str()?;
    let n = r.len()?;
    let mut params = Vec::with_capacity(n);
    for _ in 0..n {
        params.push(ValueId(r.u32()?));
    }
    let n = r.len()?;
    let mut ret_tys = Vec::with_capacity(n);
    for _ in 0..n {
        ret_tys.push(get_type(r)?);
    }
    let aux_param_count = r.u64()? as usize;
    let n = r.len()?;
    let mut blocks = Vec::with_capacity(n);
    for _ in 0..n {
        let ni = r.len()?;
        let mut insts = Vec::with_capacity(ni);
        for _ in 0..ni {
            insts.push(get_inst(r)?);
        }
        let term = get_terminator(r)?;
        blocks.push(Block { insts, term });
    }
    let n = r.len()?;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let ty = get_type(r)?;
        let def = match r.u8()? {
            0 => None,
            1 => Some(get_inst_id(r)?),
            _ => return Err(DecodeError("invalid def flag")),
        };
        values.push(ValueInfo { name, ty, def });
    }
    Ok(Function {
        name,
        params,
        ret_tys,
        aux_param_count,
        blocks,
        values,
    })
}

// ---- points-to vocabulary ----------------------------------------------

fn put_access_path(w: &mut ByteWriter, p: AccessPath) {
    w.u32(p.root);
    w.u32(p.depth);
}

fn get_access_path(r: &mut ByteReader) -> Result<AccessPath> {
    Ok(AccessPath {
        root: r.u32()?,
        depth: r.u32()?,
    })
}

fn put_obj(w: &mut ByteWriter, o: Obj) {
    match o {
        Obj::Alloc(site) => {
            w.u8(0);
            put_inst_id(w, site);
        }
        Obj::Global(g) => {
            w.u8(1);
            w.u32(g.0);
        }
        Obj::Param { root, depth } => {
            w.u8(2);
            w.u32(root);
            w.u32(depth);
        }
        Obj::External(site, i) => {
            w.u8(3);
            put_inst_id(w, site);
            w.u32(i);
        }
    }
}

fn get_obj(r: &mut ByteReader) -> Result<Obj> {
    Ok(match r.u8()? {
        0 => Obj::Alloc(get_inst_id(r)?),
        1 => Obj::Global(GlobalId(r.u32()?)),
        2 => Obj::Param {
            root: r.u32()?,
            depth: r.u32()?,
        },
        3 => Obj::External(get_inst_id(r)?, r.u32()?),
        _ => return Err(DecodeError("invalid obj tag")),
    })
}

/// Encodes a [`TermId`] as its raw arena index.
pub fn put_term_id(w: &mut ByteWriter, t: TermId) {
    w.u32(t.index() as u32);
}

/// Decodes a [`TermId`], validating it against the arena length
/// `arena_len` it will index into.
pub fn get_term_id(r: &mut ByteReader, arena_len: usize) -> Result<TermId> {
    let raw = r.u32()? as usize;
    if raw >= arena_len {
        return Err(DecodeError("term id out of range"));
    }
    Ok(TermId::from_index(raw))
}

fn put_global_access(w: &mut ByteWriter, g: &GlobalAccess) {
    w.u32(g.global.0);
    w.u32(g.value.0);
    put_term_id(w, g.cond);
    put_inst_id(w, g.site);
}

fn get_global_access(r: &mut ByteReader, arena_len: usize) -> Result<GlobalAccess> {
    Ok(GlobalAccess {
        global: GlobalId(r.u32()?),
        value: ValueId(r.u32()?),
        cond: get_term_id(r, arena_len)?,
        site: get_inst_id(r)?,
    })
}

/// Encodes a [`FuncPta`]; `points_to` entries are written sorted by key
/// so encoding is deterministic.
pub fn put_func_pta(w: &mut ByteWriter, p: &FuncPta) {
    w.len(p.mem_deps.len());
    for d in &p.mem_deps {
        put_inst_id(w, d.store_site);
        w.u32(d.src.0);
        put_inst_id(w, d.load_site);
        w.u32(d.dst.0);
        put_term_id(w, d.cond);
    }
    let mut keys: Vec<ValueId> = p.points_to.keys().copied().collect();
    keys.sort_unstable();
    w.len(keys.len());
    for k in keys {
        w.u32(k.0);
        let set = &p.points_to[&k];
        w.len(set.len());
        for &(o, c) in set {
            put_obj(w, o);
            put_term_id(w, c);
        }
    }
    w.len(p.refs.len());
    for &ap in &p.refs {
        put_access_path(w, ap);
    }
    w.len(p.mods.len());
    for &ap in &p.mods {
        put_access_path(w, ap);
    }
    w.len(p.global_stores.len());
    for g in &p.global_stores {
        put_global_access(w, g);
    }
    w.len(p.global_loads.len());
    for g in &p.global_loads {
        put_global_access(w, g);
    }
    w.u64(p.stats.pruned);
    w.u64(p.stats.kept);
    w.u64(p.stats.linear_checks);
}

/// Decodes a [`FuncPta`] whose conditions index an arena of length
/// `arena_len`.
pub fn get_func_pta(r: &mut ByteReader, arena_len: usize) -> Result<FuncPta> {
    let n = r.len()?;
    let mut mem_deps = Vec::with_capacity(n);
    for _ in 0..n {
        mem_deps.push(MemDep {
            store_site: get_inst_id(r)?,
            src: ValueId(r.u32()?),
            load_site: get_inst_id(r)?,
            dst: ValueId(r.u32()?),
            cond: get_term_id(r, arena_len)?,
        });
    }
    let n = r.len()?;
    let mut points_to = HashMap::with_capacity(n);
    for _ in 0..n {
        let k = ValueId(r.u32()?);
        let m = r.len()?;
        let mut set = Vec::with_capacity(m);
        for _ in 0..m {
            set.push((get_obj(r)?, get_term_id(r, arena_len)?));
        }
        points_to.insert(k, set);
    }
    let n = r.len()?;
    let mut refs = Vec::with_capacity(n);
    for _ in 0..n {
        refs.push(get_access_path(r)?);
    }
    let n = r.len()?;
    let mut mods = Vec::with_capacity(n);
    for _ in 0..n {
        mods.push(get_access_path(r)?);
    }
    let n = r.len()?;
    let mut global_stores = Vec::with_capacity(n);
    for _ in 0..n {
        global_stores.push(get_global_access(r, arena_len)?);
    }
    let n = r.len()?;
    let mut global_loads = Vec::with_capacity(n);
    for _ in 0..n {
        global_loads.push(get_global_access(r, arena_len)?);
    }
    let stats = PtaStats {
        pruned: r.u64()?,
        kept: r.u64()?,
        linear_checks: r.u64()?,
    };
    Ok(FuncPta {
        mem_deps,
        points_to,
        refs,
        mods,
        global_stores,
        global_loads,
        stats,
    })
}

/// Encodes a connector shape.
pub fn put_aux_shape(w: &mut ByteWriter, s: &AuxShape) {
    w.len(s.aux_params.len());
    for &(ap, v) in &s.aux_params {
        put_access_path(w, ap);
        w.u32(v.0);
    }
    w.len(s.aux_rets.len());
    for &(ap, v) in &s.aux_rets {
        put_access_path(w, ap);
        w.u32(v.0);
    }
    w.u64(s.ret_offset as u64);
}

/// Decodes a connector shape.
pub fn get_aux_shape(r: &mut ByteReader) -> Result<AuxShape> {
    let n = r.len()?;
    let mut aux_params = Vec::with_capacity(n);
    for _ in 0..n {
        aux_params.push((get_access_path(r)?, ValueId(r.u32()?)));
    }
    let n = r.len()?;
    let mut aux_rets = Vec::with_capacity(n);
    for _ in 0..n {
        aux_rets.push((get_access_path(r)?, ValueId(r.u32()?)));
    }
    let ret_offset = r.u64()? as usize;
    Ok(AuxShape {
        aux_params,
        aux_rets,
        ret_offset,
    })
}

// ---- terms -------------------------------------------------------------

fn put_sort(w: &mut ByteWriter, s: Sort) {
    w.u8(match s {
        Sort::Bool => 0,
        Sort::Int => 1,
    });
}

fn get_sort(r: &mut ByteReader) -> Result<Sort> {
    Ok(match r.u8()? {
        0 => Sort::Bool,
        1 => Sort::Int,
        _ => return Err(DecodeError("invalid sort tag")),
    })
}

fn put_term_ids(w: &mut ByteWriter, ts: &[TermId]) {
    w.len(ts.len());
    for &t in ts {
        put_term_id(w, t);
    }
}

fn get_term_ids(r: &mut ByteReader, limit: usize) -> Result<Vec<TermId>> {
    let n = r.len()?;
    let mut ts = Vec::with_capacity(n);
    for _ in 0..n {
        ts.push(get_term_id(r, limit)?);
    }
    Ok(ts)
}

/// Encodes a [`TermArena`] as its insertion-order `(sort, kind)` stream.
pub fn put_arena(w: &mut ByteWriter, arena: &TermArena) {
    w.len(arena.len());
    for (kind, sort) in arena.kinds() {
        put_sort(w, sort);
        match kind {
            TermKind::BoolConst(b) => {
                w.u8(0);
                w.bool(*b);
            }
            TermKind::IntConst(v) => {
                w.u8(1);
                w.i64(*v);
            }
            TermKind::Var(name, s) => {
                w.u8(2);
                w.str(name);
                put_sort(w, *s);
            }
            TermKind::Not(x) => {
                w.u8(3);
                put_term_id(w, *x);
            }
            TermKind::And(xs) => {
                w.u8(4);
                put_term_ids(w, xs);
            }
            TermKind::Or(xs) => {
                w.u8(5);
                put_term_ids(w, xs);
            }
            TermKind::Ite(c, a, b) => {
                w.u8(6);
                put_term_id(w, *c);
                put_term_id(w, *a);
                put_term_id(w, *b);
            }
            TermKind::Eq(a, b) => {
                w.u8(7);
                put_term_id(w, *a);
                put_term_id(w, *b);
            }
            TermKind::Lt(a, b) => {
                w.u8(8);
                put_term_id(w, *a);
                put_term_id(w, *b);
            }
            TermKind::Le(a, b) => {
                w.u8(9);
                put_term_id(w, *a);
                put_term_id(w, *b);
            }
            TermKind::Add(xs) => {
                w.u8(10);
                put_term_ids(w, xs);
            }
            TermKind::Sub(a, b) => {
                w.u8(11);
                put_term_id(w, *a);
                put_term_id(w, *b);
            }
            TermKind::Mul(a, b) => {
                w.u8(12);
                put_term_id(w, *a);
                put_term_id(w, *b);
            }
            TermKind::Neg(a) => {
                w.u8(13);
                put_term_id(w, *a);
            }
        }
    }
}

/// Decodes a [`TermArena`] by replaying the persisted stream through the
/// validating raw constructor; ids come out identical to the encoded
/// arena's.
pub fn get_arena(r: &mut ByteReader) -> Result<TermArena> {
    let n = r.len()?;
    let mut arena = TermArena::new();
    for i in 0..n {
        let sort = get_sort(r)?;
        let kind = match r.u8()? {
            0 => TermKind::BoolConst(r.bool()?),
            1 => TermKind::IntConst(r.i64()?),
            2 => {
                let name = r.str()?;
                let s = get_sort(r)?;
                TermKind::Var(name, s)
            }
            3 => TermKind::Not(get_term_id(r, i)?),
            4 => TermKind::And(get_term_ids(r, i)?),
            5 => TermKind::Or(get_term_ids(r, i)?),
            6 => TermKind::Ite(get_term_id(r, i)?, get_term_id(r, i)?, get_term_id(r, i)?),
            7 => TermKind::Eq(get_term_id(r, i)?, get_term_id(r, i)?),
            8 => TermKind::Lt(get_term_id(r, i)?, get_term_id(r, i)?),
            9 => TermKind::Le(get_term_id(r, i)?, get_term_id(r, i)?),
            10 => TermKind::Add(get_term_ids(r, i)?),
            11 => TermKind::Sub(get_term_id(r, i)?, get_term_id(r, i)?),
            12 => TermKind::Mul(get_term_id(r, i)?, get_term_id(r, i)?),
            13 => TermKind::Neg(get_term_id(r, i)?),
            _ => return Err(DecodeError("invalid term tag")),
        };
        arena
            .push_raw(kind, sort)
            .map_err(|_| DecodeError("non-canonical term stream"))?;
    }
    Ok(arena)
}

// ---- artifact ----------------------------------------------------------

/// Encodes a complete per-function artifact payload.
pub fn encode_artifact(a: &FuncArtifact) -> Vec<u8> {
    let mut w = ByteWriter::new();
    put_arena(&mut w, &a.arena);
    put_function(&mut w, &a.body);
    put_aux_shape(&mut w, &a.shape);
    put_func_pta(&mut w, &a.pta);
    w.len(a.cached_values.len());
    for v in &a.cached_values {
        w.u32(v.0);
    }
    w.u64(a.unsat);
    w.u64(a.unknown);
    w.into_bytes()
}

/// Decodes a complete per-function artifact payload, rejecting trailing
/// garbage.
pub fn decode_artifact(bytes: &[u8]) -> Result<FuncArtifact> {
    let mut r = ByteReader::new(bytes);
    let arena = get_arena(&mut r)?;
    let body = get_function(&mut r)?;
    let shape = get_aux_shape(&mut r)?;
    let pta = get_func_pta(&mut r, arena.len())?;
    let n = r.len()?;
    let mut cached_values = Vec::with_capacity(n);
    for _ in 0..n {
        cached_values.push(ValueId(r.u32()?));
    }
    let unsat = r.u64()?;
    let unknown = r.u64()?;
    if !r.is_at_end() {
        return Err(DecodeError("trailing bytes"));
    }
    Ok(FuncArtifact {
        body,
        shape,
        pta,
        arena,
        cached_values,
        unsat,
        unknown,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_roundtrips() {
        let m = pinpoint_ir::compile(
            "fn f(p: int**, c: bool) -> int {
                let x: int* = *p;
                if (c) { *p = null; }
                let y: int = 1 + 2;
                return y;
            }",
        )
        .unwrap();
        let mut w = ByteWriter::new();
        put_function(&mut w, &m.funcs[0]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = get_function(&mut r).unwrap();
        assert!(r.is_at_end());
        assert_eq!(format!("{:?}", m.funcs[0]), format!("{back:?}"));
    }

    #[test]
    fn arena_roundtrips_with_identical_ids() {
        let mut arena = TermArena::new();
        let x = arena.var("x", Sort::Int);
        let zero = arena.int(0);
        let cmp = arena.lt(zero, x);
        let b = arena.var("b", Sort::Bool);
        let both = arena.and2(cmp, b);
        let mut w = ByteWriter::new();
        put_arena(&mut w, &arena);
        let bytes = w.into_bytes();
        let back = get_arena(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back.len(), arena.len());
        assert_eq!(back.display(both), arena.display(both));
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut arena = TermArena::new();
        let x = arena.var("some_variable", Sort::Int);
        let zero = arena.int(0);
        let _ = arena.lt(zero, x);
        let mut w = ByteWriter::new();
        put_arena(&mut w, &arena);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let _ = get_arena(&mut ByteReader::new(&bytes[..cut]));
        }
    }

    #[test]
    fn corrupt_tags_are_rejected() {
        let mut w = ByteWriter::new();
        w.len(1);
        w.u8(0); // sort bool
        w.u8(200); // bogus term tag
        let bytes = w.into_bytes();
        assert!(get_arena(&mut ByteReader::new(&bytes)).is_err());
    }
}
