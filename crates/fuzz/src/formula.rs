//! Oracle (d): brute-force enumeration vs the DPLL(T) solver.
//!
//! Random formulas over a small fixed atom pool are checked two ways:
//! exhaustive enumeration over a finite domain, and the production
//! [`SmtSolver`]. On the *clamp-complete* fragment (boolean atoms plus
//! `var ⊲ const` with constants in `0..=3`) any satisfying assignment
//! over ℤ can be clamped into the enumeration domain, so the two
//! verdicts must agree exactly; with variable–variable atoms and
//! ±arithmetic the enumeration witness is still sound, so `Sat` is
//! mandatory whenever enumeration finds one.

use pinpoint_smt::{SmtResult, SmtSolver, Sort, TermArena, TermId};
use pinpoint_workload::rng::SmallRng;

const NB: usize = 3;
const NI: usize = 3;
/// Family-A atoms compare variables against constants in `0..=3`, so
/// this domain makes enumeration complete there.
const DOM: [i64; 6] = [-1, 0, 1, 2, 3, 4];

#[derive(Debug, Clone, Copy)]
enum CmpOp {
    Lt,
    Le,
    Eq,
    Ne,
}

#[derive(Debug, Clone)]
enum IntExpr {
    Var(usize),
    Const(i64),
    Add(Box<IntExpr>, Box<IntExpr>),
    Sub(Box<IntExpr>, Box<IntExpr>),
}

#[derive(Debug, Clone)]
enum Formula {
    BVar(usize),
    Cmp(CmpOp, IntExpr, IntExpr),
    Not(Box<Formula>),
    And(Box<Formula>, Box<Formula>),
    Or(Box<Formula>, Box<Formula>),
}

fn eval_expr(e: &IntExpr, xs: &[i64]) -> i64 {
    match e {
        IntExpr::Var(i) => xs[*i],
        IntExpr::Const(c) => *c,
        IntExpr::Add(a, b) => eval_expr(a, xs) + eval_expr(b, xs),
        IntExpr::Sub(a, b) => eval_expr(a, xs) - eval_expr(b, xs),
    }
}

fn eval_formula(f: &Formula, bs: &[bool], xs: &[i64]) -> bool {
    match f {
        Formula::BVar(i) => bs[*i],
        Formula::Cmp(op, a, b) => {
            let (a, b) = (eval_expr(a, xs), eval_expr(b, xs));
            match op {
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
            }
        }
        Formula::Not(x) => !eval_formula(x, bs, xs),
        Formula::And(a, b) => eval_formula(a, bs, xs) && eval_formula(b, bs, xs),
        Formula::Or(a, b) => eval_formula(a, bs, xs) || eval_formula(b, bs, xs),
    }
}

fn term_of_expr(arena: &mut TermArena, e: &IntExpr) -> TermId {
    match e {
        IntExpr::Var(i) => arena.var(format!("ox{i}"), Sort::Int),
        IntExpr::Const(c) => arena.int(*c),
        IntExpr::Add(a, b) => {
            let (a, b) = (term_of_expr(arena, a), term_of_expr(arena, b));
            arena.add2(a, b)
        }
        IntExpr::Sub(a, b) => {
            let (a, b) = (term_of_expr(arena, a), term_of_expr(arena, b));
            arena.sub(a, b)
        }
    }
}

fn term_of_formula(arena: &mut TermArena, f: &Formula) -> TermId {
    match f {
        Formula::BVar(i) => arena.var(format!("ob{i}"), Sort::Bool),
        Formula::Cmp(op, a, b) => {
            let (a, b) = (term_of_expr(arena, a), term_of_expr(arena, b));
            match op {
                CmpOp::Lt => arena.lt(a, b),
                CmpOp::Le => arena.le(a, b),
                CmpOp::Eq => arena.eq(a, b),
                CmpOp::Ne => arena.ne(a, b),
            }
        }
        Formula::Not(x) => {
            let t = term_of_formula(arena, x);
            arena.not(t)
        }
        Formula::And(a, b) => {
            let (a, b) = (term_of_formula(arena, a), term_of_formula(arena, b));
            arena.and2(a, b)
        }
        Formula::Or(a, b) => {
            let (a, b) = (term_of_formula(arena, a), term_of_formula(arena, b));
            arena.or2(a, b)
        }
    }
}

/// Exhaustive satisfiability over `NB` booleans × `NI` ints from [`DOM`],
/// honouring fixed boolean assignments from a solver model.
fn enumerate_sat(f: &Formula, fixed: &[(usize, bool)]) -> bool {
    for bits in 0..(1u32 << NB) {
        let bs: Vec<bool> = (0..NB).map(|i| bits & (1 << i) != 0).collect();
        if fixed.iter().any(|&(i, v)| bs[i] != v) {
            continue;
        }
        for &x0 in &DOM {
            for &x1 in &DOM {
                for &x2 in &DOM {
                    if eval_formula(f, &bs, &[x0, x1, x2]) {
                        return true;
                    }
                }
            }
        }
    }
    false
}

fn gen_cmp_op(rng: &mut SmallRng) -> CmpOp {
    match rng.gen_range(0..4) {
        0 => CmpOp::Lt,
        1 => CmpOp::Le,
        2 => CmpOp::Eq,
        _ => CmpOp::Ne,
    }
}

/// Clamp-complete leaves: booleans and `var ⊲ const`, constants `0..=3`.
fn gen_leaf_a(rng: &mut SmallRng) -> Formula {
    if rng.gen_range(0..2) == 0 {
        Formula::BVar(rng.gen_range(0..NB))
    } else {
        Formula::Cmp(
            gen_cmp_op(rng),
            IntExpr::Var(rng.gen_range(0..NI)),
            IntExpr::Const(rng.gen_range(0..4) as i64),
        )
    }
}

/// Leaves with variable–variable comparisons and ±arithmetic, where
/// enumeration is only sound (one-directional).
fn gen_leaf_b(rng: &mut SmallRng) -> Formula {
    let lhs = match rng.gen_range(0..3) {
        0 => IntExpr::Var(rng.gen_range(0..NI)),
        1 => IntExpr::Add(
            Box::new(IntExpr::Var(rng.gen_range(0..NI))),
            Box::new(IntExpr::Var(rng.gen_range(0..NI))),
        ),
        _ => IntExpr::Sub(
            Box::new(IntExpr::Var(rng.gen_range(0..NI))),
            Box::new(IntExpr::Var(rng.gen_range(0..NI))),
        ),
    };
    let rhs = if rng.gen_range(0..2) == 0 {
        IntExpr::Var(rng.gen_range(0..NI))
    } else {
        IntExpr::Const(rng.gen_range(0..4) as i64)
    };
    if rng.gen_range(0..4) == 0 {
        Formula::BVar(rng.gen_range(0..NB))
    } else {
        Formula::Cmp(gen_cmp_op(rng), lhs, rhs)
    }
}

fn gen_formula(rng: &mut SmallRng, depth: usize, family_a: bool) -> Formula {
    if depth == 0 || rng.gen_range(0..4) == 0 {
        let l = if family_a {
            gen_leaf_a(rng)
        } else {
            gen_leaf_b(rng)
        };
        if rng.gen_range(0..3) == 0 {
            Formula::Not(Box::new(l))
        } else {
            l
        }
    } else {
        let a = Box::new(gen_formula(rng, depth - 1, family_a));
        let b = Box::new(gen_formula(rng, depth - 1, family_a));
        if rng.gen_range(0..2) == 0 {
            Formula::And(a, b)
        } else {
            Formula::Or(a, b)
        }
    }
}

fn fixed_bools(model: &[(String, bool)]) -> Vec<(usize, bool)> {
    model
        .iter()
        .filter_map(|(name, v)| {
            name.strip_prefix("ob")
                .and_then(|i| i.parse::<usize>().ok())
                .map(|i| (i, *v))
        })
        .collect()
}

/// Runs the enumeration-vs-DPLL(T) oracle for one seed. Checks one
/// clamp-complete formula (exact agreement, model extension) and one
/// arithmetic formula (soundness direction).
pub fn smt_oracle(seed: u64) -> Result<(), (String, String)> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5317_0AC1_E0F0_12A5);
    // Family A: exact agreement.
    let f = gen_formula(&mut rng, 3, true);
    let mut arena = TermArena::new();
    let t = term_of_formula(&mut arena, &f);
    let expected = enumerate_sat(&f, &[]);
    let mut smt = SmtSolver::new();
    let (got, model) = smt.check_with_model(&arena, t);
    if (got == SmtResult::Sat) != expected {
        return Err((
            "exactness".into(),
            format!("solver said {got:?}, enumeration said sat={expected} on {f:?}"),
        ));
    }
    if got == SmtResult::Sat && !enumerate_sat(&f, &fixed_bools(&model)) {
        return Err((
            "model".into(),
            format!("model {model:?} does not extend to a witness of {f:?}"),
        ));
    }
    // Family B: enumeration witnesses are sound.
    let f = gen_formula(&mut rng, 3, false);
    let mut arena = TermArena::new();
    let t = term_of_formula(&mut arena, &f);
    let mut smt = SmtSolver::new();
    let got = smt.check(&arena, t);
    if enumerate_sat(&f, &[]) && got != SmtResult::Sat {
        return Err((
            "soundness".into(),
            format!("solver refuted a formula with a finite witness: {f:?}"),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_clean_over_many_seeds() {
        for seed in 0..64 {
            smt_oracle(seed).unwrap_or_else(|(tag, d)| panic!("seed {seed} [{tag}]: {d}"));
        }
    }
}
