//! Oracle (d): brute-force enumeration vs the DPLL(T) solver.
//!
//! Random formulas over a small fixed atom pool are checked two ways:
//! exhaustive enumeration over a finite domain, and the production
//! [`SmtSolver`]. On the *clamp-complete* fragment (boolean atoms plus
//! `var ⊲ const` with constants in `0..=3`) any satisfying assignment
//! over ℤ can be clamped into the enumeration domain, so the two
//! verdicts must agree exactly; with variable–variable atoms and
//! ±arithmetic the enumeration witness is still sound, so `Sat` is
//! mandatory whenever enumeration finds one.

use pinpoint_smt::{
    canon_info, SmtResult, SmtSolver, Sort, TermArena, TermId, Verdict, VerdictTable,
};
use pinpoint_workload::rng::SmallRng;

const NB: usize = 3;
const NI: usize = 3;
/// Family-A atoms compare variables against constants in `0..=3`, so
/// this domain makes enumeration complete there.
const DOM: [i64; 6] = [-1, 0, 1, 2, 3, 4];

#[derive(Debug, Clone, Copy)]
enum CmpOp {
    Lt,
    Le,
    Eq,
    Ne,
}

#[derive(Debug, Clone)]
enum IntExpr {
    Var(usize),
    Const(i64),
    Add(Box<IntExpr>, Box<IntExpr>),
    Sub(Box<IntExpr>, Box<IntExpr>),
}

#[derive(Debug, Clone)]
enum Formula {
    BVar(usize),
    Cmp(CmpOp, IntExpr, IntExpr),
    Not(Box<Formula>),
    And(Box<Formula>, Box<Formula>),
    Or(Box<Formula>, Box<Formula>),
}

fn eval_expr(e: &IntExpr, xs: &[i64]) -> i64 {
    match e {
        IntExpr::Var(i) => xs[*i],
        IntExpr::Const(c) => *c,
        IntExpr::Add(a, b) => eval_expr(a, xs) + eval_expr(b, xs),
        IntExpr::Sub(a, b) => eval_expr(a, xs) - eval_expr(b, xs),
    }
}

fn eval_formula(f: &Formula, bs: &[bool], xs: &[i64]) -> bool {
    match f {
        Formula::BVar(i) => bs[*i],
        Formula::Cmp(op, a, b) => {
            let (a, b) = (eval_expr(a, xs), eval_expr(b, xs));
            match op {
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
            }
        }
        Formula::Not(x) => !eval_formula(x, bs, xs),
        Formula::And(a, b) => eval_formula(a, bs, xs) && eval_formula(b, bs, xs),
        Formula::Or(a, b) => eval_formula(a, bs, xs) || eval_formula(b, bs, xs),
    }
}

/// Variable-name prefixes for one term build. The verdict oracle builds
/// the same [`Formula`] twice under different prefixes to exercise the
/// alpha-invariance of the canonical fingerprint.
#[derive(Debug, Clone, Copy)]
struct Names {
    bool_pfx: &'static str,
    int_pfx: &'static str,
}

const ORACLE_NAMES: Names = Names {
    bool_pfx: "ob",
    int_pfx: "ox",
};

fn term_of_expr(arena: &mut TermArena, e: &IntExpr, names: Names) -> TermId {
    match e {
        IntExpr::Var(i) => arena.var(format!("{}{i}", names.int_pfx), Sort::Int),
        IntExpr::Const(c) => arena.int(*c),
        IntExpr::Add(a, b) => {
            let (a, b) = (term_of_expr(arena, a, names), term_of_expr(arena, b, names));
            arena.add2(a, b)
        }
        IntExpr::Sub(a, b) => {
            let (a, b) = (term_of_expr(arena, a, names), term_of_expr(arena, b, names));
            arena.sub(a, b)
        }
    }
}

fn term_of_formula(arena: &mut TermArena, f: &Formula, names: Names) -> TermId {
    match f {
        Formula::BVar(i) => arena.var(format!("{}{i}", names.bool_pfx), Sort::Bool),
        Formula::Cmp(op, a, b) => {
            let (a, b) = (term_of_expr(arena, a, names), term_of_expr(arena, b, names));
            match op {
                CmpOp::Lt => arena.lt(a, b),
                CmpOp::Le => arena.le(a, b),
                CmpOp::Eq => arena.eq(a, b),
                CmpOp::Ne => arena.ne(a, b),
            }
        }
        Formula::Not(x) => {
            let t = term_of_formula(arena, x, names);
            arena.not(t)
        }
        Formula::And(a, b) => {
            let (a, b) = (
                term_of_formula(arena, a, names),
                term_of_formula(arena, b, names),
            );
            arena.and2(a, b)
        }
        Formula::Or(a, b) => {
            let (a, b) = (
                term_of_formula(arena, a, names),
                term_of_formula(arena, b, names),
            );
            arena.or2(a, b)
        }
    }
}

/// Exhaustive satisfiability over `NB` booleans × `NI` ints from [`DOM`],
/// honouring fixed boolean assignments from a solver model.
fn enumerate_sat(f: &Formula, fixed: &[(usize, bool)]) -> bool {
    for bits in 0..(1u32 << NB) {
        let bs: Vec<bool> = (0..NB).map(|i| bits & (1 << i) != 0).collect();
        if fixed.iter().any(|&(i, v)| bs[i] != v) {
            continue;
        }
        for &x0 in &DOM {
            for &x1 in &DOM {
                for &x2 in &DOM {
                    if eval_formula(f, &bs, &[x0, x1, x2]) {
                        return true;
                    }
                }
            }
        }
    }
    false
}

fn gen_cmp_op(rng: &mut SmallRng) -> CmpOp {
    match rng.gen_range(0..4) {
        0 => CmpOp::Lt,
        1 => CmpOp::Le,
        2 => CmpOp::Eq,
        _ => CmpOp::Ne,
    }
}

/// Clamp-complete leaves: booleans and `var ⊲ const`, constants `0..=3`.
fn gen_leaf_a(rng: &mut SmallRng) -> Formula {
    if rng.gen_range(0..2) == 0 {
        Formula::BVar(rng.gen_range(0..NB))
    } else {
        Formula::Cmp(
            gen_cmp_op(rng),
            IntExpr::Var(rng.gen_range(0..NI)),
            IntExpr::Const(rng.gen_range(0..4) as i64),
        )
    }
}

/// Leaves with variable–variable comparisons and ±arithmetic, where
/// enumeration is only sound (one-directional).
fn gen_leaf_b(rng: &mut SmallRng) -> Formula {
    let lhs = match rng.gen_range(0..3) {
        0 => IntExpr::Var(rng.gen_range(0..NI)),
        1 => IntExpr::Add(
            Box::new(IntExpr::Var(rng.gen_range(0..NI))),
            Box::new(IntExpr::Var(rng.gen_range(0..NI))),
        ),
        _ => IntExpr::Sub(
            Box::new(IntExpr::Var(rng.gen_range(0..NI))),
            Box::new(IntExpr::Var(rng.gen_range(0..NI))),
        ),
    };
    let rhs = if rng.gen_range(0..2) == 0 {
        IntExpr::Var(rng.gen_range(0..NI))
    } else {
        IntExpr::Const(rng.gen_range(0..4) as i64)
    };
    if rng.gen_range(0..4) == 0 {
        Formula::BVar(rng.gen_range(0..NB))
    } else {
        Formula::Cmp(gen_cmp_op(rng), lhs, rhs)
    }
}

fn gen_formula(rng: &mut SmallRng, depth: usize, family_a: bool) -> Formula {
    if depth == 0 || rng.gen_range(0..4) == 0 {
        let l = if family_a {
            gen_leaf_a(rng)
        } else {
            gen_leaf_b(rng)
        };
        if rng.gen_range(0..3) == 0 {
            Formula::Not(Box::new(l))
        } else {
            l
        }
    } else {
        let a = Box::new(gen_formula(rng, depth - 1, family_a));
        let b = Box::new(gen_formula(rng, depth - 1, family_a));
        if rng.gen_range(0..2) == 0 {
            Formula::And(a, b)
        } else {
            Formula::Or(a, b)
        }
    }
}

fn fixed_bools(model: &[(String, bool)]) -> Vec<(usize, bool)> {
    model
        .iter()
        .filter_map(|(name, v)| {
            name.strip_prefix("ob")
                .and_then(|i| i.parse::<usize>().ok())
                .map(|i| (i, *v))
        })
        .collect()
}

/// Runs the enumeration-vs-DPLL(T) oracle for one seed. Checks one
/// clamp-complete formula (exact agreement, model extension) and one
/// arithmetic formula (soundness direction).
pub fn smt_oracle(seed: u64) -> Result<(), (String, String)> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5317_0AC1_E0F0_12A5);
    // Family A: exact agreement.
    let f = gen_formula(&mut rng, 3, true);
    let mut arena = TermArena::new();
    let t = term_of_formula(&mut arena, &f, ORACLE_NAMES);
    let expected = enumerate_sat(&f, &[]);
    let mut smt = SmtSolver::new();
    let (got, model) = smt.check_with_model(&arena, t);
    if (got == SmtResult::Sat) != expected {
        return Err((
            "exactness".into(),
            format!("solver said {got:?}, enumeration said sat={expected} on {f:?}"),
        ));
    }
    if got == SmtResult::Sat && !enumerate_sat(&f, &fixed_bools(&model)) {
        return Err((
            "model".into(),
            format!("model {model:?} does not extend to a witness of {f:?}"),
        ));
    }
    // Family B: enumeration witnesses are sound.
    let f = gen_formula(&mut rng, 3, false);
    let mut arena = TermArena::new();
    let t = term_of_formula(&mut arena, &f, ORACLE_NAMES);
    let mut smt = SmtSolver::new();
    let got = smt.check(&arena, t);
    if enumerate_sat(&f, &[]) && got != SmtResult::Sat {
        return Err((
            "soundness".into(),
            format!("solver refuted a formula with a finite witness: {f:?}"),
        ));
    }
    Ok(())
}

/// Runs the cached-vs-fresh verdict oracle for one seed: random formulas
/// are solved fresh to populate a [`VerdictTable`] keyed by canonical
/// fingerprint (exactly like a cold detection run), then rebuilt under
/// *renamed* variables and answered from the table. Every rebuild must
/// hit (fingerprints are alpha-invariant), every replayed verdict must
/// match what a fresh solver says about the renamed build, and on the
/// clamp-complete family a replayed `Sat` model — transferred across the
/// renaming through canonical variable indices — must extend to a real
/// witness.
pub fn verdicts_oracle(seed: u64) -> Result<(), (String, String)> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7E4D_1C7C_AC8E_D0AB);
    let formulas: Vec<(Formula, bool)> = (0..4)
        .map(|i| {
            let family_a = i % 2 == 0;
            (gen_formula(&mut rng, 3, family_a), family_a)
        })
        .collect();
    let renamed = Names {
        bool_pfx: "qb",
        int_pfx: "qx",
    };

    // Cold pass: fresh solves populate the table under canonical
    // fingerprints, with `Sat` models rewritten to canonical indices.
    let mut table = VerdictTable::new();
    for (f, _) in &formulas {
        let mut arena = TermArena::new();
        let t = term_of_formula(&mut arena, f, ORACLE_NAMES);
        let info = canon_info(&arena, t);
        let mut smt = SmtSolver::new();
        let (got, model) = smt.check_with_model(&arena, t);
        let verdict = match got {
            SmtResult::Unsat => Verdict::Unsat,
            SmtResult::Sat => {
                let mut vals: Vec<(u32, bool)> = model
                    .iter()
                    .filter_map(|(name, v)| {
                        let idx = info.vars.iter().position(|(n, _)| n == name)?;
                        Some((u32::try_from(idx).ok()?, *v))
                    })
                    .collect();
                vals.sort_unstable();
                Verdict::Sat(vals)
            }
        };
        table.insert(info.fingerprint, verdict);
    }

    // Warm pass: alpha-renamed rebuilds must be answered by the table,
    // and the answers must agree with fresh solves.
    for (f, family_a) in &formulas {
        let mut arena = TermArena::new();
        let t = term_of_formula(&mut arena, f, renamed);
        let info = canon_info(&arena, t);
        let Some(verdict) = table.get(info.fingerprint) else {
            return Err((
                "verdict-miss".into(),
                format!("alpha-renamed formula missed the verdict table: {f:?}"),
            ));
        };
        let mut smt = SmtSolver::new();
        let fresh = smt.check(&arena, t);
        let replayed = match verdict {
            Verdict::Unsat => SmtResult::Unsat,
            Verdict::Sat(_) => SmtResult::Sat,
        };
        if replayed != fresh {
            return Err((
                "verdict-mismatch".into(),
                format!("cached verdict {replayed:?} but fresh solve says {fresh:?} on {f:?}"),
            ));
        }
        if let Verdict::Sat(vals) = verdict {
            let mut fixed = Vec::new();
            for &(idx, v) in vals {
                let Some((name, _)) = info.vars.get(idx as usize) else {
                    return Err((
                        "verdict-index".into(),
                        format!("canonical index {idx} out of range for {f:?}"),
                    ));
                };
                if let Some(i) = name
                    .strip_prefix(renamed.bool_pfx)
                    .and_then(|s| s.parse::<usize>().ok())
                {
                    fixed.push((i, v));
                }
            }
            if *family_a && !enumerate_sat(f, &fixed) {
                return Err((
                    "verdict-model".into(),
                    format!("replayed model {vals:?} does not extend to a witness of {f:?}"),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_clean_over_many_seeds() {
        for seed in 0..64 {
            smt_oracle(seed).unwrap_or_else(|(tag, d)| panic!("seed {seed} [{tag}]: {d}"));
        }
    }

    #[test]
    fn verdict_oracle_clean_over_many_seeds() {
        for seed in 0..64 {
            verdicts_oracle(seed).unwrap_or_else(|(tag, d)| panic!("seed {seed} [{tag}]: {d}"));
        }
    }
}
