//! Delta-debugging minimizer for failing programs.
//!
//! Given a program and a predicate ("does this still fail the same
//! way?"), the shrinker greedily applies three reduction levels until a
//! fixpoint:
//!
//! 1. **function-level** — drop whole top-level items (`fn …` bodies,
//!    `global` declarations);
//! 2. **statement-level** — drop individual lines;
//! 3. **operand-level** — simplify in place: branch/loop conditions
//!    become `true`/`false`, `let` initializers become the simplest
//!    constant of their declared type.
//!
//! Every predicate evaluation is counted into `steps` (reported as
//! `fuzz.shrink_steps`), and the whole process is capped so a
//! pathological predicate cannot stall a fuzz run. Invalid candidates
//! need no special handling: a program that no longer compiles fails
//! the oracle *differently* (or not at all), so the predicate rejects
//! it and the shrinker keeps the previous form.

/// Minimizes `src` while `pred` keeps returning `true`.
///
/// `steps` is incremented once per predicate evaluation; the function
/// returns early if it reaches `max_steps`.
pub fn shrink(
    src: &str,
    pred: &mut dyn FnMut(&str) -> bool,
    steps: &mut u64,
    max_steps: u64,
) -> String {
    let mut cur = src.to_string();
    loop {
        let before = cur.len();
        cur = pass_items(&cur, pred, steps, max_steps);
        cur = pass_lines(&cur, pred, steps, max_steps);
        cur = pass_operands(&cur, pred, steps, max_steps);
        if cur.len() >= before || *steps >= max_steps {
            return cur;
        }
    }
}

/// Spans of top-level items: a `fn` line through its column-0 closing
/// brace, a single `global` line, or any other single line.
fn item_spans(lines: &[&str]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        if lines[i].starts_with("fn ") {
            let mut j = i;
            while j < lines.len() && lines[j].trim_end() != "}" {
                j += 1;
            }
            let end = j.min(lines.len() - 1);
            spans.push((i, end));
            i = end + 1;
        } else {
            spans.push((i, i));
            i += 1;
        }
    }
    spans
}

fn pass_items(
    src: &str,
    pred: &mut dyn FnMut(&str) -> bool,
    steps: &mut u64,
    max_steps: u64,
) -> String {
    let mut cur = src.to_string();
    let mut changed = true;
    while changed && *steps < max_steps {
        changed = false;
        let lines: Vec<&str> = cur.lines().collect();
        let spans = item_spans(&lines);
        // Remove later items first: helpers only call forward, so the
        // tail is the least depended-upon.
        for &(a, b) in spans.iter().rev() {
            if *steps >= max_steps {
                break;
            }
            let candidate: String = lines
                .iter()
                .enumerate()
                .filter(|(i, _)| *i < a || *i > b)
                .map(|(_, l)| format!("{l}\n"))
                .collect();
            *steps += 1;
            if pred(&candidate) {
                cur = candidate;
                changed = true;
                break; // spans are stale; rescan
            }
        }
    }
    cur
}

fn pass_lines(
    src: &str,
    pred: &mut dyn FnMut(&str) -> bool,
    steps: &mut u64,
    max_steps: u64,
) -> String {
    let mut cur = src.to_string();
    let mut changed = true;
    while changed && *steps < max_steps {
        changed = false;
        let lines: Vec<String> = cur.lines().map(str::to_string).collect();
        for i in (0..lines.len()).rev() {
            if *steps >= max_steps {
                break;
            }
            let candidate: String = lines
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, l)| format!("{l}\n"))
                .collect();
            *steps += 1;
            if pred(&candidate) {
                cur = candidate;
                changed = true;
                break;
            }
        }
    }
    cur
}

/// In-place line simplifications tried by the operand pass.
fn simplified(line: &str) -> Vec<String> {
    let indent_len = line.len() - line.trim_start().len();
    let (indent, rest) = line.split_at(indent_len);
    let mut out = Vec::new();
    if rest.starts_with("if (") || rest.starts_with("while (") {
        let keyword = if rest.starts_with("if") {
            "if"
        } else {
            "while"
        };
        let tail = if rest.trim_end().ends_with('{') {
            " {"
        } else {
            ""
        };
        for c in ["true", "false"] {
            let cand = format!("{indent}{keyword} ({c}){tail}");
            if cand != line.trim_end() {
                out.push(cand);
            }
        }
    } else if let Some((head, _)) = rest.split_once('=') {
        if let Some(decl) = head.strip_prefix("let ") {
            // `let name: ty = …;` → simplest constant of `ty`.
            let replacement = if decl.contains("int*") {
                "malloc()"
            } else if decl.contains("bool") {
                "nondet_bool()"
            } else {
                "0"
            };
            out.push(format!("{indent}{} = {replacement};", head.trim_end()));
        }
    }
    out
}

fn pass_operands(
    src: &str,
    pred: &mut dyn FnMut(&str) -> bool,
    steps: &mut u64,
    max_steps: u64,
) -> String {
    let mut lines: Vec<String> = src.lines().map(str::to_string).collect();
    for i in 0..lines.len() {
        if *steps >= max_steps {
            break;
        }
        for cand_line in simplified(&lines[i]) {
            if cand_line == lines[i] {
                continue;
            }
            let mut cand_lines = lines.clone();
            cand_lines[i] = cand_line;
            let candidate: String = cand_lines.iter().map(|l| format!("{l}\n")).collect();
            *steps += 1;
            if pred(&candidate) {
                lines = cand_lines;
                break;
            }
        }
    }
    lines.iter().map(|l| format!("{l}\n")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Predicate: program still contains both a `free(` and a deref of
    /// the freed name — a stand-in for "still triggers the UAF bug".
    fn still_has_uaf(src: &str) -> bool {
        pinpoint_ir::compile(src).is_ok() && src.contains("free(p0)") && src.contains("*p0")
    }

    #[test]
    fn shrinks_to_the_core() {
        let src = "\
global gi0: int;
fn helper(a: int, b: int) -> int {
    let s: int = a + b;
    return s;
}
fn main() {
    let v: int = 3;
    let p0: int* = malloc();
    let q: int* = malloc();
    *q = 9;
    free(p0);
    let x: int = *p0;
    print(x);
    print(v);
    return;
}
";
        let mut steps = 0;
        let small = shrink(src, &mut |s| still_has_uaf(s), &mut steps, 2_000);
        assert!(still_has_uaf(&small));
        assert!(steps > 0);
        // The helper, the global, and the unrelated statements must go.
        assert!(!small.contains("helper"), "{small}");
        assert!(!small.contains("global"), "{small}");
        assert!(!small.contains("*q = 9"), "{small}");
        assert!(small.lines().count() <= 8, "{small}");
    }

    #[test]
    fn operand_pass_simplifies_conditions() {
        let src = "\
fn main() {
    let p0: int* = malloc();
    let c: bool = nondet_bool();
    if (c && 1 < 2) {
        free(p0);
    }
    print(*p0);
    return;
}
";
        let mut steps = 0;
        let small = shrink(src, &mut |s| still_has_uaf(s), &mut steps, 2_000);
        assert!(still_has_uaf(&small));
        assert!(
            !small.contains("c && 1 < 2") || small.lines().count() < src.lines().count(),
            "{small}"
        );
    }

    #[test]
    fn respects_step_cap() {
        let src = "fn main() {\n    let x: int = 1;\n    print(x);\n    return;\n}\n";
        let mut steps = 0;
        let _ = shrink(src, &mut |_| false, &mut steps, 7);
        assert!(steps <= 7);
    }
}
