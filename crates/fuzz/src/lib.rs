//! `pinpoint-fuzz`: the differential fuzzing and auto-shrinking
//! subsystem of the Pinpoint reproduction.
//!
//! The analysis ships a stack of consistency contracts spread across
//! the test suite — sparse reports are a subset of the layered
//! baseline's, reports are byte-identical for any thread count, warm
//! incremental results equal cold rebuilds, the DPLL(T) solver agrees
//! with brute-force enumeration, and verdicts replayed from the
//! canonical-fingerprint cache equal fresh solves. This crate turns
//! those contracts into an
//! *engine*: a seeded grammar generator ([`pinpoint_workload::fuzzgen`])
//! produces arbitrary well-typed §3 programs, each program is pushed
//! through a configurable stack of [`OracleKind`]s, panics are caught
//! and deduplicated by site, and every fresh failure is minimized by a
//! delta-debugging [`shrink`]er before being written out as a
//! reproducer for `tests/corpus/fuzz-regressions/`.
//!
//! ```
//! use pinpoint_fuzz::{run_fuzz, FuzzConfig, OracleKind};
//!
//! let outcome = run_fuzz(&FuzzConfig {
//!     seed: 5,
//!     iters: 3,
//!     oracles: vec![OracleKind::Verify],
//!     ..FuzzConfig::default()
//! });
//! assert_eq!(outcome.iters, 3);
//! assert_eq!(outcome.discrepancies + outcome.crashes, 0);
//! ```

#![warn(missing_docs)]

pub mod formula;
pub mod oracles;
pub mod shrink;

use oracles::RunOutcome;
use pinpoint_workload::fuzzgen::FuzzGenConfig;
use pinpoint_workload::rng::SmallRng;
use std::collections::HashSet;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// One differential oracle in the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OracleKind {
    /// Sparse UAF reports must be a subset (by function-name pair) of
    /// the layered FSVFG baseline's warnings.
    Baseline,
    /// Reports must be byte-identical for 1 and N worker threads.
    Threads,
    /// Warm [`pinpoint_core::Workspace`] results after random edits
    /// must equal cold rebuilds, and persistent-cache runs must equal
    /// cache-less runs.
    Warm,
    /// DPLL(T) verdicts must agree with brute-force enumeration on the
    /// clamp-complete formula fragment (and never refute a finite
    /// witness elsewhere).
    Smt,
    /// Verdicts replayed from a canonical-fingerprint
    /// [`pinpoint_smt::VerdictTable`] must equal fresh solves — including
    /// across alpha-renaming, and with replayed `Sat` models still
    /// extending to real witnesses.
    Verdicts,
    /// `verify_module` invariants must hold after lowering and after
    /// IR optimisation.
    Verify,
    /// The summary engine's whole-program reports must be byte-identical
    /// to the demand engine's — at 1 and N threads, and on an
    /// alpha-renamed rebuild (helper renaming permutes `FuncId`s, so the
    /// bottom-up SCC schedule runs in a different order).
    Engines,
}

impl OracleKind {
    /// All oracles, in canonical execution order.
    pub const ALL: [OracleKind; 7] = [
        OracleKind::Baseline,
        OracleKind::Threads,
        OracleKind::Warm,
        OracleKind::Smt,
        OracleKind::Verdicts,
        OracleKind::Verify,
        OracleKind::Engines,
    ];

    /// Stable lowercase name (CLI flag value, counter suffix).
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::Baseline => "baseline",
            OracleKind::Threads => "threads",
            OracleKind::Warm => "warm",
            OracleKind::Smt => "smt",
            OracleKind::Verdicts => "verdicts",
            OracleKind::Verify => "verify",
            OracleKind::Engines => "engines",
        }
    }

    /// Parses a CLI flag value (`all` is handled by the caller).
    pub fn parse(s: &str) -> Option<OracleKind> {
        OracleKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Whether this oracle consumes the generated program (and so has
    /// something for the shrinker to minimize). The formula-based
    /// oracles ([`OracleKind::Smt`], [`OracleKind::Verdicts`]) derive
    /// everything from the seed instead.
    pub fn uses_program(self) -> bool {
        !matches!(self, OracleKind::Smt | OracleKind::Verdicts)
    }
}

/// Configuration of one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; every iteration derives its program seed from it.
    pub seed: u64,
    /// Number of programs to generate and check.
    pub iters: u64,
    /// Optional wall-clock budget; the run stops early when exceeded.
    pub time_budget: Option<Duration>,
    /// Oracles to run on each program.
    pub oracles: Vec<OracleKind>,
    /// Where to write minimized reproducers (`None` = don't write).
    pub out_dir: Option<PathBuf>,
    /// Worker count for the thread-determinism oracle (≥ 2).
    pub threads: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0,
            iters: 100,
            time_budget: None,
            oracles: OracleKind::ALL.to_vec(),
            out_dir: None,
            threads: 4,
        }
    }
}

/// What a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// Two configurations disagreed.
    Discrepancy,
    /// A panic escaped the pipeline.
    Crash,
}

/// One deduplicated failure, minimized where a program is involved.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The oracle that failed.
    pub oracle: OracleKind,
    /// The iteration (0-based) whose program triggered it.
    pub iteration: u64,
    /// Discrepancy or crash.
    pub kind: FindingKind,
    /// Human-readable description (tag, mismatch detail, panic site).
    pub detail: String,
    /// The minimized program (`None` for program-less oracles like SMT).
    pub program: Option<String>,
    /// Oracle evaluations spent shrinking this finding.
    pub shrink_steps: u64,
    /// Where the reproducer was written, if anywhere.
    pub reproducer: Option<PathBuf>,
}

/// Aggregate result of a fuzz run. The counter fields feed the
/// `fuzz.{iters,discrepancies,crashes,shrink_steps}` metrics.
#[derive(Debug, Clone, Default)]
pub struct FuzzOutcome {
    /// Iterations actually executed (≤ configured under a time budget).
    pub iters: u64,
    /// Total discrepancy observations (before dedup).
    pub discrepancies: u64,
    /// Total crash observations (before dedup).
    pub crashes: u64,
    /// Total shrinker oracle evaluations.
    pub shrink_steps: u64,
    /// Deduplicated, minimized findings.
    pub findings: Vec<Finding>,
    /// Wall time of the run.
    pub elapsed: Duration,
}

/// Derives the program seed of iteration `i` from the master seed.
fn program_seed(master: u64, i: u64) -> u64 {
    let mut r = SmallRng::seed_from_u64(master.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i);
    r.next_u64()
}

/// Runs the configured oracle stack over `iters` generated programs.
///
/// Failures are deduplicated — crashes by panic site, discrepancies by
/// `(oracle, tag)` — and each fresh failure is shrunk and (if
/// [`FuzzConfig::out_dir`] is set) written as a reproducer.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzOutcome {
    let _guard = oracles::PanicCapture::install();
    let start = Instant::now();
    let mut out = FuzzOutcome::default();
    let mut seen: HashSet<String> = HashSet::new();
    for i in 0..cfg.iters {
        if let Some(budget) = cfg.time_budget {
            if start.elapsed() >= budget {
                break;
            }
        }
        let pseed = program_seed(cfg.seed, i);
        let src = pinpoint_workload::fuzzgen::generate(&FuzzGenConfig {
            seed: pseed,
            functions: 5,
            max_stmts: 8,
            globals: 2,
            recursion: true,
        });
        for &oracle in &cfg.oracles {
            let outcome = oracles::run(oracle, &src, pseed, cfg.threads);
            let (kind, key, detail) = match &outcome {
                RunOutcome::Pass => continue,
                RunOutcome::Discrepancy { tag, detail } => (
                    FindingKind::Discrepancy,
                    format!("{}:{tag}", oracle.name()),
                    detail.clone(),
                ),
                RunOutcome::Crash { site, message } => (
                    FindingKind::Crash,
                    format!("panic:{site}"),
                    format!("panic at {site}: {message}"),
                ),
            };
            match kind {
                FindingKind::Discrepancy => out.discrepancies += 1,
                FindingKind::Crash => out.crashes += 1,
            }
            if !seen.insert(key.clone()) {
                continue;
            }
            let mut finding = Finding {
                oracle,
                iteration: i,
                kind,
                detail,
                program: None,
                shrink_steps: 0,
                reproducer: None,
            };
            if oracle.uses_program() {
                let mut steps = 0u64;
                let minimized = shrink::shrink(
                    &src,
                    &mut |candidate| {
                        oracles::run(oracle, candidate, pseed, cfg.threads).same_class(&outcome)
                    },
                    &mut steps,
                    2_000,
                );
                out.shrink_steps += steps;
                finding.shrink_steps = steps;
                finding.program = Some(minimized);
            }
            if let Some(dir) = &cfg.out_dir {
                finding.reproducer = write_reproducer(dir, &finding, &key);
            }
            out.findings.push(finding);
        }
        out.iters += 1;
    }
    out.elapsed = start.elapsed();
    out
}

/// Writes a reproducer file for `finding` into `dir`.
///
/// Discrepancy reproducers become corpus-ready `.pp` files whose
/// `// expect:` header pins the single-threaded reference verdicts;
/// crash reproducers (whose programs cannot be analysed to produce a
/// reference) are written as `.txt` so `corpus_runner` skips them until
/// a human triages the fix.
fn write_reproducer(dir: &std::path::Path, finding: &Finding, key: &str) -> Option<PathBuf> {
    let program = finding.program.as_deref()?;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in key.bytes().chain(program.bytes()) {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    let expect = oracles::reference_expectations(program);
    let ext = if expect.is_some() { "pp" } else { "txt" };
    let path = dir.join(format!("fuzz-{}-{h:08x}.{ext}", finding.oracle.name()));
    let mut body = String::new();
    body.push_str(&format!(
        "// fuzz-regression: oracle={} {}\n",
        finding.oracle.name(),
        finding.detail.lines().next().unwrap_or_default()
    ));
    if let Some(expect) = expect {
        body.push_str(&format!("// expect: {expect}\n"));
    }
    body.push_str(program);
    if std::fs::create_dir_all(dir).is_err() {
        return None;
    }
    std::fs::write(&path, body).ok()?;
    Some(path)
}
