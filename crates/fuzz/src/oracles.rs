//! The differential oracle stack.
//!
//! Each oracle takes a generated program (plus its seed, which also
//! seeds edit scripts and formula generation) and either passes, reports
//! a *discrepancy* (two configurations disagreed), or records a *crash*
//! (a panic escaped the pipeline — caught by `catch_unwind` with the
//! panic site captured by a process-wide hook for deduplication).

use crate::{formula, OracleKind};
use pinpoint_baseline::{layered_check_uaf, Fsvfg};
use pinpoint_core::{Analysis, AnalysisBuilder, CheckerKind, Query, Workspace};
use pinpoint_workload::fuzzgen;
use pinpoint_workload::rng::SmallRng;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Result of one oracle run on one program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// The contract held.
    Pass,
    /// The contract broke. `tag` is a short stable class (dedup and
    /// shrinking key); `detail` is the human-readable mismatch.
    Discrepancy {
        /// Stable failure class, e.g. `subset` or `mismatch`.
        tag: String,
        /// Full description of the disagreement.
        detail: String,
    },
    /// A panic escaped the pipeline.
    Crash {
        /// `file:line` of the panic site (from the panic hook).
        site: String,
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl RunOutcome {
    /// Whether `self` is the same failure class as `other` — the
    /// shrinker's predicate: a candidate only counts as still-failing
    /// if it fails the *same way* (same discrepancy tag or same panic
    /// site), so minimization cannot wander onto an unrelated bug.
    pub fn same_class(&self, other: &RunOutcome) -> bool {
        match (self, other) {
            (RunOutcome::Discrepancy { tag: a, .. }, RunOutcome::Discrepancy { tag: b, .. }) => {
                a == b
            }
            (RunOutcome::Crash { site: a, .. }, RunOutcome::Crash { site: b, .. }) => a == b,
            _ => false,
        }
    }
}

/// Last panic site recorded by the [`PanicCapture`] hook.
static LAST_PANIC: Mutex<Option<(String, String)>> = Mutex::new(None);

type Hook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>;

/// RAII guard that swaps in a silent panic hook recording the panic
/// site (`file:line`) and message, and restores the previous hook on
/// drop. Install once around a fuzz run so expected panics don't spam
/// stderr and crash findings dedup by site.
pub struct PanicCapture {
    prev: Option<Hook>,
}

impl std::fmt::Debug for PanicCapture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PanicCapture").finish_non_exhaustive()
    }
}

impl PanicCapture {
    /// Installs the capture hook.
    pub fn install() -> Self {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|info| {
            let site = info
                .location()
                .map(|l| format!("{}:{}", l.file(), l.line()))
                .unwrap_or_else(|| "<unknown>".into());
            let message = if let Some(s) = info.payload().downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = info.payload().downcast_ref::<String>() {
                s.clone()
            } else {
                "<non-string payload>".into()
            };
            *LAST_PANIC.lock().unwrap() = Some((site, message));
        }));
        PanicCapture { prev: Some(prev) }
    }
}

impl Drop for PanicCapture {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            std::panic::set_hook(prev);
        }
    }
}

/// Runs one oracle on one program, converting escaped panics into
/// [`RunOutcome::Crash`].
pub fn run(kind: OracleKind, src: &str, seed: u64, threads: usize) -> RunOutcome {
    *LAST_PANIC.lock().unwrap() = None;
    let result = catch_unwind(AssertUnwindSafe(|| check(kind, src, seed, threads)));
    match result {
        Ok(Ok(())) => RunOutcome::Pass,
        Ok(Err((tag, detail))) => RunOutcome::Discrepancy { tag, detail },
        Err(_) => {
            let (site, message) = LAST_PANIC
                .lock()
                .unwrap()
                .take()
                .unwrap_or_else(|| ("<unknown>".into(), "<unknown>".into()));
            RunOutcome::Crash { site, message }
        }
    }
}

type CheckResult = Result<(), (String, String)>;

fn fail(tag: &str, detail: impl Into<String>) -> CheckResult {
    Err((tag.to_string(), detail.into()))
}

fn check(kind: OracleKind, src: &str, seed: u64, threads: usize) -> CheckResult {
    match kind {
        OracleKind::Baseline => baseline_oracle(src),
        OracleKind::Threads => threads_oracle(src, threads),
        OracleKind::Warm => warm_oracle(src, seed),
        OracleKind::Smt => formula::smt_oracle(seed),
        OracleKind::Verdicts => formula::verdicts_oracle(seed),
        OracleKind::Verify => verify_oracle(src),
        OracleKind::Engines => engines_oracle(src, threads),
    }
}

/// Renders a report set into one canonical string for byte comparison.
fn render(analysis_reports: &[pinpoint_core::Report]) -> String {
    analysis_reports
        .iter()
        .map(|r| r.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Oracle (a): every sparse UAF report's (source function, sink
/// function) pair must appear among the layered FSVFG baseline's
/// warnings — the baseline is flow-, context- and path-insensitive, so
/// its warning set over-approximates Pinpoint's.
fn baseline_oracle(src: &str) -> CheckResult {
    let analysis = match AnalysisBuilder::new().threads(1).build_source(src) {
        Ok(a) => a,
        Err(e) => {
            return fail(
                "frontend-reject",
                format!("generated program rejected: {e}"),
            )
        }
    };
    let reports = analysis.check(CheckerKind::UseAfterFree);
    if reports.is_empty() {
        return Ok(());
    }
    let module = &analysis.module;
    let g = Fsvfg::build(module);
    let warnings = layered_check_uaf(module, &g);
    let allowed: HashSet<(String, String)> = warnings
        .iter()
        .map(|w| {
            (
                module.func(w.source_func).name.clone(),
                module.func(w.sink_func).name.clone(),
            )
        })
        .collect();
    for r in &reports {
        let pair = (r.source_func_name.clone(), r.sink_func_name.clone());
        if !allowed.contains(&pair) {
            return fail(
                "subset",
                format!(
                    "sparse UAF report {} -> {} has no layered counterpart ({} warnings)\n{r}",
                    pair.0,
                    pair.1,
                    warnings.len()
                ),
            );
        }
    }
    Ok(())
}

/// Oracle (b): reports (all checkers + leaks) must be byte-identical
/// for 1 worker and `threads` workers.
fn threads_oracle(src: &str, threads: usize) -> CheckResult {
    let n = threads.max(2);
    let one = match AnalysisBuilder::new().threads(1).build_source(src) {
        Ok(a) => a,
        Err(e) => {
            return fail(
                "frontend-reject",
                format!("generated program rejected: {e}"),
            )
        }
    };
    let many = match AnalysisBuilder::new().threads(n).build_source(src) {
        Ok(a) => a,
        Err(e) => return fail("frontend-reject", format!("threads={n} rejected: {e}")),
    };
    let r1 = render(&one.check_all());
    let rn = render(&many.check_all());
    if r1 != rn {
        return fail(
            "mismatch",
            format!("reports differ between 1 and {n} threads:\n--- 1 thread\n{r1}\n--- {n} threads\n{rn}"),
        );
    }
    let l1 = format!("{:?}", one.check_leaks());
    let ln = format!("{:?}", many.check_leaks());
    if l1 != ln {
        return fail(
            "leak-mismatch",
            format!("leak reports differ between 1 and {n} threads:\n{l1}\n---\n{ln}"),
        );
    }
    Ok(())
}

/// Oracle (c): a warm [`Workspace`] stepped through a random edit
/// script must agree with a cold build at every step, and a
/// persistent-cache rebuild must agree with a cache-less build.
fn warm_oracle(src: &str, seed: u64) -> CheckResult {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x57A7_E0F5_EEDC_0DE5);
    let mut ws = match Workspace::open(src) {
        Ok(w) => w,
        Err(e) => {
            return fail(
                "frontend-reject",
                format!("generated program rejected: {e}"),
            )
        }
    };
    let _ = ws.query(&Query::All);
    let mut cur = src.to_string();
    for step in 0..2 {
        cur = fuzzgen::mutate(&cur, &mut rng);
        if let Err(e) = ws.update_source(&cur) {
            return fail("mutant-reject", format!("edit {step} rejected: {e}"));
        }
        let warm = render(&ws.query(&Query::All).into_reports());
        let mut cold_ws = match Workspace::open(&cur) {
            Ok(w) => w,
            Err(e) => return fail("mutant-reject", format!("cold reopen {step}: {e}")),
        };
        let cold = render(&cold_ws.query(&Query::All).into_reports());
        if warm != cold {
            return fail(
                "warm-mismatch",
                format!("edit {step}: warm workspace disagrees with cold build\n--- warm\n{warm}\n--- cold\n{cold}"),
            );
        }
    }
    // Persistent cache roundtrip (every 8th seed: it does real IO).
    if seed.is_multiple_of(8) {
        let dir = std::env::temp_dir().join(format!("pinpoint-fuzz-cache-{seed:016x}"));
        let result = cache_roundtrip(src, &dir);
        let _ = std::fs::remove_dir_all(&dir);
        result?;
    }
    Ok(())
}

fn cache_roundtrip(src: &str, dir: &std::path::Path) -> CheckResult {
    let plain = match AnalysisBuilder::new().threads(1).build_source(src) {
        Ok(a) => render(&a.check_all()),
        Err(e) => return fail("frontend-reject", format!("{e}")),
    };
    for round in 0..2 {
        let cached = match AnalysisBuilder::new()
            .threads(1)
            .cache_dir(dir)
            .build_source(src)
        {
            Ok(a) => render(&a.check_all()),
            Err(e) => return fail("cache-reject", format!("cache round {round}: {e}")),
        };
        if cached != plain {
            return fail(
                "cache-mismatch",
                format!("cache round {round} disagrees with cache-less build\n--- cached\n{cached}\n--- plain\n{plain}"),
            );
        }
    }
    Ok(())
}

/// Oracle (f): the bottom-up summary engine must answer whole-program
/// checks byte-identically to the demand-driven reference — at 1 and N
/// threads, and again after alpha-renaming every generated helper
/// (`fK` → `rK`), which permutes `FuncId` assignment and therefore runs
/// the SCC schedule in a different function order.
fn engines_oracle(src: &str, threads: usize) -> CheckResult {
    engines_compare(src, 1, "as generated")?;
    engines_compare(src, threads.max(2), "as generated")?;
    engines_compare(&alpha_rename_helpers(src), 1, "alpha-renamed")
}

fn engines_compare(src: &str, threads: usize, variant: &str) -> CheckResult {
    use pinpoint_core::Engine;
    let analysis = match AnalysisBuilder::new().threads(threads).build_source(src) {
        Ok(a) => a,
        Err(e) => {
            return fail(
                "frontend-reject",
                format!("{variant} program rejected (threads={threads}): {e}"),
            )
        }
    };
    let mut demand_session = analysis.session().with_engine(Engine::Demand);
    let demand = render(&demand_session.check_all());
    let mut summary_session = analysis.session().with_engine(Engine::Summary);
    let summary = render(&summary_session.check_all());
    if demand != summary {
        return fail(
            "engine-mismatch",
            format!(
                "summary engine disagrees with demand engine ({variant}, threads={threads}):\n--- demand\n{demand}\n--- summary\n{summary}"
            ),
        );
    }
    Ok(())
}

/// Renames every generated helper `fK` (for decimal `K`) to `rK`,
/// definition and call sites alike. The generator never emits other
/// identifiers of that shape, so a whole-token rewrite is semantics
/// preserving while permuting function order.
fn alpha_rename_helpers(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_alphabetic() || bytes[i] == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let tok = &bytes[start..i];
            if tok[0] == b'f' && tok.len() > 1 && tok[1..].iter().all(u8::is_ascii_digit) {
                out.push(b'r');
                out.extend_from_slice(&tok[1..]);
            } else {
                out.extend_from_slice(tok);
            }
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).expect("rename only rewrites ASCII tokens")
}

/// Oracle (e): the IR verifier must accept both the freshly lowered and
/// the optimised module.
fn verify_oracle(src: &str) -> CheckResult {
    let mut module = match pinpoint_ir::compile(src) {
        Ok(m) => m,
        Err(e) => {
            return fail(
                "frontend-reject",
                format!("generated program rejected: {e}"),
            )
        }
    };
    let errs = pinpoint_ir::verify::verify_module(&module);
    if !errs.is_empty() {
        return fail(
            "verify-raw",
            format!(
                "lowered module fails verification: {}",
                errs.iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            ),
        );
    }
    pinpoint_ir::optimize_module(&mut module);
    let errs = pinpoint_ir::verify::verify_module(&module);
    if !errs.is_empty() {
        return fail(
            "verify-opt",
            format!(
                "optimised module fails verification: {}",
                errs.iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            ),
        );
    }
    Ok(())
}

/// Computes corpus-style reference expectations for a program from a
/// single-threaded run: `uaf=N taint-pt=N taint-dt=N null=N leak=N`.
/// Returns `None` if the program does not compile or the reference run
/// itself panics (crash reproducers).
pub fn reference_expectations(src: &str) -> Option<String> {
    catch_unwind(AssertUnwindSafe(|| {
        let analysis = Analysis::from_source(src).ok()?;
        let count = |k: CheckerKind| analysis.check(k).len();
        Some(format!(
            "uaf={} taint-pt={} taint-dt={} null={} leak={}",
            count(CheckerKind::UseAfterFree),
            count(CheckerKind::PathTraversal),
            count(CheckerKind::DataTransmission),
            count(CheckerKind::NullDeref),
            analysis.check_leaks().len()
        ))
    }))
    .ok()
    .flatten()
}
