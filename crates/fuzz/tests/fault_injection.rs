//! The fuzz subsystem must *catch* planted bugs, not just pass on clean
//! builds. This test flips the detect-layer fault toggle (drop the last
//! merged report when running multi-threaded — a modelled merge race),
//! runs the thread-determinism oracle, and asserts the bug is found and
//! shrunk to a small reproducer.

use pinpoint_core::detect::faults::DROP_LAST_REPORT_MT;
use pinpoint_fuzz::{run_fuzz, FindingKind, FuzzConfig, OracleKind};
use std::sync::atomic::Ordering;

#[test]
fn injected_merge_bug_is_caught_and_shrunk() {
    let out_dir = std::env::temp_dir().join("pinpoint-fuzz-fault-test");
    let _ = std::fs::remove_dir_all(&out_dir);
    DROP_LAST_REPORT_MT.store(true, Ordering::SeqCst);
    let outcome = run_fuzz(&FuzzConfig {
        seed: 5,
        iters: 40,
        oracles: vec![OracleKind::Threads],
        threads: 3,
        out_dir: Some(out_dir.clone()),
        ..FuzzConfig::default()
    });
    DROP_LAST_REPORT_MT.store(false, Ordering::SeqCst);

    assert!(
        outcome.discrepancies > 0,
        "the threads oracle must catch the planted merge bug"
    );
    let finding = outcome
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::Discrepancy && f.oracle == OracleKind::Threads)
        .expect("a deduplicated finding");
    let program = finding.program.as_deref().expect("program-based finding");
    assert!(
        program.lines().count() <= 15,
        "reproducer must shrink to <= 15 lines, got {}:\n{program}",
        program.lines().count()
    );
    assert!(finding.shrink_steps > 0);
    assert!(outcome.shrink_steps > 0);
    // The reproducer landed on disk, corpus-ready (.pp with a reference
    // `// expect:` header) since the single-threaded reference analysis
    // of the minimized program is healthy.
    let path = finding.reproducer.as_ref().expect("reproducer written");
    let body = std::fs::read_to_string(path).unwrap();
    assert!(body.contains("// fuzz-regression: oracle=threads"));
    assert!(body.contains("// expect: "));
    let _ = std::fs::remove_dir_all(&out_dir);
}
