//! Fixed-seed differential smoke: all five oracles must be clean over
//! a batch of generated programs. This is a faster in-tree mirror of
//! the CI `fuzz-smoke` job (`pinpoint fuzz --seed 5 --iters 300`).

use pinpoint_fuzz::{run_fuzz, FuzzConfig, OracleKind};

#[test]
fn all_oracles_clean_on_fixed_seed() {
    let outcome = run_fuzz(&FuzzConfig {
        seed: 5,
        iters: 25,
        oracles: OracleKind::ALL.to_vec(),
        threads: 3,
        ..FuzzConfig::default()
    });
    assert_eq!(outcome.iters, 25);
    assert!(
        outcome.findings.is_empty(),
        "oracle failures:\n{:#?}",
        outcome
            .findings
            .iter()
            .map(|f| format!(
                "[{}] {:?} at iter {}: {}\n{}",
                f.oracle.name(),
                f.kind,
                f.iteration,
                f.detail,
                f.program.as_deref().unwrap_or("<no program>")
            ))
            .collect::<Vec<_>>()
    );
    assert_eq!(outcome.discrepancies + outcome.crashes, 0);
}

#[test]
fn time_budget_stops_early() {
    let outcome = run_fuzz(&FuzzConfig {
        seed: 1,
        iters: 1_000_000,
        time_budget: Some(std::time::Duration::from_millis(200)),
        oracles: vec![OracleKind::Verify],
        ..FuzzConfig::default()
    });
    assert!(outcome.iters < 1_000_000);
}
