//! Whole-program engine benchmarks: the demand-driven `check_all`
//! versus the bottom-up summary engine, at 1 and 4 threads.
//!
//! The summary engine materialises per-function source→sink interface
//! summaries bottom-up over the call-graph condensation and uses them to
//! gate sources whose value flow provably never reaches a sink, a
//! global, or the function interface — those sources skip the
//! demand-driven search entirely (reports stay byte-identical). The
//! `summary-warm` rows re-answer from a session that already holds the
//! summary tables in memory, isolating the gate's per-query cost.

use pinpoint_bench::harness::{bench, smoke_mode};
use pinpoint_core::{AnalysisBuilder, Engine};
use pinpoint_workload::{generate, GenConfig};

fn bench_engines() {
    println!("# group: summary-engine");
    let kloc = if smoke_mode() { 1.0 } else { 10.0 };
    let project = generate(&GenConfig {
        seed: 29,
        real_bugs: 2,
        decoys: 2,
        taint: true,
        ..GenConfig::default().with_target_kloc(kloc)
    });
    for threads in [1usize, 4] {
        let analysis = AnalysisBuilder::new()
            .threads(threads)
            .build_source(&project.source)
            .unwrap();
        bench(&format!("demand/{kloc}kloc/t{threads}"), 5, || {
            let mut session = analysis.session().with_engine(Engine::Demand);
            session.check_all().len()
        });
        bench(&format!("summary-cold/{kloc}kloc/t{threads}"), 5, || {
            let mut session = analysis.session().with_engine(Engine::Summary);
            session.check_all().len()
        });
        let mut warm = analysis.session().with_engine(Engine::Summary);
        let _ = warm.check_all();
        bench(&format!("summary-warm/{kloc}kloc/t{threads}"), 5, || {
            warm.check_all().len()
        });
    }
}

fn main() {
    bench_engines();
}
