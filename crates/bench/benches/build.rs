//! Build-stage benchmarks for Fig. 7's core contrast — building
//! Pinpoint's SEGs vs the layered baseline's FSVFG at two program sizes
//! (the FSVFG's memory def-use cross product is quadratic under
//! imprecise points-to) — plus the `parallel` group comparing the
//! end-to-end pipeline at 1 worker vs the machine's parallelism on the
//! large generated workload.

use pinpoint_bench::harness::{bench, smoke_mode};
use pinpoint_core::{default_threads, AnalysisBuilder};
use pinpoint_workload::{generate, GenConfig};

fn bench_builds() {
    println!("# group: build");
    let klocs: &[f64] = if smoke_mode() { &[1.0] } else { &[1.0, 5.0] };
    for &kloc in klocs {
        let project = generate(&GenConfig {
            seed: 5,
            real_bugs: 1,
            decoys: 1,
            taint: false,
            ..GenConfig::default().with_target_kloc(kloc)
        });
        bench(&format!("seg/{kloc}kloc"), 10, || {
            let module = pinpoint_ir::compile(&project.source).unwrap();
            pinpoint_core::Analysis::from_module(module)
        });
        bench(&format!("fsvfg/{kloc}kloc"), 10, || {
            let module = pinpoint_ir::compile(&project.source).unwrap();
            pinpoint_baseline::Fsvfg::build(&module)
        });
    }
}

/// One worker vs the machine's parallelism, over the full pipeline
/// (points-to → SEG → every checker) on the large generated workload.
/// The merges are deterministic, so both rows produce identical reports;
/// only the wall time differs.
fn bench_parallel() {
    println!("# group: parallel");
    let kloc = if smoke_mode() { 1.0 } else { 10.0 };
    let project = generate(&GenConfig {
        seed: 7,
        real_bugs: 4,
        decoys: 4,
        taint: true,
        ..GenConfig::default().with_target_kloc(kloc)
    });
    let n = default_threads().max(2);
    if default_threads() == 1 {
        println!(
            "# note: single-core host — the threads={n} row measures pure \
             coordination overhead, not speedup"
        );
    }
    let mut report_renderings: Vec<Vec<String>> = Vec::new();
    for threads in [1usize, n] {
        bench(&format!("pipeline/{kloc}kloc/threads={threads}"), 5, || {
            let analysis = AnalysisBuilder::new()
                .threads(threads)
                .build_source(&project.source)
                .unwrap();
            analysis.check_all().len()
        });
        let analysis = AnalysisBuilder::new()
            .threads(threads)
            .build_source(&project.source)
            .unwrap();
        report_renderings.push(
            analysis
                .check_all()
                .iter()
                .map(ToString::to_string)
                .collect(),
        );
    }
    assert!(
        report_renderings.windows(2).all(|w| w[0] == w[1]),
        "thread counts must not change reports"
    );
}

fn main() {
    bench_builds();
    bench_parallel();
}
