//! Criterion benchmarks for Fig. 7's core contrast: building Pinpoint's
//! SEGs vs building the layered baseline's FSVFG, at two program sizes.
//! The gap widens with size (the FSVFG's memory def-use cross product is
//! quadratic under imprecise points-to).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pinpoint_core::Analysis;
use pinpoint_workload::{generate, GenConfig};

fn bench_builds(c: &mut Criterion) {
    let mut group = c.benchmark_group("build");
    group.sample_size(10);
    for kloc in [1.0f64, 5.0] {
        let project = generate(&GenConfig {
            seed: 5,
            real_bugs: 1,
            decoys: 1,
            taint: false,
            ..GenConfig::default().with_target_kloc(kloc)
        });
        group.bench_with_input(
            BenchmarkId::new("seg", format!("{kloc}kloc")),
            &project.source,
            |b, src| {
                b.iter(|| {
                    let module = pinpoint_ir::compile(src).unwrap();
                    Analysis::from_module(module)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fsvfg", format!("{kloc}kloc")),
            &project.source,
            |b, src| {
                b.iter(|| {
                    let module = pinpoint_ir::compile(src).unwrap();
                    pinpoint_baseline::Fsvfg::build(&module)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_builds);
criterion_main!(benches);
