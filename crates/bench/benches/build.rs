//! Build-stage benchmarks for Fig. 7's core contrast — building
//! Pinpoint's SEGs vs the layered baseline's FSVFG at two program sizes
//! (the FSVFG's memory def-use cross product is quadratic under
//! imprecise points-to) — plus the `parallel` group comparing the
//! end-to-end pipeline at 1 worker vs the machine's parallelism on the
//! large generated workload.

use pinpoint_bench::harness::{bench, smoke_mode};
use pinpoint_core::{default_threads, AnalysisBuilder};
use pinpoint_workload::{generate, GenConfig};

fn bench_builds() {
    println!("# group: build");
    let klocs: &[f64] = if smoke_mode() { &[1.0] } else { &[1.0, 5.0] };
    for &kloc in klocs {
        let project = generate(&GenConfig {
            seed: 5,
            real_bugs: 1,
            decoys: 1,
            taint: false,
            ..GenConfig::default().with_target_kloc(kloc)
        });
        bench(&format!("seg/{kloc}kloc"), 10, || {
            let module = pinpoint_ir::compile(&project.source).unwrap();
            pinpoint_core::Analysis::from_module(module)
        });
        bench(&format!("fsvfg/{kloc}kloc"), 10, || {
            let module = pinpoint_ir::compile(&project.source).unwrap();
            pinpoint_baseline::Fsvfg::build(&module)
        });
    }
}

/// One worker vs the machine's parallelism, over the full pipeline
/// (points-to → SEG → every checker) on the large generated workload.
/// The merges are deterministic, so both rows produce identical reports;
/// only the wall time differs.
fn bench_parallel() {
    println!("# group: parallel");
    let kloc = if smoke_mode() { 1.0 } else { 10.0 };
    let project = generate(&GenConfig {
        seed: 7,
        real_bugs: 4,
        decoys: 4,
        taint: true,
        ..GenConfig::default().with_target_kloc(kloc)
    });
    let n = default_threads().max(2);
    if default_threads() == 1 {
        println!(
            "# note: single-core host — the threads={n} row measures pure \
             coordination overhead, not speedup"
        );
    }
    let mut report_renderings: Vec<Vec<String>> = Vec::new();
    for threads in [1usize, n] {
        bench(&format!("pipeline/{kloc}kloc/threads={threads}"), 5, || {
            let analysis = AnalysisBuilder::new()
                .threads(threads)
                .build_source(&project.source)
                .unwrap();
            analysis.check_all().len()
        });
        let analysis = AnalysisBuilder::new()
            .threads(threads)
            .build_source(&project.source)
            .unwrap();
        report_renderings.push(
            analysis
                .check_all()
                .iter()
                .map(ToString::to_string)
                .collect(),
        );
    }
    assert!(
        report_renderings.windows(2).all(|w| w[0] == w[1]),
        "thread counts must not change reports"
    );
}

/// Cold vs warm builds through the persistent artifact cache: the warm
/// row re-runs the full pipeline with every per-function artifact
/// already on disk, so it pays only fingerprinting, loading, and the
/// deterministic merge. Reports must be byte-identical either way.
fn bench_cache() {
    println!("# group: cache");
    let kloc = if smoke_mode() { 1.0 } else { 10.0 };
    let project = generate(&GenConfig {
        seed: 11,
        real_bugs: 2,
        decoys: 2,
        taint: false,
        ..GenConfig::default().with_target_kloc(kloc)
    });
    let dir = std::env::temp_dir().join(format!("pinpoint-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    bench(&format!("build/{kloc}kloc/cold"), 5, || {
        AnalysisBuilder::new()
            .threads(1)
            .build_source(&project.source)
            .unwrap()
            .arena
            .len()
    });
    // Prime the cache once, then measure fully-warm rebuilds (detection
    // is per-query and deliberately uncached, so only the build stages
    // are timed here).
    let cold = AnalysisBuilder::new()
        .threads(1)
        .cache_dir(&dir)
        .build_source(&project.source)
        .unwrap();
    bench(&format!("build/{kloc}kloc/warm"), 5, || {
        let analysis = AnalysisBuilder::new()
            .threads(1)
            .cache_dir(&dir)
            .build_source(&project.source)
            .unwrap();
        assert_eq!(analysis.stats.cache.misses, 0, "warm run must hit fully");
        analysis.arena.len()
    });
    let warm = AnalysisBuilder::new()
        .threads(1)
        .cache_dir(&dir)
        .build_source(&project.source)
        .unwrap();
    let cold_reports: Vec<String> = cold.check_all().iter().map(ToString::to_string).collect();
    let warm_reports: Vec<String> = warm.check_all().iter().map(ToString::to_string).collect();
    assert_eq!(cold_reports, warm_reports, "cache must not change reports");
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    bench_builds();
    bench_parallel();
    bench_cache();
}
