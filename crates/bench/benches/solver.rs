//! Solver micro-benchmarks: the linear-time contradiction solver vs the
//! full DPLL(T) solver on path-condition-shaped formulas (§3.1.1's cost
//! argument: the cheap solver discharges most conditions for a fraction
//! of the price).

use pinpoint_bench::harness::{bench, smoke_mode};
use pinpoint_core::AnalysisBuilder;
use pinpoint_smt::{LinearSolver, SmtSolver, Sort, TermArena, TermId};
use pinpoint_workload::{generate, GenConfig};

/// Builds a path-condition-shaped formula: a conjunction of branch
/// literals, value-flow equalities, and guarded implications.
fn path_condition(arena: &mut TermArena, n: usize, contradictory: bool) -> TermId {
    let mut conj = Vec::new();
    for i in 0..n {
        let b = arena.var(format!("theta{i}"), Sort::Bool);
        let x = arena.var(format!("x{i}"), Sort::Int);
        let y = arena.var(format!("y{i}"), Sort::Int);
        let zero = arena.int(0);
        let ne = arena.ne(x, zero);
        let eq = arena.eq(x, y);
        let imp = arena.implies(b, eq);
        conj.push(b);
        conj.push(ne);
        conj.push(imp);
    }
    if contradictory {
        // An *apparent* contradiction the arena's flattening does not
        // fold away: θ0 is asserted above, and ¬θ0 is common to both
        // disjuncts here (P/N sets intersect).
        let t0 = arena.var("theta0".to_string(), Sort::Bool);
        let nt0 = arena.not(t0);
        let p = arena.var("aux_p".to_string(), Sort::Bool);
        let q = arena.var("aux_q".to_string(), Sort::Bool);
        let l = arena.and2(nt0, p);
        let r = arena.and2(nt0, q);
        conj.push(arena.or2(l, r));
    }
    arena.and(conj)
}

fn bench_solvers() {
    println!("# group: solver");
    for n in [8usize, 32] {
        for contradictory in [false, true] {
            let label = if contradictory { "unsat" } else { "sat" };
            {
                let mut arena = TermArena::new();
                let cond = path_condition(&mut arena, n, contradictory);
                bench(&format!("linear_{label}_{n}"), 50, || {
                    let mut solver = LinearSolver::new();
                    solver.check(&arena, cond)
                });
            }
            {
                let mut arena = TermArena::new();
                let cond = path_condition(&mut arena, n, contradictory);
                bench(&format!("smt_{label}_{n}"), 50, || {
                    let mut solver = SmtSolver::new();
                    solver.check(&arena, cond)
                });
            }
        }
    }
}

/// Cold-vs-warm end-to-end solver cost: the same `check_all` workload
/// with an empty verdict table versus one preloaded from a persisted
/// verdict store (`--cache-dir`). The warm rows replay cached verdicts
/// by canonical fingerprint instead of re-running CDCL, so the delta is
/// the wall-clock the cross-query cache buys.
fn bench_solver_reuse() {
    println!("# group: solver-reuse");
    let kloc = if smoke_mode() { 1.0 } else { 5.0 };
    let project = generate(&GenConfig {
        seed: 29,
        real_bugs: 2,
        decoys: 2,
        taint: true,
        ..GenConfig::default().with_target_kloc(kloc)
    });
    let dir = std::env::temp_dir().join(format!(
        "pinpoint-bench-solver-reuse-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    // Prime the verdict store: one full run against the cache directory
    // solves every condition once and persists the table.
    {
        let a = AnalysisBuilder::new()
            .threads(1)
            .cache_dir(&dir)
            .build_source(&project.source)
            .unwrap();
        a.check_all();
    }

    // Cold: no cache directory, so every session starts from an empty
    // verdict table and pays for every CDCL solve.
    let cold = AnalysisBuilder::new()
        .threads(1)
        .build_source(&project.source)
        .unwrap();
    let mut cold_reports: Vec<String> = Vec::new();
    let mut cold_misses = 0u64;
    bench(&format!("cold-check_all/{kloc}kloc"), 5, || {
        let mut s = cold.session();
        cold_reports = s.check_all().iter().map(ToString::to_string).collect();
        cold_misses = s.stats().detect.verdict_misses;
        cold_reports.len()
    });

    // Warm: the analysis loads the persisted verdict table, so sessions
    // replay cached verdicts instead of re-deriving them.
    let warm = AnalysisBuilder::new()
        .threads(1)
        .cache_dir(&dir)
        .build_source(&project.source)
        .unwrap();
    let mut warm_reports: Vec<String> = Vec::new();
    let mut warm_hits = 0u64;
    let mut warm_misses = 0u64;
    bench(&format!("warm-check_all/{kloc}kloc"), 5, || {
        let mut s = warm.session();
        warm_reports = s.check_all().iter().map(ToString::to_string).collect();
        let d = s.stats().detect;
        warm_hits = d.verdict_hits;
        warm_misses = d.verdict_misses;
        warm_reports.len()
    });

    assert_eq!(warm_reports, cold_reports, "warm reports equal cold");
    assert!(warm_hits > 0, "warm run replays cached verdicts");
    assert!(
        warm_misses < cold_misses,
        "warm run must solve strictly less ({warm_misses} vs {cold_misses})"
    );
    println!(
        "# solver reuse: warm run replayed {warm_hits} verdicts and solved {warm_misses} \
         (cold solved {cold_misses})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    bench_solvers();
    bench_solver_reuse();
}
