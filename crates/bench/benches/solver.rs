//! Solver micro-benchmarks: the linear-time contradiction solver vs the
//! full DPLL(T) solver on path-condition-shaped formulas (§3.1.1's cost
//! argument: the cheap solver discharges most conditions for a fraction
//! of the price).

use pinpoint_bench::harness::bench;
use pinpoint_smt::{LinearSolver, SmtSolver, Sort, TermArena, TermId};

/// Builds a path-condition-shaped formula: a conjunction of branch
/// literals, value-flow equalities, and guarded implications.
fn path_condition(arena: &mut TermArena, n: usize, contradictory: bool) -> TermId {
    let mut conj = Vec::new();
    for i in 0..n {
        let b = arena.var(format!("theta{i}"), Sort::Bool);
        let x = arena.var(format!("x{i}"), Sort::Int);
        let y = arena.var(format!("y{i}"), Sort::Int);
        let zero = arena.int(0);
        let ne = arena.ne(x, zero);
        let eq = arena.eq(x, y);
        let imp = arena.implies(b, eq);
        conj.push(b);
        conj.push(ne);
        conj.push(imp);
    }
    if contradictory {
        // An *apparent* contradiction the arena's flattening does not
        // fold away: θ0 is asserted above, and ¬θ0 is common to both
        // disjuncts here (P/N sets intersect).
        let t0 = arena.var("theta0".to_string(), Sort::Bool);
        let nt0 = arena.not(t0);
        let p = arena.var("aux_p".to_string(), Sort::Bool);
        let q = arena.var("aux_q".to_string(), Sort::Bool);
        let l = arena.and2(nt0, p);
        let r = arena.and2(nt0, q);
        conj.push(arena.or2(l, r));
    }
    arena.and(conj)
}

fn bench_solvers() {
    println!("# group: solver");
    for n in [8usize, 32] {
        for contradictory in [false, true] {
            let label = if contradictory { "unsat" } else { "sat" };
            {
                let mut arena = TermArena::new();
                let cond = path_condition(&mut arena, n, contradictory);
                bench(&format!("linear_{label}_{n}"), 50, || {
                    let mut solver = LinearSolver::new();
                    solver.check(&arena, cond)
                });
            }
            {
                let mut arena = TermArena::new();
                let cond = path_condition(&mut arena, n, contradictory);
                bench(&format!("smt_{label}_{n}"), 50, || {
                    let mut solver = SmtSolver::new();
                    solver.check(&arena, cond)
                });
            }
        }
    }
}

fn main() {
    bench_solvers();
}
