//! Serving-layer benchmarks: request latency and throughput of the
//! concurrent multi-session [`Server`] under 1 / 10 / 100 simulated
//! editors.
//!
//! Each simulated editor replays its seeded traffic script (open, then
//! interleaved edits and checks) synchronously — submit one request,
//! wait for its reply — the way a real editor integration blocks on
//! each answer. Latency is measured per request and aggregated into
//! `pinpoint-obs` histograms; the run ends with one `pinpoint-stats-v1`
//! document carrying the `p50`/`p95` summaries and per-group
//! throughput (also written to `$PINPOINT_SERVE_BENCH_STATS` when set).

use pinpoint_bench::harness::smoke_mode;
use pinpoint_core::{CheckerKind, Op, Query, Request, Server, ServerConfig};
use pinpoint_obs::MetricsRegistry;
use pinpoint_workload::{generate_traffic, TrafficConfig, TrafficOp};
use std::sync::mpsc;
use std::time::Instant;

/// Maps a traffic op onto the server's typed operation.
fn op_of(op: &TrafficOp) -> Op {
    match op {
        TrafficOp::Open(src) => Op::Open {
            source: src.clone(),
        },
        TrafficOp::Update(src) => Op::Update {
            source: src.clone(),
        },
        TrafficOp::Check(None) => Op::Query(Query::All),
        TrafficOp::Check(Some(name)) => Op::Query(Query::Check(
            CheckerKind::parse(name).expect("known checker"),
        )),
        TrafficOp::Stats => Op::Stats { canonical: true },
    }
}

/// Runs one fleet of `clients` editors against a fresh server and
/// returns every request's latency in nanoseconds plus the wall time.
fn run_group(clients: usize, kloc: f64) -> (Vec<u64>, std::time::Duration, u64) {
    let cfg = TrafficConfig {
        seed: 7,
        clients,
        edits_per_client: 2,
        kloc,
        ..TrafficConfig::default()
    };
    let scripts = generate_traffic(&cfg);
    let server = Server::start(ServerConfig::default());
    let t0 = Instant::now();
    let per_client: Vec<Vec<u64>> = std::thread::scope(|s| {
        let server = &server;
        let handles: Vec<_> = scripts
            .iter()
            .map(|script| {
                s.spawn(move || {
                    let (tx, rx) = mpsc::channel();
                    let mut lat = Vec::with_capacity(script.ops.len());
                    for (k, op) in script.ops.iter().enumerate() {
                        let t = Instant::now();
                        server.submit(
                            Request {
                                id: k.to_string(),
                                session: script.session.clone(),
                                op: op_of(op),
                            },
                            &tx,
                        );
                        let resp = rx.recv().expect("one reply per request");
                        lat.push(t.elapsed().as_nanos() as u64);
                        assert!(
                            resp.reply.is_ok(),
                            "request {k} of {} failed: {:?}",
                            script.session,
                            resp.reply
                        );
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = t0.elapsed();
    let stats = server.stats();
    let total: u64 = per_client.iter().map(|v| v.len() as u64).sum();
    assert_eq!(stats.completed, total, "every request completed");
    assert_eq!(stats.shed, 0, "synchronous editors never overrun the queue");
    (per_client.into_iter().flatten().collect(), elapsed, total)
}

fn main() {
    println!("# group: serve");
    let smoke = smoke_mode();
    let fleets: &[usize] = if smoke { &[1, 2] } else { &[1, 10, 100] };
    let kloc = if smoke { 0.3 } else { 1.0 };
    let mut m = MetricsRegistry::new();
    for &clients in fleets {
        let (latencies, elapsed, total) = run_group(clients, kloc);
        let hist_name = format!("serve.latency_c{clients}_ns");
        for &ns in &latencies {
            m.hist_record(&hist_name, ns);
        }
        let (p50, p95, p99) = {
            let h = m.histogram(&hist_name).expect("just recorded");
            (h.p50(), h.p95(), h.p99())
        };
        let throughput = total as f64 / elapsed.as_secs_f64().max(1e-9);
        m.counter_add(&format!("serve.c{clients}.requests"), total);
        m.counter_add(
            &format!("serve.c{clients}.throughput_rps"),
            throughput as u64,
        );
        println!(
            "serve/{clients}-editors/{kloc}kloc               p50 {:>10.3?}  p95 {:>10.3?}  p99 {:>10.3?}  {total} requests in {elapsed:.3?}  ({throughput:.1} req/s)",
            std::time::Duration::from_nanos(p50),
            std::time::Duration::from_nanos(p95),
            std::time::Duration::from_nanos(p99),
        );
    }
    let doc = m.stats_json(
        &[("workers", pinpoint_core::default_threads() as u64)],
        None,
        false,
    );
    println!("# stats: {doc}");
    if let Ok(path) = std::env::var("PINPOINT_SERVE_BENCH_STATS") {
        if let Err(e) = std::fs::write(&path, &doc) {
            eprintln!("cannot write `{path}`: {e}");
        }
    }
}
