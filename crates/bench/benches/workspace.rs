//! Warm-workspace benchmarks: the cost of answering a check after a
//! one-function edit through a long-lived [`Workspace`] versus rebuilding
//! and re-checking from scratch.
//!
//! The workspace reuses work at two layers — artefact splicing for clean
//! functions, and cached per-source query outcomes whose search cones the
//! edit did not touch — so the warm row's cost approaches re-lowering the
//! source text plus re-running the few dirtied queries.

use pinpoint_bench::harness::{bench, smoke_mode};
use pinpoint_core::{AnalysisBuilder, Query, Workspace};
use pinpoint_workload::{generate, GenConfig};

/// Inserts a harmless statement at the start of `func`'s body.
fn edit_function(source: &str, func: &str, marker: u32) -> String {
    let needle = format!("fn {func}(");
    let start = source.find(&needle).expect("function exists");
    let brace = source[start..].find('{').unwrap() + start + 1;
    format!(
        "{}\n    let bench_pad: int = {marker};\n    print(bench_pad);{}",
        &source[..brace],
        &source[brace..]
    )
}

fn bench_workspace() {
    println!("# group: workspace");
    let kloc = if smoke_mode() { 1.0 } else { 10.0 };
    let project = generate(&GenConfig {
        seed: 13,
        real_bugs: 2,
        decoys: 2,
        taint: true,
        ..GenConfig::default().with_target_kloc(kloc)
    });

    // Cold baseline: full build + every checker, from scratch.
    bench(&format!("cold-check/{kloc}kloc"), 5, || {
        let mut ws = AnalysisBuilder::new()
            .threads(1)
            .open_workspace(&project.source)
            .unwrap();
        ws.query(&Query::All).len()
    });

    // Warm: one primed workspace absorbs an alternating one-function
    // edit each iteration and re-answers every checker.
    let mut ws = AnalysisBuilder::new()
        .threads(1)
        .open_workspace(&project.source)
        .unwrap();
    let cold_reports: Vec<String> = ws
        .query(&Query::All)
        .into_reports()
        .iter()
        .map(ToString::to_string)
        .collect();
    let edits = [
        edit_function(&project.source, "filler1", 1),
        edit_function(&project.source, "filler2", 2),
    ];
    let mut i = 0usize;
    bench(&format!("warm-check/{kloc}kloc/1-func-edit"), 5, || {
        let edited = &edits[i % edits.len()];
        i += 1;
        ws.update_source(edited).unwrap();
        ws.query(&Query::All).len()
    });
    let c = ws.counters();
    let total = c.queries_reused + c.queries_rerun;
    println!(
        "# workspace reuse: {}/{} source queries answered from cache ({:.1}%), \
         {} funcs re-analysed vs {} spliced",
        c.queries_reused,
        total,
        100.0 * c.queries_reused as f64 / total.max(1) as f64,
        c.funcs_dirty,
        c.funcs_reused
    );
    assert!(c.queries_reused > 0, "warm checks must reuse queries");

    // Warm results must match a cold build of the same (last-edited)
    // program.
    let last = &edits[(i + edits.len() - 1) % edits.len()];
    ws.update_source(last).unwrap();
    let warm_reports: Vec<String> = ws
        .query(&Query::All)
        .into_reports()
        .iter()
        .map(ToString::to_string)
        .collect();
    let fresh: Vec<String> = Workspace::open(last)
        .unwrap()
        .query(&Query::All)
        .into_reports()
        .iter()
        .map(ToString::to_string)
        .collect();
    assert_eq!(warm_reports, fresh, "warm reports equal a cold build");
    // The pad-only edits do not change any verdict.
    assert_eq!(warm_reports, cold_reports, "verdicts stable across edits");
}

fn main() {
    bench_workspace();
}
