//! End-to-end checker benchmarks: Pinpoint vs the layered and dense
//! baselines on the same generated project (Tables 1/3 cost columns).

use criterion::{criterion_group, criterion_main, Criterion};
use pinpoint_core::{Analysis, CheckerKind};
use pinpoint_workload::{generate, generate_juliet, GenConfig};

fn bench_checkers(c: &mut Criterion) {
    let project = generate(&GenConfig {
        seed: 5,
        real_bugs: 2,
        decoys: 2,
        taint: true,
        ..GenConfig::default().with_target_kloc(2.0)
    });
    let mut group = c.benchmark_group("checker");
    group.sample_size(10);
    group.bench_function("pinpoint_uaf_2kloc", |b| {
        b.iter(|| {
            let mut a = Analysis::from_source(&project.source).unwrap();
            a.check(CheckerKind::UseAfterFree).len()
        });
    });
    group.bench_function("pinpoint_taint_2kloc", |b| {
        b.iter(|| {
            let mut a = Analysis::from_source(&project.source).unwrap();
            a.check(CheckerKind::PathTraversal).len()
                + a.check(CheckerKind::DataTransmission).len()
        });
    });
    group.bench_function("layered_uaf_2kloc", |b| {
        b.iter(|| {
            let module = pinpoint_ir::compile(&project.source).unwrap();
            let g = pinpoint_baseline::Fsvfg::build(&module);
            pinpoint_baseline::layered_check_uaf(&module, &g).len()
        });
    });
    group.bench_function("dense_uaf_2kloc", |b| {
        b.iter(|| {
            let module = pinpoint_ir::compile(&project.source).unwrap();
            pinpoint_baseline::dense_check(&module).len()
        });
    });
    let juliet = generate_juliet(2);
    group.bench_function("juliet_102_cases", |b| {
        b.iter(|| {
            let mut a = Analysis::from_source(&juliet.source).unwrap();
            a.check(CheckerKind::UseAfterFree).len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_checkers);
criterion_main!(benches);
