//! End-to-end checker benchmarks: Pinpoint vs the layered and dense
//! baselines on the same generated project (Tables 1/3 cost columns).

use pinpoint_bench::harness::bench;
use pinpoint_core::{Analysis, CheckerKind};
use pinpoint_workload::{generate, generate_juliet, GenConfig};

fn bench_checkers() {
    println!("# group: checker");
    let project = generate(&GenConfig {
        seed: 5,
        real_bugs: 2,
        decoys: 2,
        taint: true,
        ..GenConfig::default().with_target_kloc(2.0)
    });
    bench("pinpoint_uaf_2kloc", 10, || {
        let a = Analysis::from_source(&project.source).unwrap();
        a.check(CheckerKind::UseAfterFree).len()
    });
    bench("pinpoint_taint_2kloc", 10, || {
        let a = Analysis::from_source(&project.source).unwrap();
        a.check(CheckerKind::PathTraversal).len() + a.check(CheckerKind::DataTransmission).len()
    });
    bench("layered_uaf_2kloc", 10, || {
        let module = pinpoint_ir::compile(&project.source).unwrap();
        let g = pinpoint_baseline::Fsvfg::build(&module);
        pinpoint_baseline::layered_check_uaf(&module, &g).len()
    });
    bench("dense_uaf_2kloc", 10, || {
        let module = pinpoint_ir::compile(&project.source).unwrap();
        pinpoint_baseline::dense_check(&module).len()
    });
    let juliet = generate_juliet(2);
    bench("juliet_102_cases", 10, || {
        let a = Analysis::from_source(&juliet.source).unwrap();
        a.check(CheckerKind::UseAfterFree).len()
    });
}

fn main() {
    bench_checkers();
}
