//! `pinpoint-bench`: measurement infrastructure for regenerating every
//! table and figure of the paper's evaluation (§5).
//!
//! * [`alloc`] — a counting global allocator measuring live and peak heap
//!   bytes (the paper reports peak memory per stage);
//! * [`fit`] — least-squares line fitting with `R²`, used by the Fig. 10
//!   scalability-curve experiment;
//! * [`measure`](mod@measure) — helpers running one stage with time + peak-memory
//!   accounting.
//!
//! The `reproduce` binary (see `src/bin/reproduce.rs`) drives the
//! experiments; `cargo bench` runs the [`harness`]-based
//! micro-benchmarks under `benches/`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alloc;
pub mod fit;
pub mod harness;
pub mod measure;

pub use alloc::CountingAlloc;
pub use fit::{linear_fit, Fit};
pub use harness::{bench, Timing};
pub use measure::{measure, Measurement};
