//! Least-squares curve fitting for the Fig. 10 scalability study.
//!
//! The paper fits time and memory against program size and reports the
//! coefficient of determination `R²` (> 0.9 ⇒ near-linear observed
//! complexity). We fit `y = a·x + b` and also `y = a·x² + b` so the
//! harness can report which model explains the data better.

/// A fitted model `y = a·f(x) + b` with its coefficient of determination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    /// Slope.
    pub a: f64,
    /// Intercept.
    pub b: f64,
    /// Coefficient of determination in `[0, 1]` (1 = perfect fit).
    pub r2: f64,
}

/// Fits `y = a·x + b` by ordinary least squares.
///
/// # Panics
///
/// Panics if fewer than two points are given.
pub fn linear_fit(points: &[(f64, f64)]) -> Fit {
    fit_with(points, |x| x)
}

/// Fits `y = a·x² + b`.
///
/// # Panics
///
/// Panics if fewer than two points are given.
pub fn quadratic_fit(points: &[(f64, f64)]) -> Fit {
    fit_with(points, |x| x * x)
}

fn fit_with(points: &[(f64, f64)], f: impl Fn(f64) -> f64) -> Fit {
    assert!(points.len() >= 2, "need at least two points to fit");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|&(x, _)| f(x)).sum();
    let sy: f64 = points.iter().map(|&(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|&(x, _)| f(x) * f(x)).sum();
    let sxy: f64 = points.iter().map(|&(x, y)| f(x) * y).sum();
    let denom = n * sxx - sx * sx;
    let (a, b) = if denom.abs() < f64::EPSILON {
        (0.0, sy / n)
    } else {
        let a = (n * sxy - sx * sy) / denom;
        let b = (sy - a * sx) / n;
        (a, b)
    };
    // R² = 1 - SS_res / SS_tot.
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|&(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|&(x, y)| (y - (a * f(x) + b)).powi(2))
        .sum();
    let r2 = if ss_tot.abs() < f64::EPSILON {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Fit { a, b, r2 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line() {
        let pts: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 3.0 * i as f64 + 2.0)).collect();
        let fit = linear_fit(&pts);
        assert!((fit.a - 3.0).abs() < 1e-9);
        assert!((fit.b - 2.0).abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quadratic_data_prefers_quadratic_model() {
        let pts: Vec<(f64, f64)> = (1..12).map(|i| (i as f64, (i * i) as f64)).collect();
        let lin = linear_fit(&pts);
        let quad = quadratic_fit(&pts);
        assert!(quad.r2 > lin.r2);
        assert!((quad.r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_line_r2_below_one() {
        let pts = [(1.0, 3.2), (2.0, 4.8), (3.0, 7.1), (4.0, 8.7), (5.0, 11.4)];
        let fit = linear_fit(&pts);
        assert!(fit.r2 > 0.97 && fit.r2 < 1.0, "r2 = {}", fit.r2);
    }

    #[test]
    fn constant_data_fits_intercept() {
        let pts = [(1.0, 5.0), (2.0, 5.0), (3.0, 5.0)];
        let fit = linear_fit(&pts);
        assert!(fit.a.abs() < 1e-9);
        assert!((fit.b - 5.0).abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn single_point_panics() {
        let _ = linear_fit(&[(1.0, 1.0)]);
    }
}
