//! A dependency-free micro-benchmark harness.
//!
//! The workspace vendors no external benchmarking framework, so the
//! `benches/` targets (built with `harness = false`) drive their
//! measurements through this module: warm up once, take `samples`
//! timed runs, report min / median / mean.
//!
//! `cargo test` also builds and runs benchmark targets; under test
//! invocations ([`smoke_mode`]) benches should shrink to a single
//! iteration so the suite stays fast.

use std::time::{Duration, Instant};

/// Timing summary of one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Fastest sample.
    pub min: Duration,
    /// Median sample.
    pub median: Duration,
    /// Arithmetic mean of all samples.
    pub mean: Duration,
    /// Number of samples taken.
    pub samples: usize,
}

/// `true` when the binary was invoked by `cargo test` (cargo passes
/// `--test`): benches should run one quick iteration and exit.
pub fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Runs `f` `samples` times after one warm-up call and prints a
/// `name  min … median … mean …` line. In [`smoke_mode`] a single
/// un-timed call is made instead.
pub fn bench<T>(name: &str, samples: usize, mut f: impl FnMut() -> T) -> Timing {
    if smoke_mode() {
        let t0 = Instant::now();
        let _ = f();
        let d = t0.elapsed();
        println!("{name:<40} smoke {d:>12.3?}");
        return Timing {
            min: d,
            median: d,
            mean: d,
            samples: 1,
        };
    }
    let _ = f(); // warm-up
    let samples = samples.max(1);
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        let _ = f();
        times.push(t0.elapsed());
    }
    times.sort_unstable();
    let timing = Timing {
        min: times[0],
        median: times[times.len() / 2],
        mean: times.iter().sum::<Duration>() / samples as u32,
        samples,
    };
    println!(
        "{name:<40} min {:>12.3?}  median {:>12.3?}  mean {:>12.3?}  ({samples} samples)",
        timing.min, timing.median, timing.mean
    );
    timing
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_ordered_stats() {
        let t = bench("noop", 5, || 1 + 1);
        assert!(t.min <= t.median);
        assert!(t.samples >= 1);
    }
}
