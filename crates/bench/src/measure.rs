//! Stage measurement: wall time plus peak heap bytes.

use crate::alloc::CountingAlloc;
use std::time::{Duration, Instant};

/// The cost of one measured stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measurement {
    /// Wall-clock time.
    pub time: Duration,
    /// Peak heap bytes observed during the stage (over the baseline live
    /// size at stage entry).
    pub peak_bytes: usize,
}

impl Measurement {
    /// Formats the peak as mebibytes.
    pub fn peak_mib(&self) -> f64 {
        self.peak_bytes as f64 / (1024.0 * 1024.0)
    }
}

/// Runs `stage`, returning its result plus its time/memory cost.
///
/// Peak accounting only reflects reality when [`CountingAlloc`] is
/// installed as the global allocator (the `reproduce` binary does); under
/// other allocators `peak_bytes` is zero.
pub fn measure<T>(stage: impl FnOnce() -> T) -> (T, Measurement) {
    let live_before = CountingAlloc::live();
    CountingAlloc::reset_peak();
    let t0 = Instant::now();
    let out = stage();
    let time = t0.elapsed();
    let peak = CountingAlloc::peak().saturating_sub(live_before);
    (
        out,
        Measurement {
            time,
            peak_bytes: peak,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_time_monotonically() {
        let (value, m) = measure(|| {
            let mut v = 0u64;
            for i in 0..10_000 {
                v = v.wrapping_add(i);
            }
            v
        });
        assert_eq!(value, (0..10_000u64).sum::<u64>());
        assert!(m.time > Duration::ZERO);
    }

    #[test]
    fn mib_conversion() {
        let m = Measurement {
            time: Duration::ZERO,
            peak_bytes: 3 * 1024 * 1024,
        };
        assert!((m.peak_mib() - 3.0).abs() < 1e-9);
    }
}
