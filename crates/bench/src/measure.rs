//! Stage measurement: wall time plus peak heap bytes.

use crate::alloc::CountingAlloc;
use std::time::{Duration, Instant};

/// The cost of one measured stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measurement {
    /// Wall-clock time.
    pub time: Duration,
    /// Peak heap bytes observed during the stage (over the baseline live
    /// size at stage entry), or `None` when [`CountingAlloc`] is not the
    /// process's global allocator and no real accounting happened.
    pub peak_bytes: Option<usize>,
}

impl Measurement {
    /// Formats the peak as mebibytes; `None` when the peak is unknown.
    pub fn peak_mib(&self) -> Option<f64> {
        self.peak_bytes.map(|b| b as f64 / (1024.0 * 1024.0))
    }

    /// Publishes this measurement into the unified metrics schema as
    /// `{stage}.time_ns` and, when real accounting happened,
    /// `{stage}.peak_bytes`.
    pub fn record_into(&self, metrics: &mut pinpoint_obs::MetricsRegistry, stage: &str) {
        metrics.counter_add(&format!("{stage}.time_ns"), self.time.as_nanos() as u64);
        if let Some(peak) = self.peak_bytes {
            metrics.counter_add(&format!("{stage}.peak_bytes"), peak as u64);
        }
    }
}

/// Runs `stage`, returning its result plus its time/memory cost.
///
/// Peak accounting only reflects reality when [`CountingAlloc`] is
/// installed as the global allocator (the `reproduce` binary installs
/// it); under any other allocator the counters never move, and
/// `peak_bytes` is reported as `None` rather than a misleading zero.
pub fn measure<T>(stage: impl FnOnce() -> T) -> (T, Measurement) {
    let live_before = CountingAlloc::live();
    CountingAlloc::reset_peak();
    let t0 = Instant::now();
    let out = stage();
    let time = t0.elapsed();
    let peak = if CountingAlloc::installed() {
        Some(CountingAlloc::peak().saturating_sub(live_before))
    } else {
        None
    };
    (
        out,
        Measurement {
            time,
            peak_bytes: peak,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_time_monotonically() {
        let (value, m) = measure(|| {
            let mut v = 0u64;
            for i in 0..10_000 {
                v = v.wrapping_add(i);
            }
            v
        });
        assert_eq!(value, (0..10_000u64).sum::<u64>());
        assert!(m.time > Duration::ZERO);
    }

    #[test]
    fn mib_conversion() {
        let m = Measurement {
            time: Duration::ZERO,
            peak_bytes: Some(3 * 1024 * 1024),
        };
        assert!((m.peak_mib().unwrap() - 3.0).abs() < 1e-9);
    }

    // Unit tests run under the default system allocator, so the counting
    // allocator never sees an allocation and the peak must be reported as
    // unknown rather than zero.
    #[test]
    fn peak_is_none_without_counting_alloc() {
        let (_, m) = measure(|| vec![0u8; 4096].len());
        assert_eq!(m.peak_bytes, None);
        assert_eq!(m.peak_mib(), None);
    }

    #[test]
    fn record_into_skips_unknown_peak() {
        let mut metrics = pinpoint_obs::MetricsRegistry::new();
        let m = Measurement {
            time: Duration::from_nanos(42),
            peak_bytes: None,
        };
        m.record_into(&mut metrics, "bench");
        assert_eq!(metrics.counter("bench.time_ns"), 42);
        assert!(!metrics.counters().any(|(k, _)| k == "bench.peak_bytes"));
        let m2 = Measurement {
            time: Duration::from_nanos(1),
            peak_bytes: Some(4096),
        };
        m2.record_into(&mut metrics, "bench");
        assert_eq!(metrics.counter("bench.peak_bytes"), 4096);
    }
}
