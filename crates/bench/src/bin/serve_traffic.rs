//! `serve_traffic`: prints a seeded multi-client `pinpoint-rpc-v2`
//! conversation on stdout, ready to pipe into `pinpoint serve`:
//!
//! ```sh
//! serve_traffic --clients 10 --edits 2 | pinpoint serve --workers 4
//! ```
//!
//! The output is one `hello` handshake, the clients' requests
//! interleaved round-robin (each client in its own session, ids of the
//! form `client3:2`), and a final `quit`. Same flags ⇒ same bytes, so
//! CI smoke jobs can assert on the replies.

use pinpoint_workload::{generate_traffic, render_ndjson_v2, TrafficConfig};

const USAGE: &str =
    "usage: serve_traffic [--clients N] [--edits N] [--seed N] [--kloc F] [--stats]";

fn main() {
    let mut cfg = TrafficConfig {
        clients: 10,
        edits_per_client: 2,
        kloc: 1.0,
        ..TrafficConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value\n{USAGE}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--clients" => cfg.clients = parse(&value("--clients"), "--clients"),
            "--edits" => cfg.edits_per_client = parse(&value("--edits"), "--edits"),
            "--seed" => cfg.seed = parse(&value("--seed"), "--seed"),
            "--kloc" => cfg.kloc = parse(&value("--kloc"), "--kloc"),
            "--stats" => cfg.stats_at_end = true,
            other => {
                eprintln!("error: unknown flag `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    print!("{}", render_ndjson_v2(&generate_traffic(&cfg)));
}

fn parse<T: std::str::FromStr>(v: &str, name: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid {name} value `{v}`\n{USAGE}");
        std::process::exit(2);
    })
}
