//! `serve_traffic`: prints a seeded multi-client `pinpoint-rpc-v2`
//! conversation on stdout, ready to pipe into `pinpoint serve`:
//!
//! ```sh
//! serve_traffic --clients 10 --edits 2 | pinpoint serve --workers 4
//! ```
//!
//! The output is one `hello` handshake, the clients' requests
//! interleaved round-robin (each client in its own session, ids of the
//! form `client3:2`), and a final `quit`. Same flags ⇒ same bytes, so
//! CI smoke jobs can assert on the replies. `--status-every N` splices
//! an in-band `status` probe after every N requests (ids `probe:K`),
//! exercising the server's worker-pool bypass under load.
//!
//! The effective seed and per-client request counts echo on stderr
//! (silence with `--quiet`) so any run seen in a CI log can be
//! regenerated with the printed command line.

use pinpoint_workload::{generate_traffic, render_ndjson_v2_probed, TrafficConfig};

const USAGE: &str = "usage: serve_traffic [--clients N] [--edits N] [--seed N] [--kloc F] \
[--stats] [--status-every N] [--quiet]";

fn main() {
    let mut cfg = TrafficConfig {
        clients: 10,
        edits_per_client: 2,
        kloc: 1.0,
        ..TrafficConfig::default()
    };
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value\n{USAGE}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--clients" => cfg.clients = parse(&value("--clients"), "--clients"),
            "--edits" => cfg.edits_per_client = parse(&value("--edits"), "--edits"),
            "--seed" => cfg.seed = parse(&value("--seed"), "--seed"),
            "--kloc" => cfg.kloc = parse(&value("--kloc"), "--kloc"),
            "--stats" => cfg.stats_at_end = true,
            "--status-every" => {
                cfg.status_every = parse(&value("--status-every"), "--status-every")
            }
            "--quiet" => quiet = true,
            other => {
                eprintln!("error: unknown flag `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let scripts = generate_traffic(&cfg);
    if !quiet {
        // The effective config on stderr, so a hostile or slow run seen
        // in CI is reproducible from the log with one command line.
        let counts: Vec<String> = scripts
            .iter()
            .map(|s| format!("{}={}", s.session, s.ops.len()))
            .collect();
        let total: usize = scripts.iter().map(|s| s.ops.len()).sum();
        eprintln!(
            "serve_traffic: seed {} | {} clients x {} edits @ {} kloc | {total} requests ({})",
            cfg.seed,
            cfg.clients,
            cfg.edits_per_client,
            cfg.kloc,
            counts.join(" ")
        );
        eprintln!(
            "serve_traffic: reproduce with: serve_traffic --seed {} --clients {} --edits {} --kloc {}{}{}",
            cfg.seed,
            cfg.clients,
            cfg.edits_per_client,
            cfg.kloc,
            if cfg.stats_at_end { " --stats" } else { "" },
            if cfg.status_every > 0 {
                format!(" --status-every {}", cfg.status_every)
            } else {
                String::new()
            }
        );
    }
    print!("{}", render_ndjson_v2_probed(&scripts, cfg.status_every));
}

fn parse<T: std::str::FromStr>(v: &str, name: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid {name} value `{v}`\n{USAGE}");
        std::process::exit(2);
    })
}
