//! `gen_project`: prints a seeded generated project on stdout, ready to
//! feed to `pinpoint check`:
//!
//! ```sh
//! gen_project --kloc 20 --seed 7 > project.pp
//! gen_project --kloc 20 --seed 7 --fuzz > dense.pp
//! ```
//!
//! The default generator builds a benchmark-style project around a few
//! injected ground-truth defects (sources concentrate in bug drivers);
//! `--fuzz` uses the grammar generator instead, whose malloc/free-heavy
//! bodies put checker sources in nearly every function — the workload
//! shape whole-program engines are measured on. Same flags ⇒ same
//! bytes, so CI smoke jobs comparing engine or cache configurations run
//! on a reproducible workload. A line/defect summary echoes on stderr.

use pinpoint_workload::{fuzzgen, generate, GenConfig};

const USAGE: &str =
    "usage: gen_project [--kloc F] [--seed N] [--bugs N] [--decoys N] [--no-taint] [--fuzz]";

fn main() {
    let mut kloc = 20.0f64;
    let mut fuzz = false;
    let mut cfg = GenConfig {
        real_bugs: 2,
        decoys: 2,
        taint: true,
        ..GenConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value\n{USAGE}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--kloc" => kloc = parse(&value("--kloc"), "--kloc"),
            "--seed" => cfg.seed = parse(&value("--seed"), "--seed"),
            "--bugs" => cfg.real_bugs = parse(&value("--bugs"), "--bugs"),
            "--decoys" => cfg.decoys = parse(&value("--decoys"), "--decoys"),
            "--no-taint" => cfg.taint = false,
            "--fuzz" => fuzz = true,
            other => {
                eprintln!("error: unknown flag `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if fuzz {
        // The grammar generator emits ~18 lines per function.
        let source = fuzzgen::generate(&fuzzgen::FuzzGenConfig {
            seed: cfg.seed,
            functions: ((kloc * 1000.0) / 18.0).max(2.0) as usize,
            max_stmts: 10,
            globals: 4,
            recursion: true,
        });
        eprintln!(
            "gen_project: {} lines (fuzz grammar)",
            source.lines().count()
        );
        print!("{source}");
        return;
    }
    let project = generate(&cfg.with_target_kloc(kloc));
    eprintln!(
        "gen_project: {} lines, {} injected defects",
        project.lines,
        project.bugs.len()
    );
    print!("{}", project.source);
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("error: bad value `{s}` for {flag}\n{USAGE}");
        std::process::exit(2);
    })
}
