//! Regenerates every table and figure of the paper's evaluation (§5) on
//! the generated workloads.
//!
//! ```sh
//! cargo run --release -p pinpoint-bench --bin reproduce -- all
//! cargo run --release -p pinpoint-bench --bin reproduce -- fig7 [--scale 40] [--budget-secs 30]
//! ```
//!
//! Subcommands: `fig7 fig8 fig9 fig10 table1 table2 table3 juliet
//! linear-solver ablations all`.
//!
//! Absolute numbers are not comparable to the paper (the substrate is a
//! generated mini-language corpus on one core, not MySQL on a 40-core
//! Xeon); the *shape* claims are what each experiment checks.

use pinpoint_bench::{fit, measure, CountingAlloc, Measurement};
use pinpoint_core::{Analysis, CheckerKind, Report};
use pinpoint_workload::{
    generate, generate_juliet, generate_subject, GenConfig, Subject, SUBJECTS,
};
use std::time::{Duration, Instant};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Edge budget for the layered baseline (≈ 2 GiB of graph on this
/// machine); exceeding it counts as the paper's out-of-memory band.
const EDGE_CAP: usize = 160_000_000;

#[derive(Debug, Clone)]
struct Options {
    /// Paper-size divisor for subjects (default 40: firefox → 200 KLoC).
    scale: f64,
    /// Per-stage time budget for the baseline (the "timeout" band).
    budget: Duration,
    /// Largest subject (paper KLoC) to include in the sweeps.
    max_paper_kloc: u32,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: 40.0,
            budget: Duration::from_secs(30),
            max_paper_kloc: 8000,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options::default();
    let mut cmd = "all".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                opts.scale = it.next().and_then(|v| v.parse().ok()).unwrap_or(40.0);
            }
            "--budget-secs" => {
                let s: u64 = it.next().and_then(|v| v.parse().ok()).unwrap_or(30);
                opts.budget = Duration::from_secs(s);
            }
            "--max-kloc" => {
                opts.max_paper_kloc = it.next().and_then(|v| v.parse().ok()).unwrap_or(8000);
            }
            other => cmd = other.to_string(),
        }
    }
    match cmd.as_str() {
        "fig7" => fig7_fig8(&opts, true),
        "fig8" => fig7_fig8(&opts, false),
        "fig9" => fig9(&opts),
        "fig10" => fig10(&opts),
        "table1" => table1(&opts),
        "table2" => table2(&opts),
        "table3" => table3(&opts),
        "juliet" => juliet(),
        "linear-solver" => linear_solver(&opts),
        "ablations" => ablations(),
        "all" => {
            fig7_fig8(&opts, true);
            fig7_fig8(&opts, false);
            fig9(&opts);
            fig10(&opts);
            table1(&opts);
            table2(&opts);
            table3(&opts);
            juliet();
            linear_solver(&opts);
            ablations();
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!(
                "expected: fig7 fig8 fig9 fig10 table1 table2 table3 juliet linear-solver ablations all"
            );
            std::process::exit(2);
        }
    }
}

fn subjects(opts: &Options) -> Vec<&'static Subject> {
    SUBJECTS
        .iter()
        .filter(|s| s.paper_kloc <= opts.max_paper_kloc)
        .collect()
}

fn fmt_dur(d: Duration) -> String {
    if d.as_secs() >= 60 {
        format!("{:.1}min", d.as_secs_f64() / 60.0)
    } else if d.as_secs_f64() >= 1.0 {
        format!("{:.2}s", d.as_secs_f64())
    } else {
        format!("{:.1}ms", d.as_secs_f64() * 1000.0)
    }
}

/// Formats a measured peak as MiB, or `n/a` when the counting allocator
/// was not installed and no real peak exists.
fn fmt_mib(m: &Measurement) -> String {
    match m.peak_mib() {
        Some(mib) => format!("{mib:.1}"),
        None => "n/a".into(),
    }
}

/// Builds Pinpoint's SEG stage only (points-to + transformation + SEG).
fn build_seg(source: &str) -> (Analysis, Measurement) {
    let module = pinpoint_ir::compile(source).expect("subject compiles");
    measure(move || Analysis::from_module(module))
}

/// Builds the layered baseline's FSVFG within the budget.
fn build_fsvfg(
    source: &str,
    budget: Duration,
) -> (
    Option<(pinpoint_ir::Module, pinpoint_baseline::Fsvfg)>,
    Measurement,
) {
    let module = pinpoint_ir::compile(source).expect("subject compiles");
    measure(move || {
        let deadline = Some(Instant::now() + budget);
        pinpoint_baseline::Fsvfg::build_within(&module, deadline, Some(EDGE_CAP))
            .map(|g| (module, g))
    })
}

// ---------------------------------------------------------------------
// Fig. 7 / Fig. 8: SEG vs FSVFG construction cost across subjects.
// ---------------------------------------------------------------------
fn fig7_fig8(opts: &Options, time_axis: bool) {
    if time_axis {
        println!("\n=== Figure 7: time to build SEG vs FSVFG (subjects ordered by size) ===");
    } else {
        println!("\n=== Figure 8: memory to build SEG vs FSVFG (subjects ordered by size) ===");
    }
    println!(
        "(paper sizes scaled 1/{}; FSVFG budget {} per subject)",
        opts.scale,
        fmt_dur(opts.budget)
    );
    println!(
        "{:<14} {:>9} {:>12} {:>14} {:>12} {:>14}  note",
        "subject", "KLoC", "SEG-time", "SEG-mem(MiB)", "FSVFG-time", "FSVFG-mem(MiB)"
    );
    let mut first_timeout: Option<&str> = None;
    for s in subjects(opts) {
        let project = generate_subject(s, opts.scale);
        let kloc = project.lines as f64 / 1000.0;
        let (_analysis, seg_m) = build_seg(&project.source);
        let (fsvfg, fs_m) = build_fsvfg(&project.source, opts.budget);
        let (ft, fm, note) = match &fsvfg {
            Some((_, g)) => (
                fmt_dur(fs_m.time),
                fmt_mib(&fs_m),
                format!("{} edges", g.edge_count),
            ),
            None => {
                if first_timeout.is_none() {
                    first_timeout = Some(s.name);
                }
                (
                    "TIMEOUT".into(),
                    format!("{}+", fmt_mib(&fs_m)),
                    String::new(),
                )
            }
        };
        println!(
            "{:<14} {:>9.1} {:>12} {:>14} {:>12} {:>14}  {}",
            s.name,
            kloc,
            fmt_dur(seg_m.time),
            fmt_mib(&seg_m),
            ft,
            fm,
            note
        );
    }
    if let Some(name) = first_timeout {
        println!(
            "shape check: FSVFG first exceeds its budget at `{name}`; SEG completes every subject \
             (paper: FSVFG times out above 135 KLoC, SEG is up to >400x faster)."
        );
    }
}

// ---------------------------------------------------------------------
// Fig. 9: end-to-end checker memory, SEG-based vs FSVFG-based.
// ---------------------------------------------------------------------
fn fig9(opts: &Options) {
    println!("\n=== Figure 9: end-to-end use-after-free checker memory ===");
    println!(
        "{:<14} {:>9} {:>16} {:>18}  note",
        "subject", "KLoC", "Pinpoint(MiB)", "FSVFG-based(MiB)"
    );
    for s in subjects(opts) {
        let project = generate_subject(s, opts.scale);
        let kloc = project.lines as f64 / 1000.0;
        let (reports, pp_m) = measure(|| {
            let a = Analysis::from_source(&project.source).expect("compiles");
            a.check(CheckerKind::UseAfterFree).len()
        });
        let (layered, base_m) = measure(|| {
            let module = pinpoint_ir::compile(&project.source).expect("compiles");
            let deadline = Some(Instant::now() + opts.budget);
            pinpoint_baseline::Fsvfg::build_within(&module, deadline, Some(EDGE_CAP))
                .map(|g| pinpoint_baseline::layered_check_uaf(&module, &g).len())
        });
        let (base_mem, note) = match layered {
            Some(w) => (fmt_mib(&base_m), format!("{w} warnings")),
            None => (format!("{}+ (TIMEOUT)", fmt_mib(&base_m)), String::new()),
        };
        println!(
            "{:<14} {:>9.1} {:>16} {:>18}  pinpoint: {} reports {}",
            s.name,
            kloc,
            fmt_mib(&pp_m),
            base_mem,
            reports,
            note
        );
    }
}

// ---------------------------------------------------------------------
// Fig. 10: Pinpoint's time/memory vs KLoC with least-squares fits.
// ---------------------------------------------------------------------
fn fig10(opts: &Options) {
    println!("\n=== Figure 10: Pinpoint scalability (fit and R^2) ===");
    let mut time_pts: Vec<(f64, f64)> = Vec::new();
    let mut mem_pts: Vec<(f64, f64)> = Vec::new();
    println!("{:>9} {:>12} {:>12}", "KLoC", "time", "mem(MiB)");
    for s in subjects(opts) {
        let project = generate_subject(s, opts.scale);
        let kloc = project.lines as f64 / 1000.0;
        let (_r, m) = measure(|| {
            let a = Analysis::from_source(&project.source).expect("compiles");
            a.check(CheckerKind::UseAfterFree).len()
        });
        println!("{:>9.1} {:>12} {:>12}", kloc, fmt_dur(m.time), fmt_mib(&m));
        time_pts.push((kloc, m.time.as_secs_f64()));
        if let Some(mib) = m.peak_mib() {
            mem_pts.push((kloc, mib));
        }
    }
    let tf = fit::linear_fit(&time_pts);
    let tq = fit::quadratic_fit(&time_pts);
    println!(
        "time:   linear fit y = {:.4}x + {:.3}, R^2 = {:.3} (quadratic R^2 = {:.3})",
        tf.a, tf.b, tf.r2, tq.r2
    );
    if mem_pts.is_empty() {
        println!("memory: no data (counting allocator not installed)");
        println!(
            "shape check: paper reports near-linear growth with R^2 > 0.9; measured linear R^2 = {:.3} (time).",
            tf.r2
        );
    } else {
        let mf = fit::linear_fit(&mem_pts);
        println!(
            "memory: linear fit y = {:.4}x + {:.3}, R^2 = {:.3}",
            mf.a, mf.b, mf.r2
        );
        println!(
            "shape check: paper reports near-linear growth with R^2 > 0.9; measured linear R^2 = {:.3} (time), {:.3} (memory).",
            tf.r2, mf.r2
        );
    }
}

// ---------------------------------------------------------------------
// Table 1: use-after-free checkers, Pinpoint vs the layered baseline.
// ---------------------------------------------------------------------
fn report_hits(analysis: &Analysis, reports: &[Report], marker: &str) -> bool {
    reports.iter().any(|r| {
        analysis.module.func(r.source_func).name.contains(marker)
            || analysis.module.func(r.sink_func).name.contains(marker)
    })
}

fn table1(opts: &Options) {
    println!("\n=== Table 1: use-after-free checkers (Pinpoint vs layered/SVF) ===");
    println!(
        "{:<14} {:>9} {:>10} {:>6} {:>9} | {:>12}",
        "subject", "KLoC", "#Reports", "#FP", "FP-rate", "SVF #Reports"
    );
    let mut total_reports = 0usize;
    let mut total_fp = 0usize;
    let mut total_layered = 0usize;
    for s in subjects(opts) {
        let project = generate_subject(s, opts.scale);
        let kloc = project.lines as f64 / 1000.0;
        let analysis = Analysis::from_source(&project.source).expect("compiles");
        let reports = analysis.check(CheckerKind::UseAfterFree);
        // FP accounting against ground truth: a report is a false positive
        // when it matches a decoy marker or no marker at all.
        let fp = reports
            .iter()
            .filter(|r| {
                let sf = &analysis.module.func(r.source_func).name;
                let kf = &analysis.module.func(r.sink_func).name;
                let matches_real = project
                    .bugs
                    .iter()
                    .any(|b| b.real && (sf.contains(&b.marker) || kf.contains(&b.marker)));
                !matches_real
            })
            .count();
        // Missed real bugs (recall spot check).
        let missed = project
            .bugs
            .iter()
            .filter(|b| b.real && !report_hits(&analysis, &reports, &b.marker))
            .count();
        let module = pinpoint_ir::compile(&project.source).expect("compiles");
        let deadline = Some(Instant::now() + opts.budget);
        let layered = pinpoint_baseline::Fsvfg::build_within(&module, deadline, Some(EDGE_CAP))
            .map(|g| pinpoint_baseline::layered_check_uaf(&module, &g).len());
        let layered_str = match layered {
            Some(n) => {
                total_layered += n;
                n.to_string()
            }
            None => "TIMEOUT".into(),
        };
        total_reports += reports.len();
        total_fp += fp;
        let rate = if reports.is_empty() {
            "0".into()
        } else {
            format!("{:.1}%", 100.0 * fp as f64 / reports.len() as f64)
        };
        println!(
            "{:<14} {:>9.1} {:>10} {:>6} {:>9} | {:>12}{}",
            s.name,
            kloc,
            reports.len(),
            fp,
            rate,
            layered_str,
            if missed > 0 {
                format!("   !! missed {missed} real bug(s)")
            } else {
                String::new()
            }
        );
    }
    let rate = if total_reports == 0 {
        0.0
    } else {
        100.0 * total_fp as f64 / total_reports as f64
    };
    println!(
        "TOTAL: pinpoint {total_reports} reports ({total_fp} FP, {rate:.1}%) vs layered {total_layered}+ warnings"
    );
    println!(
        "shape check: paper reports 14 Pinpoint reports at 14.3% FP vs ~10,000 SVF warnings (~1000x)."
    );
}

// ---------------------------------------------------------------------
// Table 2: taint checkers on the MySQL-class subject.
// ---------------------------------------------------------------------
fn table2(opts: &Options) {
    println!("\n=== Table 2: SEG-based taint checkers (MySQL-class subject) ===");
    let mysql = SUBJECTS.iter().find(|s| s.name == "mysql").expect("mysql");
    let kloc = f64::from(mysql.paper_kloc) / opts.scale;
    let project = generate(&GenConfig {
        seed: 2030,
        real_bugs: 3,
        decoys: 2,
        taint: true,
        ..GenConfig::default().with_target_kloc(kloc)
    });
    println!(
        "subject: generated mysql stand-in, {:.1} KLoC",
        project.lines as f64 / 1000.0
    );
    println!(
        "{:<26} {:>12} {:>10} {:>12}",
        "checker", "memory(MiB)", "time", "#FP/#Reports"
    );
    for (kind, label) in [
        (CheckerKind::PathTraversal, "Path Traversal Vuln."),
        (CheckerKind::DataTransmission, "Data Transmission Vuln."),
    ] {
        let ((reports, fp), m) = measure(|| {
            let a = Analysis::from_source(&project.source).expect("compiles");
            let reports = a.check(kind);
            let fp = reports
                .iter()
                .filter(|r| {
                    let sf = &a.module.func(r.source_func).name;
                    let kf = &a.module.func(r.sink_func).name;
                    !project
                        .bugs
                        .iter()
                        .any(|b| b.real && (sf.contains(&b.marker) || kf.contains(&b.marker)))
                })
                .count();
            (reports.len(), fp)
        });
        println!(
            "{:<26} {:>12} {:>10} {:>9}/{}",
            label,
            fmt_mib(&m),
            fmt_dur(m.time),
            fp,
            reports
        );
    }
    println!("shape check: paper reports 11/56 and 24/92 FP/reports at ~1.5h, 43-53G on 2 MLoC.");
}

// ---------------------------------------------------------------------
// Table 3: the dense per-unit checker (Infer/CSA stand-in).
// ---------------------------------------------------------------------
fn table3(opts: &Options) {
    println!("\n=== Table 3: dense per-unit checker (Infer/CSA stand-in) ===");
    println!(
        "{:<14} {:>9} {:>10} {:>14} {:>16}",
        "subject", "KLoC", "time", "#FP/#Reports", "cross-unit missed"
    );
    let mut total_fp = 0usize;
    let mut total_rep = 0usize;
    for s in subjects(opts) {
        let project = generate_subject(s, opts.scale);
        let kloc = project.lines as f64 / 1000.0;
        let module = pinpoint_ir::compile(&project.source).expect("compiles");
        let (warnings, m) = measure(|| pinpoint_baseline::dense_check(&module));
        // Ground truth: intra-unit decoys become FPs, cross-unit real bugs
        // are missed.
        let fp = warnings
            .iter()
            .filter(|w| {
                let f = &module.func(w.func).name;
                !project.bugs.iter().any(|b| b.real && f.contains(&b.marker))
            })
            .count();
        let missed_cross = project
            .bugs
            .iter()
            .filter(|b| {
                b.real
                    && !warnings
                        .iter()
                        .any(|w| module.func(w.func).name.contains(&b.marker))
            })
            .count();
        total_fp += fp;
        total_rep += warnings.len();
        println!(
            "{:<14} {:>9.1} {:>10} {:>11}/{:<3} {:>16}",
            s.name,
            kloc,
            fmt_dur(m.time),
            fp,
            warnings.len(),
            missed_cross
        );
    }
    println!("TOTAL: {total_fp}/{total_rep} false positives");
    println!(
        "shape check: paper's Infer reports 35/35 FP, CSA 24/26 FP, and both miss cross-unit bugs."
    );
}

// ---------------------------------------------------------------------
// §5.1.2 recall: the Juliet-style suite.
// ---------------------------------------------------------------------
fn juliet() {
    println!("\n=== Juliet-style recall (51 variants x 28 cases = 1428) ===");
    let suite = generate_juliet(28);
    let (result, m) = measure(|| {
        let analysis = Analysis::from_source(&suite.source).expect("suite compiles");
        let reports = analysis.check(CheckerKind::UseAfterFree);
        let mut missed = Vec::new();
        for case in &suite.cases {
            let found = reports.iter().any(|r| {
                analysis
                    .module
                    .func(r.source_func)
                    .name
                    .contains(&case.marker)
                    || analysis
                        .module
                        .func(r.sink_func)
                        .name
                        .contains(&case.marker)
            });
            if !found {
                missed.push(case.variant);
            }
        }
        (suite.cases.len(), missed)
    });
    let (total, missed) = result;
    println!(
        "detected {}/{} cases ({} missed) in {} using {} MiB",
        total - missed.len(),
        total,
        missed.len(),
        fmt_dur(m.time),
        fmt_mib(&m)
    );
    println!("shape check: paper detects 1421/1421 (100% recall). missed variants: {missed:?}");
}

// ---------------------------------------------------------------------
// §3.1.1 claims: how much the linear-time solver discharges.
// ---------------------------------------------------------------------
fn linear_solver(opts: &Options) {
    println!("\n=== Linear-time solver effectiveness (§3.1.1) ===");
    let subject = SUBJECTS.iter().find(|s| s.name == "tmux").expect("tmux");
    let project = generate_subject(subject, opts.scale / 4.0);
    let analysis = Analysis::from_source(&project.source).expect("compiles");
    let mut session = analysis.session();
    session.config.measure_linear = true;
    let _ = session.check(CheckerKind::UseAfterFree);
    let stats = session.stats();
    let pta = stats.pta;
    let det = stats.detect;
    let sat_frac = if pta.linear_checks == 0 {
        0.0
    } else {
        100.0 * pta.kept as f64 / pta.linear_checks as f64
    };
    println!(
        "points-to stage: {} conditions checked, {} kept ({:.1}% satisfiable-or-unknown), {} pruned",
        pta.linear_checks, pta.kept, sat_frac, pta.pruned
    );
    let easy = if det.refuted == 0 {
        0.0
    } else {
        100.0 * det.linear_refuted as f64 / det.refuted as f64
    };
    println!(
        "detection stage: {} candidates, {} SMT-refuted, of which {} ({:.1}%) were 'easy' (apparent contradictions)",
        det.candidates, det.refuted, det.linear_refuted, easy
    );
    println!(
        "shape check: paper observes ~70% of points-to-stage conditions satisfiable and >90% of unsatisfiable conditions easy."
    );
}

// ---------------------------------------------------------------------
// Ablations of the design choices.
// ---------------------------------------------------------------------
fn ablations() {
    println!("\n=== Ablations ===");
    let project = generate(&GenConfig {
        seed: 99,
        real_bugs: 3,
        decoys: 3,
        taint: false,
        ..GenConfig::default().with_target_kloc(5.0)
    });

    // (a) Linear-time pruning on/off: SEG size and build time.
    for prune in [true, false] {
        let (counts, m) = measure(|| {
            let mut module = pinpoint_ir::compile(&project.source).expect("compiles");
            let pta =
                pinpoint_pta::analyze_module_with(&mut module, &pinpoint_pta::PtaConfig { prune });
            let deps: usize = pta.pta.iter().map(|p| p.mem_deps.len()).sum();
            deps
        });
        println!(
            "quasi path-sensitive pruning {:>3}: {} memory-dependence edges, {} build",
            if prune { "ON" } else { "OFF" },
            counts,
            fmt_dur(m.time)
        );
    }

    // (a2) VF summaries on/off (§3.3.2 compositionality): the freed
    // pointer is handed to many helpers, only one of which can sink it;
    // summaries let the search skip entering the harmless ones.
    let mut helpers = String::new();
    let mut calls = String::new();
    for i in 0..40 {
        helpers.push_str(&format!(
            "fn log{i}(p: int*, tag: int) {{ print(tag); return; }}\n"
        ));
        calls.push_str(&format!("    log{i}(p, {i});\n"));
    }
    let fanout_src = format!(
        "{helpers}fn hit(p: int*) {{ let x: int = *p; print(x); return; }}\n\
         fn main() {{\n    let p: int* = malloc();\n    free(p);\n{calls}    hit(p);\n    return;\n}}\n"
    );
    for use_summaries in [true, false] {
        let analysis = Analysis::from_source(&fanout_src).expect("fanout compiles");
        let mut session = analysis.session();
        session.config.use_summaries = use_summaries;
        let (n, m) = measure(|| session.check(CheckerKind::UseAfterFree).len());
        let det = session.stats().detect;
        println!(
            "VF summaries {:>3}: {n} reports, {} vertices visited, {} descents skipped, detect {}",
            if use_summaries { "ON" } else { "OFF" },
            det.visited,
            det.skipped_descents,
            fmt_dur(m.time)
        );
    }

    // (b) SMT solving on/off: report counts (path sensitivity).
    for solve in [true, false] {
        let analysis = Analysis::from_source(&project.source).expect("compiles");
        let mut session = analysis.session();
        session.config.solve = solve;
        let reports = session.check(CheckerKind::UseAfterFree);
        println!(
            "SMT path-feasibility {:>3}: {} reports ({} candidates)",
            if solve { "ON" } else { "OFF" },
            reports.len(),
            session.stats().detect.candidates
        );
    }

    // (c) Context-depth sweep (the paper uses 6 nested levels): a ladder
    // of bugs whose free sits 1..=6 calls below the dereferencing driver.
    let mut ladder = String::new();
    for k in 1..=6 {
        for lvl in 1..=k {
            if lvl == 1 {
                ladder.push_str(&format!("fn c{k}_l1(p: int*) {{ free(p); return; }}\n"));
            } else {
                ladder.push_str(&format!(
                    "fn c{k}_l{lvl}(p: int*) {{ c{k}_l{}(p); return; }}\n",
                    lvl - 1
                ));
            }
        }
        ladder.push_str(&format!(
            "fn c{k}_driver() {{\n    let p: int* = malloc();\n    c{k}_l{k}(p);\n    let x: int = *p;\n    print(x);\n    return;\n}}\n"
        ));
    }
    for depth in [1u32, 2, 4, 6] {
        let analysis = Analysis::from_source(&ladder).expect("ladder compiles");
        let mut session = analysis.session();
        session.config.max_ctx_depth = depth;
        let (n, m) = measure(|| session.check(CheckerKind::UseAfterFree).len());
        println!(
            "context depth {depth}: {n}/6 ladder bugs found, detect {}",
            fmt_dur(m.time)
        );
    }
    // (d) Incremental re-analysis: a one-function edit on a mid-size
    // project re-analyses only the caller chain.
    let inc_project = generate(&GenConfig {
        seed: 123,
        real_bugs: 1,
        decoys: 1,
        taint: false,
        ..GenConfig::default().with_target_kloc(20.0)
    });
    let (outcome, full_m) =
        measure(|| Analysis::from_source(&inc_project.source).expect("compiles"));
    let mut analysis = outcome;
    let edited = {
        let needle = "fn filler1(";
        let start = inc_project.source.find(needle).expect("filler1");
        let brace = inc_project.source[start..].find('{').unwrap() + start + 1;
        format!(
            "{}\n    let hotfix: int = 1;\n    print(hotfix);{}",
            &inc_project.source[..brace],
            &inc_project.source[brace..]
        )
    };
    let (outcome, inc_m) = measure(|| {
        analysis
            .update_incremental(&edited)
            .expect("incremental update")
    });
    println!(
        "incremental: 1-function edit on {} functions → {} re-analysed; full build {} vs incremental update {}",
        analysis.module.funcs.len(),
        outcome.reanalyzed,
        fmt_dur(full_m.time),
        fmt_dur(inc_m.time)
    );
    println!("shape check: pruning shrinks the SEG; disabling SMT admits the decoys; shallow contexts miss deep bugs; edits pay for their caller chain only.");
}
