//! A counting global allocator.
//!
//! The paper's Fig. 8/9 report peak memory per analysis stage. This
//! wrapper around the system allocator tracks live and peak heap bytes;
//! the harness resets the peak between stages to attribute memory to each.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static TOUCHED: AtomicBool = AtomicBool::new(false);

/// Counting allocator; install with `#[global_allocator]`.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// Currently live heap bytes.
    pub fn live() -> usize {
        LIVE.load(Ordering::Relaxed)
    }

    /// Peak live bytes since the last [`CountingAlloc::reset_peak`].
    pub fn peak() -> usize {
        PEAK.load(Ordering::Relaxed)
    }

    /// Resets the peak to the current live size.
    pub fn reset_peak() {
        PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Whether this allocator has ever serviced an allocation — i.e.
    /// whether it is actually installed as the global allocator. When
    /// false, `live`/`peak` are meaningless zeros and measurements must
    /// not report them as real numbers.
    pub fn installed() -> bool {
        TOUCHED.load(Ordering::Relaxed)
    }
}

// SAFETY: delegates all allocation to `System`, only adding counters.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            TOUCHED.store(true, Ordering::Relaxed);
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                let live = LIVE.fetch_add(new_size - layout.size(), Ordering::Relaxed) + new_size
                    - layout.size();
                PEAK.fetch_max(live, Ordering::Relaxed);
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The allocator is not installed in unit tests; exercise the counter
    // arithmetic directly.
    #[test]
    fn peak_tracks_maximum() {
        CountingAlloc::reset_peak();
        let before = CountingAlloc::peak();
        LIVE.fetch_add(100, Ordering::Relaxed);
        PEAK.fetch_max(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
        assert!(CountingAlloc::peak() >= before);
        LIVE.fetch_sub(100, Ordering::Relaxed);
    }
}
