//! `pinpoint-smt`: the constraint-solving substrate for the Pinpoint
//! reproduction (PLDI 2018).
//!
//! Pinpoint delays all expensive path-feasibility reasoning to the bug
//! detection stage, where whole value-flow path conditions are handed to an
//! SMT solver (the paper uses Z3). This crate is a from-scratch substitute
//! providing everything the analysis needs:
//!
//! * [`term`] — hash-consed condition terms shared across a function's
//!   symbolic expression graph;
//! * [`linear`] — the paper's §3.1.1 *linear-time contradiction solver*
//!   (the `P(C)`/`N(C)` positive/negative atom-set rules) used during the
//!   quasi path-sensitive points-to analysis;
//! * [`sat`] — a CDCL SAT core (two-watched literals, 1UIP learning,
//!   VSIDS activities, Luby restarts);
//! * [`theory`] — EUF congruence closure plus Fourier–Motzkin linear
//!   integer arithmetic;
//! * [`solver`] — the lazy DPLL(T) loop combining the above.
//!
//! # Examples
//!
//! ```
//! use pinpoint_smt::term::{Sort, TermArena};
//! use pinpoint_smt::solver::{SmtResult, SmtSolver};
//!
//! let mut arena = TermArena::new();
//! let theta1 = arena.var("theta1", Sort::Bool);
//! let x = arena.var("x", Sort::Int);
//! let zero = arena.int(0);
//! let theta3 = arena.ne(x, zero);
//! let path_condition = arena.and2(theta1, theta3);
//!
//! let mut solver = SmtSolver::new();
//! assert_eq!(solver.check(&arena, path_condition), SmtResult::Sat);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod canon;
pub mod linear;
pub mod sat;
pub mod session;
pub mod solver;
pub mod term;
pub mod theory;
pub mod verdict;

pub use canon::{canon_info, CanonInfo, CANON_VERSION};
pub use linear::{LinearSolver, LinearVerdict};
pub use session::SmtSession;
pub use solver::{LastQueryCost, SmtResult, SmtSolver};
pub use term::{RawTermError, Sort, TermArena, TermId, TermKind, TermMark, TermTranslator};
pub use verdict::{verdict_config_fp, Verdict, VerdictTable};
