//! CDCL SAT solver: the boolean core of the lazy SMT solver.
//!
//! A conventional conflict-driven clause-learning solver with two-watched
//!-literal propagation, VSIDS-style variable activities, phase saving, 1UIP
//! conflict analysis and Luby restarts. It is deliberately compact — the
//! conditions Pinpoint emits are small compared to industrial SAT instances
//! — but it is a complete solver, and the theory layer (see
//! [`crate::theory`]) drives it through the incremental
//! [`SatSolver::add_clause`] / [`SatSolver::solve`] interface.

/// A boolean variable, identified by index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BVar(pub u32);

/// A literal: a variable with a polarity, encoded as `2*var + sign`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Positive or negative literal of `v`.
    #[inline]
    pub fn new(v: BVar, positive: bool) -> Self {
        Lit(v.0 << 1 | u32::from(!positive))
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> BVar {
        BVar(self.0 >> 1)
    }

    /// `true` for a positive literal.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    #[inline]
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    #[inline]
    fn code(self) -> usize {
        self.0 as usize
    }
}

/// Result of a SAT query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment was found.
    Sat,
    /// The clause set is unsatisfiable.
    Unsat,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Value {
    True,
    False,
    Undef,
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
}

/// Reason for an assignment: either a decision or a propagating clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reason {
    Decision,
    Clause(usize),
}

/// Aggregate statistics, used by the benchmark harness.
#[derive(Debug, Default, Clone, Copy)]
pub struct SatStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts analysed.
    pub conflicts: u64,
    /// Number of clauses learned from conflict analysis (unit learnts
    /// included).
    pub learned: u64,
    /// Number of restarts.
    pub restarts: u64,
}

/// The CDCL solver.
///
/// # Examples
///
/// ```
/// use pinpoint_smt::sat::{Lit, SatResult, SatSolver};
///
/// let mut s = SatSolver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(vec![Lit::new(a, true), Lit::new(b, true)]);
/// s.add_clause(vec![Lit::new(a, false)]);
/// assert_eq!(s.solve(), SatResult::Sat);
/// assert_eq!(s.value(b), Some(true));
/// ```
#[derive(Debug, Default)]
pub struct SatSolver {
    clauses: Vec<Clause>,
    /// watches[lit.code()] = clause indices watching that literal.
    watches: Vec<Vec<usize>>,
    assign: Vec<Value>,
    reason: Vec<Reason>,
    level: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    queue_head: usize,
    activity: Vec<f64>,
    activity_inc: f64,
    saved_phase: Vec<bool>,
    seen: Vec<bool>,
    unsat: bool,
    /// Statistics for the harness.
    pub stats: SatStats,
}

impl SatSolver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Self {
            activity_inc: 1.0,
            ..Self::default()
        }
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Allocates a fresh boolean variable.
    pub fn new_var(&mut self) -> BVar {
        let v = BVar(u32::try_from(self.assign.len()).expect("too many SAT vars"));
        self.assign.push(Value::Undef);
        self.reason.push(Reason::Decision);
        self.level.push(0);
        self.activity.push(0.0);
        self.saved_phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    fn lit_value(&self, l: Lit) -> Value {
        match self.assign[l.var().0 as usize] {
            Value::Undef => Value::Undef,
            Value::True => {
                if l.is_positive() {
                    Value::True
                } else {
                    Value::False
                }
            }
            Value::False => {
                if l.is_positive() {
                    Value::False
                } else {
                    Value::True
                }
            }
        }
    }

    /// Adds a clause. An empty clause makes the instance trivially UNSAT.
    /// Must be called at decision level 0 (i.e. between `solve` calls the
    /// solver automatically backtracks to level 0).
    pub fn add_clause(&mut self, mut lits: Vec<Lit>) {
        self.backtrack_to(0);
        if self.unsat {
            return;
        }
        lits.sort_unstable();
        lits.dedup();
        // Tautology?
        for w in lits.windows(2) {
            if w[0].var() == w[1].var() {
                return; // contains l and ¬l
            }
        }
        // Remove literals already false at level 0; satisfied clause is a no-op.
        let mut filtered = Vec::with_capacity(lits.len());
        for &l in &lits {
            match self.lit_value(l) {
                Value::True => return,
                Value::False => {}
                Value::Undef => filtered.push(l),
            }
        }
        match filtered.len() {
            0 => self.unsat = true,
            1 => {
                let conflict =
                    !self.enqueue(filtered[0], Reason::Decision) || self.propagate().is_some();
                if conflict {
                    self.unsat = true;
                }
            }
            _ => {
                let idx = self.clauses.len();
                self.watches[filtered[0].negate().code()].push(idx);
                self.watches[filtered[1].negate().code()].push(idx);
                self.clauses.push(Clause {
                    lits: filtered,
                    learnt: false,
                });
            }
        }
    }

    fn enqueue(&mut self, l: Lit, reason: Reason) -> bool {
        match self.lit_value(l) {
            Value::True => true,
            Value::False => false,
            Value::Undef => {
                let v = l.var().0 as usize;
                self.assign[v] = if l.is_positive() {
                    Value::True
                } else {
                    Value::False
                };
                self.reason[v] = reason;
                self.level[v] = self.trail_lim.len() as u32;
                self.saved_phase[v] = l.is_positive();
                self.trail.push(l);
                true
            }
        }
    }

    /// Propagates all enqueued literals; returns a conflicting clause index.
    fn propagate(&mut self) -> Option<usize> {
        while self.queue_head < self.trail.len() {
            let l = self.trail[self.queue_head];
            self.queue_head += 1;
            self.stats.propagations += 1;
            let mut i = 0;
            let mut watch_list = std::mem::take(&mut self.watches[l.code()]);
            while i < watch_list.len() {
                let ci = watch_list[i];
                // Ensure the false literal is at position 1.
                let false_lit = l.negate();
                {
                    let c = &mut self.clauses[ci];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                }
                let first = self.clauses[ci].lits[0];
                if self.lit_value(first) == Value::True {
                    i += 1;
                    continue;
                }
                // Find a new literal to watch.
                let mut moved = false;
                let len = self.clauses[ci].lits.len();
                for k in 2..len {
                    let lk = self.clauses[ci].lits[k];
                    if self.lit_value(lk) != Value::False {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[lk.negate().code()].push(ci);
                        watch_list.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflict.
                if !self.enqueue(first, Reason::Clause(ci)) {
                    self.watches[l.code()] = watch_list;
                    self.queue_head = self.trail.len();
                    return Some(ci);
                }
                i += 1;
            }
            let existing = std::mem::replace(&mut self.watches[l.code()], watch_list);
            self.watches[l.code()].extend(existing);
        }
        None
    }

    fn bump(&mut self, v: BVar) {
        let a = &mut self.activity[v.0 as usize];
        *a += self.activity_inc;
        if *a > 1e100 {
            for act in &mut self.activity {
                *act *= 1e-100;
            }
            self.activity_inc *= 1e-100;
        }
    }

    /// 1UIP conflict analysis; returns (learnt clause, backtrack level).
    fn analyze(&mut self, conflict: usize) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = Vec::new();
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut clause_idx = conflict;
        let mut trail_idx = self.trail.len();
        let current_level = self.trail_lim.len() as u32;
        loop {
            let start = usize::from(p.is_some());
            let lits: Vec<Lit> = self.clauses[clause_idx].lits[start..].to_vec();
            for q in lits {
                let v = q.var();
                let vi = v.0 as usize;
                if !self.seen[vi] && self.level[vi] > 0 {
                    self.seen[vi] = true;
                    self.bump(v);
                    if self.level[vi] == current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next seen literal.
            loop {
                trail_idx -= 1;
                let l = self.trail[trail_idx];
                if self.seen[l.var().0 as usize] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("found UIP candidate").var().0 as usize;
            self.seen[pv] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            match self.reason[pv] {
                Reason::Clause(ci) => clause_idx = ci,
                Reason::Decision => unreachable!("non-UIP decision inside level"),
            }
        }
        let asserting = p.expect("1UIP literal").negate();
        for l in &learnt {
            self.seen[l.var().0 as usize] = false;
        }
        // Backtrack level = max level among the other literals.
        let bt = learnt
            .iter()
            .map(|l| self.level[l.var().0 as usize])
            .max()
            .unwrap_or(0);
        let mut clause = vec![asserting];
        clause.extend(learnt);
        (clause, bt)
    }

    fn backtrack_to(&mut self, level: u32) {
        while self.trail_lim.len() as u32 > level {
            let lim = self.trail_lim.pop().expect("trail_lim nonempty");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail nonempty");
                self.assign[l.var().0 as usize] = Value::Undef;
            }
        }
        self.queue_head = self.trail.len().min(self.queue_head);
        self.queue_head = self.trail.len();
    }

    fn decide(&mut self) -> Option<Lit> {
        let mut best: Option<(f64, usize)> = None;
        for (v, val) in self.assign.iter().enumerate() {
            if *val == Value::Undef {
                let act = self.activity[v];
                if best.is_none_or(|(ba, _)| act > ba) {
                    best = Some((act, v));
                }
            }
        }
        best.map(|(_, v)| Lit::new(BVar(v as u32), self.saved_phase[v]))
    }

    fn luby(i: u64) -> u64 {
        // Luby sequence 1 1 2 1 1 2 4 …, 0-based index.
        let mut n = i + 1; // 1-based position
        loop {
            let mut k = 1u32;
            while (1u64 << k) - 1 < n {
                k += 1;
            }
            if (1u64 << k) - 1 == n {
                return 1u64 << (k - 1);
            }
            n -= (1u64 << (k - 1)) - 1;
        }
    }

    /// Solves the current clause set.
    pub fn solve(&mut self) -> SatResult {
        self.solve_assuming(&[])
    }

    /// Solves the current clause set under `assumptions` (MiniSat-style
    /// incremental interface). Each assumption is established as its own
    /// decision level before ordinary search decisions; `Unsat` under
    /// assumptions does *not* mark the instance permanently unsatisfiable
    /// (only a level-0 conflict does), so the solver — including every
    /// clause learned along the way — remains usable for further queries
    /// with different assumptions. Learned clauses are implied by the
    /// clause database alone (conflict analysis resolves only on clause
    /// reasons, never on assumption decisions), so keeping them across
    /// queries is sound.
    pub fn solve_assuming(&mut self, assumptions: &[Lit]) -> SatResult {
        self.backtrack_to(0);
        if self.unsat {
            return SatResult::Unsat;
        }
        if self.propagate().is_some() {
            self.unsat = true;
            return SatResult::Unsat;
        }
        let mut conflicts_since_restart = 0u64;
        let mut restart_idx = 0u64;
        let mut restart_limit = 32 * Self::luby(restart_idx);
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.trail_lim.is_empty() {
                    self.unsat = true;
                    return SatResult::Unsat;
                }
                let (clause, bt) = self.analyze(conflict);
                self.backtrack_to(bt);
                self.activity_inc *= 1.05;
                self.stats.learned += 1;
                let asserting = clause[0];
                if clause.len() == 1 {
                    debug_assert_eq!(self.trail_lim.len(), 0);
                    if !self.enqueue(asserting, Reason::Decision) {
                        self.unsat = true;
                        return SatResult::Unsat;
                    }
                } else {
                    let idx = self.clauses.len();
                    self.watches[clause[0].negate().code()].push(idx);
                    self.watches[clause[1].negate().code()].push(idx);
                    self.clauses.push(Clause {
                        lits: clause,
                        learnt: true,
                    });
                    let ok = self.enqueue(asserting, Reason::Clause(idx));
                    debug_assert!(ok, "asserting literal must be enqueueable");
                }
            } else if self.trail_lim.len() < assumptions.len() {
                // Establish the next assumption at its own decision level.
                // (Restarts and learnt-clause backtracking may strip
                // assumption levels; they are re-established here.)
                let a = assumptions[self.trail_lim.len()];
                match self.lit_value(a) {
                    Value::True => {
                        // Already implied: a dummy level keeps the
                        // level ↔ assumption-index correspondence.
                        self.trail_lim.push(self.trail.len());
                    }
                    Value::False => {
                        // Conflicts with the clause set under the earlier
                        // assumptions: unsatisfiable *under assumptions*
                        // only — the instance itself stays usable.
                        return SatResult::Unsat;
                    }
                    Value::Undef => {
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(a, Reason::Decision);
                        debug_assert!(ok, "assumption variable was unassigned");
                    }
                }
            } else if conflicts_since_restart >= restart_limit {
                self.stats.restarts += 1;
                restart_idx += 1;
                restart_limit = 32 * Self::luby(restart_idx);
                conflicts_since_restart = 0;
                self.backtrack_to(0);
            } else {
                match self.decide() {
                    None => return SatResult::Sat,
                    Some(l) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(l, Reason::Decision);
                        debug_assert!(ok, "decision variable was unassigned");
                    }
                }
            }
        }
    }

    /// Value of `v` in the last satisfying assignment (if `solve` returned
    /// `Sat` and `v` was assigned).
    pub fn value(&self, v: BVar) -> Option<bool> {
        match self.assign[v.0 as usize] {
            Value::True => Some(true),
            Value::False => Some(false),
            Value::Undef => None,
        }
    }

    /// Number of clauses currently stored (original + learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Number of learnt (conflict-derived) clauses in the database.
    pub fn num_learnt(&self) -> usize {
        self.clauses.iter().filter(|c| c.learnt).count()
    }

    /// Returns `true` once the instance is known UNSAT.
    pub fn is_unsat(&self) -> bool {
        self.unsat
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops read naturally for PHP grids
mod tests {
    use super::*;

    fn lit(s: &mut SatSolver, vars: &mut Vec<BVar>, idx: usize, pos: bool) -> Lit {
        while vars.len() <= idx {
            vars.push(s.new_var());
        }
        Lit::new(vars[idx], pos)
    }

    #[test]
    fn trivially_sat() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(vec![Lit::new(a, true)]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(a), Some(true));
    }

    #[test]
    fn trivially_unsat() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(vec![Lit::new(a, true)]);
        s.add_clause(vec![Lit::new(a, false)]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = SatSolver::new();
        let mut v = Vec::new();
        // a, a→b, b→c, c→d ⇒ all true.
        let a = lit(&mut s, &mut v, 0, true);
        let clauses: Vec<Vec<Lit>> = vec![
            vec![a],
            vec![lit(&mut s, &mut v, 0, false), lit(&mut s, &mut v, 1, true)],
            vec![lit(&mut s, &mut v, 1, false), lit(&mut s, &mut v, 2, true)],
            vec![lit(&mut s, &mut v, 2, false), lit(&mut s, &mut v, 3, true)],
        ];
        for c in clauses {
            s.add_clause(c);
        }
        assert_eq!(s.solve(), SatResult::Sat);
        for i in 0..4 {
            assert_eq!(s.value(v[i]), Some(true));
        }
    }

    #[test]
    fn pigeonhole_2_into_1_unsat() {
        // Two pigeons, one hole: p1h1, p2h1, ¬p1h1 ∨ ¬p2h1.
        let mut s = SatSolver::new();
        let p1 = s.new_var();
        let p2 = s.new_var();
        s.add_clause(vec![Lit::new(p1, true)]);
        s.add_clause(vec![Lit::new(p2, true)]);
        s.add_clause(vec![Lit::new(p1, false), Lit::new(p2, false)]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn learnt_clauses_recorded() {
        // PHP(4,3) requires deep conflict analysis; non-unit learnt
        // clauses must appear in the database (PHP(3,2) learns only unit
        // clauses, which are asserted directly instead of stored).
        let mut s = SatSolver::new();
        let mut x = vec![vec![BVar(0); 3]; 4];
        for row in x.iter_mut() {
            for cell in row.iter_mut() {
                *cell = s.new_var();
            }
        }
        for row in &x {
            s.add_clause(row.iter().map(|&v| Lit::new(v, true)).collect());
        }
        for h in 0..3 {
            for p1 in 0..4 {
                for p2 in (p1 + 1)..4 {
                    s.add_clause(vec![Lit::new(x[p1][h], false), Lit::new(x[p2][h], false)]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.num_learnt() > 0);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // PHP(3,2): each pigeon in some hole; no two pigeons share a hole.
        let mut s = SatSolver::new();
        let mut x = [[BVar(0); 2]; 3];
        for p in 0..3 {
            for h in 0..2 {
                x[p][h] = s.new_var();
            }
        }
        for p in 0..3 {
            s.add_clause(vec![Lit::new(x[p][0], true), Lit::new(x[p][1], true)]);
        }
        for h in 0..2 {
            for p1 in 0..3 {
                for p2 in (p1 + 1)..3 {
                    s.add_clause(vec![Lit::new(x[p1][h], false), Lit::new(x[p2][h], false)]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(
            s.stats.conflicts > 0,
            "requires search, not just propagation"
        );
    }

    #[test]
    fn satisfiable_3sat_random_shape() {
        // A small satisfiable instance with multiple models.
        let mut s = SatSolver::new();
        let mut v = Vec::new();
        let cs: Vec<Vec<(usize, bool)>> = vec![
            vec![(0, true), (1, false), (2, true)],
            vec![(0, false), (1, true), (3, true)],
            vec![(2, false), (3, false), (4, true)],
            vec![(1, true), (4, false), (0, true)],
            vec![(3, true), (2, true), (1, false)],
        ];
        for c in &cs {
            let clause: Vec<Lit> = c.iter().map(|&(i, p)| lit(&mut s, &mut v, i, p)).collect();
            s.add_clause(clause);
        }
        assert_eq!(s.solve(), SatResult::Sat);
        // Model check.
        for c in &cs {
            assert!(
                c.iter()
                    .any(|&(i, p)| s.value(v[i]) == Some(p) || s.value(v[i]).is_none()),
                "clause {c:?} not satisfied"
            );
        }
    }

    #[test]
    fn incremental_solving_after_sat() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(vec![Lit::new(a, true), Lit::new(b, true)]);
        assert_eq!(s.solve(), SatResult::Sat);
        // Force a and ¬b afterwards; still SAT.
        s.add_clause(vec![Lit::new(a, true)]);
        s.add_clause(vec![Lit::new(b, false)]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(a), Some(true));
        assert_eq!(s.value(b), Some(false));
        // Now contradict.
        s.add_clause(vec![Lit::new(a, false)]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn tautological_clause_ignored() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(vec![Lit::new(a, true), Lit::new(a, false)]);
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = SatSolver::new();
        let _ = s.new_var();
        s.add_clause(vec![]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(SatSolver::luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn assumptions_do_not_poison_the_instance() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        // a ∨ b, ¬a ∨ b  ⇒  b is implied.
        s.add_clause(vec![Lit::new(a, true), Lit::new(b, true)]);
        s.add_clause(vec![Lit::new(a, false), Lit::new(b, true)]);
        assert_eq!(s.solve_assuming(&[Lit::new(b, false)]), SatResult::Unsat);
        assert!(!s.is_unsat(), "assumption failure must not be permanent");
        assert_eq!(s.solve_assuming(&[Lit::new(b, true)]), SatResult::Sat);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(b), Some(true));
    }

    #[test]
    fn assumptions_force_model_values() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(vec![Lit::new(a, true), Lit::new(b, true)]);
        assert_eq!(
            s.solve_assuming(&[Lit::new(a, false), Lit::new(b, true)]),
            SatResult::Sat
        );
        assert_eq!(s.value(a), Some(false));
        assert_eq!(s.value(b), Some(true));
    }

    #[test]
    fn contradictory_assumptions_unsat_but_recoverable() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        assert_eq!(
            s.solve_assuming(&[Lit::new(a, true), Lit::new(a, false)]),
            SatResult::Unsat
        );
        assert!(!s.is_unsat());
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn learnt_clauses_survive_assumption_queries() {
        // PHP(4,3) gated behind a selector g: with g assumed true the
        // instance is UNSAT and learns clauses; afterwards the instance
        // (and its learnt clauses) must still answer SAT with ¬g.
        let mut s = SatSolver::new();
        let g = s.new_var();
        let mut x = vec![vec![BVar(0); 3]; 4];
        for row in x.iter_mut() {
            for cell in row.iter_mut() {
                *cell = s.new_var();
            }
        }
        for row in &x {
            let mut c: Vec<Lit> = row.iter().map(|&v| Lit::new(v, true)).collect();
            c.push(Lit::new(g, false));
            s.add_clause(c);
        }
        for h in 0..3 {
            for p1 in 0..4 {
                for p2 in (p1 + 1)..4 {
                    s.add_clause(vec![
                        Lit::new(x[p1][h], false),
                        Lit::new(x[p2][h], false),
                        Lit::new(g, false),
                    ]);
                }
            }
        }
        assert_eq!(s.solve_assuming(&[Lit::new(g, true)]), SatResult::Unsat);
        assert!(!s.is_unsat());
        let learnt_after_first = s.num_learnt();
        assert!(learnt_after_first > 0, "expected learnt clauses");
        assert_eq!(s.solve_assuming(&[Lit::new(g, false)]), SatResult::Sat);
        assert!(
            s.num_learnt() >= learnt_after_first,
            "learnt clauses must persist across queries"
        );
        // Re-asking the UNSAT query still answers UNSAT.
        assert_eq!(s.solve_assuming(&[Lit::new(g, true)]), SatResult::Unsat);
    }

    #[test]
    fn lit_encoding_roundtrip() {
        let v = BVar(7);
        let l = Lit::new(v, true);
        assert_eq!(l.var(), v);
        assert!(l.is_positive());
        let n = l.negate();
        assert_eq!(n.var(), v);
        assert!(!n.is_positive());
        assert_eq!(n.negate(), l);
    }
}
