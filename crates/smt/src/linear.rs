//! The linear-time contradiction solver of §3.1.1.
//!
//! During the intra-procedural points-to analysis Pinpoint must discard
//! points-to relations that only hold on infeasible paths, but invoking a
//! full SMT solver there would redo work that the bug-finding stage repeats
//! anyway. The paper observes that more than 90% of the *unsatisfiable*
//! conditions built at that stage contain an apparent contradiction of the
//! form `a ∧ ¬a`, and detects them with a solver linear in the number of
//! atomic constraints.
//!
//! For a condition `C` the solver computes two sets of atoms:
//! `P(C)` (atoms that must hold positively) and `N(C)` (atoms that must hold
//! negatively), using the rules from the paper:
//!
//! * `C = a` (atomic): `P = {a}`, `N = ∅`;
//! * `C = ¬C₁`: `P = N(C₁)`, `N = P(C₁)`;
//! * `C = C₁ ∧ C₂`: `P = P₁ ∪ P₂`, `N = N₁ ∪ N₂`;
//! * `C = C₁ ∨ C₂`: `P = P₁ ∩ P₂`, `N = N₁ ∩ N₂`.
//!
//! If `P(C) ∩ N(C) ≠ ∅` then `C` contains `a ∧ ¬a` and is unsatisfiable.
//! The converse does not hold — a condition the solver cannot refute may
//! still be unsatisfiable — so callers treat [`LinearVerdict::Unknown`] as
//! "possibly satisfiable".

use crate::term::{TermArena, TermId, TermKind};
use std::collections::HashMap;

/// Outcome of the linear-time check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinearVerdict {
    /// The condition contains an apparent contradiction `a ∧ ¬a`.
    Unsat,
    /// No apparent contradiction found; the condition may or may not be
    /// satisfiable.
    Unknown,
}

/// Sorted set of atom ids; small enough that `Vec` beats hash sets here.
type AtomSet = Vec<TermId>;

fn union(a: &AtomSet, b: &AtomSet) -> AtomSet {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

fn intersect(a: &AtomSet, b: &AtomSet) -> AtomSet {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn overlaps(a: &AtomSet, b: &AtomSet) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Linear-time contradiction checker with memoisation across queries.
///
/// The per-term `(P, N)` sets are cached, so repeatedly checking conditions
/// that share structure (the common case on a symbolic expression graph,
/// where conditions are hash-consed) costs amortised linear time in the
/// number of *new* atoms.
///
/// # Examples
///
/// ```
/// use pinpoint_smt::term::{Sort, TermArena};
/// use pinpoint_smt::linear::{LinearSolver, LinearVerdict};
///
/// let mut arena = TermArena::new();
/// let x = arena.var("x", Sort::Int);
/// let zero = arena.int(0);
/// let a = arena.eq(x, zero);
/// let p = arena.var("p", Sort::Bool);
/// let na = arena.not(a);
/// let lhs = arena.and2(a, p);
/// // (x = 0 ∧ p) ∧ ¬(x = 0): apparent contradiction
/// // note: the arena itself already folds syntactically identical
/// // complements, so we build the nesting through a disjunction.
/// let c = arena.or2(lhs, na);
/// let mut solver = LinearSolver::new();
/// assert_eq!(solver.check(&arena, c), LinearVerdict::Unknown);
/// ```
#[derive(Debug, Default)]
pub struct LinearSolver {
    cache: HashMap<TermId, (AtomSet, AtomSet)>,
    /// Number of `check` calls answered `Unsat`.
    pub unsat_count: u64,
    /// Number of `check` calls answered `Unknown`.
    pub unknown_count: u64,
    /// Number of `check` calls that degraded to `Unknown` because the
    /// condition contained a malformed connective (an empty `Or`, which
    /// the smart constructors never build but a replayed
    /// [`TermArena::push_raw`] stream can contain).
    pub degraded_count: u64,
}

impl LinearSolver {
    /// Creates a solver with an empty memo table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks `c` for an apparent contradiction.
    ///
    /// A condition the `P`/`N` rules cannot soundly describe (an empty
    /// disjunction, possible only in a replayed raw term stream) degrades
    /// to `Unknown` — handing the decision to the full solver — rather
    /// than panicking mid-analysis.
    pub fn check(&mut self, arena: &TermArena, c: TermId) -> LinearVerdict {
        if arena.is_false(c) {
            self.unsat_count += 1;
            return LinearVerdict::Unsat;
        }
        match self.sets(arena, c) {
            Some((p, n)) if overlaps(&p, &n) => {
                self.unsat_count += 1;
                LinearVerdict::Unsat
            }
            Some(_) => {
                self.unknown_count += 1;
                LinearVerdict::Unknown
            }
            None => {
                self.degraded_count += 1;
                self.unknown_count += 1;
                LinearVerdict::Unknown
            }
        }
    }

    /// Returns `(P(c), N(c))`, computing and memoising as needed.
    /// `None` means the condition is structurally malformed for the
    /// `P`/`N` rules (empty `Or`).
    fn sets(&mut self, arena: &TermArena, c: TermId) -> Option<(AtomSet, AtomSet)> {
        if let Some(cached) = self.cache.get(&c) {
            return Some(cached.clone());
        }
        // Explicit stack: conditions can be deeply nested on long paths.
        let mut stack = vec![c];
        while let Some(&top) = stack.last() {
            if self.cache.contains_key(&top) {
                stack.pop();
                continue;
            }
            let children: Vec<TermId> = match arena.kind(top) {
                TermKind::Not(x) => vec![*x],
                TermKind::And(xs) | TermKind::Or(xs) => xs.clone(),
                _ => Vec::new(),
            };
            let pending: Vec<TermId> = children
                .iter()
                .copied()
                .filter(|ch| !self.cache.contains_key(ch))
                .collect();
            if !pending.is_empty() {
                stack.extend(pending);
                continue;
            }
            stack.pop();
            let entry = match arena.kind(top) {
                TermKind::BoolConst(_) => (Vec::new(), Vec::new()),
                TermKind::Not(x) => {
                    let (p, n) = self.cache[x].clone();
                    (n, p)
                }
                TermKind::And(xs) => {
                    let mut p = Vec::new();
                    let mut n = Vec::new();
                    for x in xs {
                        let (cp, cn) = &self.cache[x];
                        p = union(&p, cp);
                        n = union(&n, cn);
                    }
                    (p, n)
                }
                TermKind::Or(xs) => {
                    // The smart constructors simplify `or []` away, but a
                    // term rebuilt via `push_raw` can carry one; there is
                    // no sound `(P, N)` for it, so degrade.
                    let mut iter = xs.iter();
                    let first = iter.next()?;
                    let (mut p, mut n) = self.cache[first].clone();
                    for x in iter {
                        let (cp, cn) = &self.cache[x];
                        p = intersect(&p, cp);
                        n = intersect(&n, cn);
                    }
                    (p, n)
                }
                // Atomic constraint (Var, Eq, Lt, Le over bool sort, or an
                // Ite of boolean sort, which we treat opaquely).
                _ => (vec![top], Vec::new()),
            };
            self.cache.insert(top, entry);
        }
        Some(self.cache[&c].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sort;

    /// Builds `a ∧ ¬a` through opaque conjuncts so the arena's syntactic
    /// complement folding does not fire, exercising the solver itself.
    #[test]
    fn detects_nested_contradiction() {
        let mut arena = TermArena::new();
        let x = arena.var("x", Sort::Int);
        let zero = arena.int(0);
        let a = arena.eq(x, zero);
        let p = arena.var("p", Sort::Bool);
        let q = arena.var("q", Sort::Bool);
        let na = arena.not(a);
        // (a ∧ p) ∧ (¬a ∧ q): contradiction hidden one level down.
        let l = arena.and2(a, p);
        let r = arena.and2(na, q);
        // `and` flattens, so go through Or to keep the nesting honest:
        // ((a∧p) ∨ false) ∧ ((¬a∧q) ∨ false) — but `or` simplifies too.
        // Flattened and still works: the union rule must find a in P and N.
        let c = arena.and2(l, r);
        let mut s = LinearSolver::new();
        assert_eq!(s.check(&arena, c), LinearVerdict::Unsat);
    }

    #[test]
    fn disjunction_intersects() {
        let mut arena = TermArena::new();
        let a = arena.var("a", Sort::Bool);
        let b = arena.var("b", Sort::Bool);
        let na = arena.not(a);
        // (a ∨ b) ∧ ¬a is satisfiable (b = true): P((a∨b)) = {} ∩ ... wait,
        // P(a∨b) = P(a) ∩ P(b) = ∅, N(¬a) = ∅, P(¬a) = ∅, N contains a.
        let lhs = arena.or2(a, b);
        let c = arena.and2(lhs, na);
        let mut s = LinearSolver::new();
        assert_eq!(s.check(&arena, c), LinearVerdict::Unknown);
    }

    #[test]
    fn disjunction_common_atom_detected() {
        let mut arena = TermArena::new();
        let a = arena.var("a", Sort::Bool);
        let b = arena.var("b", Sort::Bool);
        let c_ = arena.var("c", Sort::Bool);
        let na = arena.not(a);
        // (a∧b) ∨ (a∧c) has P = {a}; conjoined with ¬a ⇒ contradiction.
        let l = arena.and2(a, b);
        let r = arena.and2(a, c_);
        let disj = arena.or2(l, r);
        let cond = arena.and2(disj, na);
        let mut s = LinearSolver::new();
        assert_eq!(s.check(&arena, cond), LinearVerdict::Unsat);
    }

    #[test]
    fn satisfiable_stays_unknown() {
        let mut arena = TermArena::new();
        let a = arena.var("a", Sort::Bool);
        let b = arena.var("b", Sort::Bool);
        let nb = arena.not(b);
        let c = arena.and2(a, nb);
        let mut s = LinearSolver::new();
        assert_eq!(s.check(&arena, c), LinearVerdict::Unknown);
    }

    #[test]
    fn semantic_unsat_not_caught() {
        // x < 0 ∧ 0 < x is unsatisfiable but not *apparently* contradictory:
        // the linear solver must answer Unknown (the full solver catches it).
        let mut arena = TermArena::new();
        let x = arena.var("x", Sort::Int);
        let zero = arena.int(0);
        let l = arena.lt(x, zero);
        let r = arena.lt(zero, x);
        let c = arena.and2(l, r);
        let mut s = LinearSolver::new();
        assert_eq!(s.check(&arena, c), LinearVerdict::Unknown);
    }

    #[test]
    fn false_constant_is_unsat() {
        let mut arena = TermArena::new();
        let f = arena.fls();
        let mut s = LinearSolver::new();
        assert_eq!(s.check(&arena, f), LinearVerdict::Unsat);
    }

    #[test]
    fn empty_or_degrades_to_unknown() {
        use crate::term::TermKind;
        // The smart constructors never produce `or []`, but a replayed
        // raw term stream (the persistent cache path) can hand one to the
        // solver; it must degrade, not panic.
        let mut arena = TermArena::new();
        let a = arena.var("a", Sort::Bool);
        let empty_or = arena
            .push_raw(TermKind::Or(Vec::new()), Sort::Bool)
            .expect("fresh raw term");
        let mut s = LinearSolver::new();
        assert_eq!(s.check(&arena, empty_or), LinearVerdict::Unknown);
        assert_eq!(s.degraded_count, 1);
        // Nested inside a conjunction it degrades the same way…
        let cond = arena
            .push_raw(TermKind::And(vec![a, empty_or]), Sort::Bool)
            .expect("fresh raw term");
        assert_eq!(s.check(&arena, cond), LinearVerdict::Unknown);
        assert_eq!(s.degraded_count, 2);
        // …and the solver still answers healthy queries afterwards.
        let na = arena.not(a);
        let contra = arena
            .push_raw(TermKind::And(vec![a, na]), Sort::Bool)
            .expect("fresh raw term");
        assert_eq!(s.check(&arena, contra), LinearVerdict::Unsat);
    }

    #[test]
    fn counters_accumulate() {
        let mut arena = TermArena::new();
        let a = arena.var("a", Sort::Bool);
        let mut s = LinearSolver::new();
        let _ = s.check(&arena, a);
        let f = arena.fls();
        let _ = s.check(&arena, f);
        assert_eq!(s.unknown_count, 1);
        assert_eq!(s.unsat_count, 1);
    }
}
