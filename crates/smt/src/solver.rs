//! The lazy DPLL(T) SMT solver used at Pinpoint's bug-detection stage.
//!
//! Path conditions harvested from the symbolic expression graph are boolean
//! combinations of theory atoms. The solver Tseitin-encodes the boolean
//! skeleton into CNF, runs the CDCL core, and on every propositional model
//! checks the implied conjunction of theory literals with
//! [`crate::theory::check_conjunction`]. Inconsistent models are excluded
//! with a blocking clause and the loop repeats until either a
//! theory-consistent model is found (`Sat`) or the CNF becomes
//! unsatisfiable (`Unsat`).

use crate::sat::{BVar, Lit, SatResult as CoreResult, SatSolver};
use crate::term::{TermArena, TermId, TermKind};
use crate::theory::{check_conjunction, TheoryLit, TheoryVerdict};
use std::collections::HashMap;

/// Result of an SMT query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmtResult {
    /// The formula is satisfiable (a theory-consistent model was found).
    Sat,
    /// The formula is unsatisfiable.
    Unsat,
}

/// Statistics recorded across all queries of one [`SmtSolver`].
#[derive(Debug, Default, Clone, Copy)]
pub struct SmtStats {
    /// Number of `check` queries answered.
    pub queries: u64,
    /// Queries answered `Sat`.
    pub sat: u64,
    /// Queries answered `Unsat`.
    pub unsat: u64,
    /// Theory-consistency checks performed across all queries.
    pub theory_checks: u64,
    /// Blocking clauses added (propositional models refuted by theories).
    pub theory_conflicts: u64,
    /// CDCL conflicts across all queries' SAT cores.
    pub conflicts: u64,
    /// Clauses learned across all queries' SAT cores.
    pub learned: u64,
    /// Unit propagations across all queries' SAT cores.
    pub propagations: u64,
    /// Branching decisions across all queries' SAT cores.
    pub decisions: u64,
}

/// Cost snapshot of the most recent [`SmtSolver::check`] call, for
/// per-query attribution. All counters are deterministic functions of
/// the query; `solver_ns` is wall time and varies run to run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LastQueryCost {
    /// Wall time of the check, nanoseconds.
    pub solver_ns: u64,
    /// CDCL conflicts.
    pub conflicts: u64,
    /// Learned clauses.
    pub learned: u64,
    /// Unit propagations.
    pub propagations: u64,
    /// Branching decisions.
    pub decisions: u64,
    /// Theory-consistency checks (DPLL(T) rounds).
    pub theory_checks: u64,
    /// Theory conflicts (blocking clauses).
    pub theory_conflicts: u64,
}

/// A witness assignment for the boolean variables of a satisfiable query,
/// mapping variable names to their values. Integer-sorted variables are
/// not included (their theory models are not materialised); boolean
/// branch conditions are what a bug report's witness needs.
pub type BoolModel = Vec<(String, bool)>;

/// A fresh solver instance per query keeps the implementation simple; this
/// wrapper owns cross-query statistics.
///
/// # Examples
///
/// ```
/// use pinpoint_smt::term::{Sort, TermArena};
/// use pinpoint_smt::solver::{SmtResult, SmtSolver};
///
/// let mut arena = TermArena::new();
/// let x = arena.var("x", Sort::Int);
/// let zero = arena.int(0);
/// let pos_x = arena.lt(zero, x);
/// let neg_x = arena.lt(x, zero);
/// let both = arena.and2(pos_x, neg_x);
/// let mut solver = SmtSolver::new();
/// assert_eq!(solver.check(&arena, both), SmtResult::Unsat);
/// assert_eq!(solver.check(&arena, pos_x), SmtResult::Sat);
/// ```
#[derive(Debug, Default)]
pub struct SmtSolver {
    /// Aggregate statistics (exposed for the evaluation harness).
    pub stats: SmtStats,
    /// Bound on DPLL(T) model-refutation rounds per query; exceeded bound
    /// conservatively answers `Sat` (a possibly-spurious bug report).
    pub max_rounds: u32,
    /// Cost of the most recent query (zeroed at the start of each check).
    pub last_cost: LastQueryCost,
}

impl SmtSolver {
    /// Creates a solver with the default round limit.
    pub fn new() -> Self {
        Self {
            stats: SmtStats::default(),
            max_rounds: 10_000,
            last_cost: LastQueryCost::default(),
        }
    }

    /// Checks satisfiability of `formula` (a boolean term in `arena`).
    ///
    /// # Panics
    ///
    /// Panics if `formula` is not of boolean sort.
    pub fn check(&mut self, arena: &TermArena, formula: TermId) -> SmtResult {
        self.check_with_model(arena, formula).0
    }

    /// Like [`SmtSolver::check`], also returning a witness assignment of
    /// the formula's free *boolean* variables when satisfiable.
    ///
    /// # Panics
    ///
    /// Panics if `formula` is not of boolean sort.
    pub fn check_with_model(
        &mut self,
        arena: &TermArena,
        formula: TermId,
    ) -> (SmtResult, BoolModel) {
        assert_eq!(
            arena.sort(formula),
            crate::term::Sort::Bool,
            "SMT query must be boolean"
        );
        self.stats.queries += 1;
        let theory_checks_before = self.stats.theory_checks;
        let theory_conflicts_before = self.stats.theory_conflicts;
        let started = std::time::Instant::now();
        let (result, model, core) = self.check_inner(arena, formula);
        self.last_cost = LastQueryCost {
            solver_ns: started.elapsed().as_nanos() as u64,
            conflicts: core.conflicts,
            learned: core.learned,
            propagations: core.propagations,
            decisions: core.decisions,
            theory_checks: self.stats.theory_checks - theory_checks_before,
            theory_conflicts: self.stats.theory_conflicts - theory_conflicts_before,
        };
        self.stats.conflicts += core.conflicts;
        self.stats.learned += core.learned;
        self.stats.propagations += core.propagations;
        self.stats.decisions += core.decisions;
        match result {
            SmtResult::Sat => self.stats.sat += 1,
            SmtResult::Unsat => self.stats.unsat += 1,
        }
        (result, model)
    }

    fn check_inner(
        &mut self,
        arena: &TermArena,
        formula: TermId,
    ) -> (SmtResult, BoolModel, crate::sat::SatStats) {
        if arena.is_true(formula) {
            return (SmtResult::Sat, Vec::new(), crate::sat::SatStats::default());
        }
        if arena.is_false(formula) {
            return (
                SmtResult::Unsat,
                Vec::new(),
                crate::sat::SatStats::default(),
            );
        }
        let mut enc = Encoder::new();
        let root = enc.encode(arena, formula);
        enc.sat.add_clause(vec![root]);
        let mut rounds = 0u32;
        loop {
            match enc.sat.solve() {
                CoreResult::Unsat => return (SmtResult::Unsat, Vec::new(), enc.sat.stats),
                CoreResult::Sat => {
                    // Collect asserted theory literals from the model.
                    let mut lits: Vec<TheoryLit> = Vec::new();
                    let mut blocking: Vec<Lit> = Vec::new();
                    for (&term, &bvar) in &enc.atom_vars {
                        if let Some(value) = enc.sat.value(bvar) {
                            // Plain boolean variables carry no theory
                            // content; only Eq/Lt/Le atoms do.
                            if matches!(
                                arena.kind(term),
                                TermKind::Eq(..) | TermKind::Lt(..) | TermKind::Le(..)
                            ) {
                                lits.push(TheoryLit {
                                    atom: term,
                                    positive: value,
                                });
                                blocking.push(Lit::new(bvar, !value));
                            }
                        }
                    }
                    self.stats.theory_checks += 1;
                    match check_conjunction(arena, &lits) {
                        TheoryVerdict::Consistent => {
                            let model = enc.bool_model(arena);
                            return (SmtResult::Sat, model, enc.sat.stats);
                        }
                        TheoryVerdict::Conflict => {
                            self.stats.theory_conflicts += 1;
                            if blocking.is_empty() {
                                // No atoms to refute: should not happen, but
                                // avoid an infinite loop.
                                return (SmtResult::Unsat, Vec::new(), enc.sat.stats);
                            }
                            enc.sat.add_clause(blocking);
                        }
                    }
                }
            }
            rounds += 1;
            if rounds >= self.max_rounds {
                // Give up: treat as satisfiable (conservative for bug
                // finding — may yield a false positive, never lose a path).
                return (SmtResult::Sat, Vec::new(), enc.sat.stats);
            }
        }
    }
}

/// Tseitin encoder: maps boolean subterms to SAT variables and emits the
/// defining clauses.
///
/// All emitted clauses are *definitions* (full Tseitin equivalences) or
/// globally valid theory lemmas, so one encoder may serve many roots over
/// its lifetime: asserting a root is done with an assumption literal, not
/// a permanent unit clause (see [`crate::session::SmtSession`]).
#[derive(Debug)]
pub(crate) struct Encoder {
    pub(crate) sat: SatSolver,
    /// SAT variable for every boolean subterm (atoms and gates alike).
    pub(crate) term_vars: HashMap<TermId, BVar>,
    /// The subset of `term_vars` that are theory atoms or free booleans.
    pub(crate) atom_vars: HashMap<TermId, BVar>,
}

impl Encoder {
    pub(crate) fn new() -> Self {
        Self {
            sat: SatSolver::new(),
            term_vars: HashMap::new(),
            atom_vars: HashMap::new(),
        }
    }

    /// Returns the literal representing `t` (positive polarity).
    pub(crate) fn encode(&mut self, arena: &TermArena, t: TermId) -> Lit {
        if let Some(&v) = self.term_vars.get(&t) {
            return Lit::new(v, true);
        }
        match arena.kind(t).clone() {
            TermKind::BoolConst(b) => {
                let v = self.fresh(t);
                self.sat.add_clause(vec![Lit::new(v, b)]);
                Lit::new(v, true)
            }
            TermKind::Not(x) => {
                let inner = self.encode(arena, x);
                // Reuse the inner variable with flipped polarity; cache via
                // a gate variable to keep the map total.
                let v = self.fresh(t);
                let lv = Lit::new(v, true);
                // v ↔ ¬inner
                self.sat.add_clause(vec![lv.negate(), inner.negate()]);
                self.sat.add_clause(vec![lv, inner]);
                lv
            }
            TermKind::And(xs) => {
                let children: Vec<Lit> = xs.iter().map(|&x| self.encode(arena, x)).collect();
                let v = self.fresh(t);
                let lv = Lit::new(v, true);
                // v → each child; all children → v.
                let mut long = vec![lv];
                for c in &children {
                    self.sat.add_clause(vec![lv.negate(), *c]);
                    long.push(c.negate());
                }
                self.sat.add_clause(long);
                lv
            }
            TermKind::Or(xs) => {
                let children: Vec<Lit> = xs.iter().map(|&x| self.encode(arena, x)).collect();
                let v = self.fresh(t);
                let lv = Lit::new(v, true);
                let mut long = vec![lv.negate()];
                for c in &children {
                    self.sat.add_clause(vec![lv, c.negate()]);
                    long.push(*c);
                }
                self.sat.add_clause(long);
                lv
            }
            TermKind::Ite(c, a, b) if arena.sort(t) == crate::term::Sort::Bool => {
                let lc = self.encode(arena, c);
                let la = self.encode(arena, a);
                let lb = self.encode(arena, b);
                let v = self.fresh(t);
                let lv = Lit::new(v, true);
                // v ↔ (c ? a : b)
                self.sat.add_clause(vec![lc.negate(), la.negate(), lv]);
                self.sat.add_clause(vec![lc.negate(), la, lv.negate()]);
                self.sat.add_clause(vec![lc, lb.negate(), lv]);
                self.sat.add_clause(vec![lc, lb, lv.negate()]);
                lv
            }
            // Atoms: free boolean variables and theory predicates.
            _ => {
                let v = self.fresh(t);
                self.atom_vars.insert(t, v);
                Lit::new(v, true)
            }
        }
    }

    fn fresh(&mut self, t: TermId) -> BVar {
        let v = self.sat.new_var();
        self.term_vars.insert(t, v);
        v
    }

    /// Extracts the current assignment of free boolean variables.
    fn bool_model(&self, arena: &TermArena) -> BoolModel {
        let mut model: BoolModel = self
            .atom_vars
            .iter()
            .filter_map(|(&term, &bvar)| match arena.kind(term) {
                TermKind::Var(name, crate::term::Sort::Bool) => {
                    self.sat.value(bvar).map(|value| (name.clone(), value))
                }
                _ => None,
            })
            .collect();
        model.sort();
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sort;

    fn solver() -> SmtSolver {
        SmtSolver::new()
    }

    #[test]
    fn pure_boolean_sat_unsat() {
        let mut a = TermArena::new();
        let p = a.var("p", Sort::Bool);
        let q = a.var("q", Sort::Bool);
        let nq = a.not(q);
        let f = a.and2(p, nq);
        let mut s = solver();
        assert_eq!(s.check(&a, f), SmtResult::Sat);
        // (p ∨ q) ∧ ¬p ∧ ¬q
        let pq = a.or2(p, q);
        let np = a.not(p);
        let g = a.and([pq, np, nq]);
        assert_eq!(s.check(&a, g), SmtResult::Unsat);
    }

    #[test]
    fn theory_unsat_via_bounds() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let zero = a.int(0);
        let five = a.int(5);
        let lo = a.lt(five, x);
        let hi = a.lt(x, zero);
        let f = a.and2(lo, hi);
        let mut s = solver();
        assert_eq!(s.check(&a, f), SmtResult::Unsat);
    }

    #[test]
    fn theory_guides_boolean_choice() {
        // (x < 0 ∨ x > 10) ∧ x = 5 is unsat; ∧ x = 12 is sat.
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let zero = a.int(0);
        let ten = a.int(10);
        let five = a.int(5);
        let twelve = a.int(12);
        let l = a.lt(x, zero);
        let r = a.gt(x, ten);
        let lr = a.or2(l, r);
        let x5 = a.eq(x, five);
        let x12 = a.eq(x, twelve);
        let f_unsat = a.and2(lr, x5);
        let f_sat = a.and2(lr, x12);
        let mut s = solver();
        assert_eq!(s.check(&a, f_unsat), SmtResult::Unsat);
        assert_eq!(s.check(&a, f_sat), SmtResult::Sat);
        assert!(s.stats.theory_conflicts > 0, "needed theory refutation");
    }

    #[test]
    fn equality_transitivity_in_context() {
        // p → x = y, p, y = 0, x ≠ 0 is unsat.
        let mut a = TermArena::new();
        let p = a.var("p", Sort::Bool);
        let x = a.var("x", Sort::Int);
        let y = a.var("y", Sort::Int);
        let zero = a.int(0);
        let xy = a.eq(x, y);
        let imp = a.implies(p, xy);
        let y0 = a.eq(y, zero);
        let nx0 = a.ne(x, zero);
        let f = a.and([imp, p, y0, nx0]);
        let mut s = solver();
        assert_eq!(s.check(&a, f), SmtResult::Unsat);
        // Without p it is satisfiable.
        let g = a.and([imp, y0, nx0]);
        assert_eq!(s.check(&a, g), SmtResult::Sat);
    }

    #[test]
    fn value_flow_shaped_condition() {
        // The shape Pinpoint emits for the Fig. 2 bug: θ1 ∧ θ3 ∧ θ2 with
        // θ3 ⇔ (X ≠ 0) and the value-flow equalities; must be SAT.
        let mut a = TermArena::new();
        let t1 = a.var("theta1", Sort::Bool);
        let t2 = a.var("theta2", Sort::Bool);
        let x = a.var("X", Sort::Int);
        let k = a.var("K", Sort::Int);
        let c = a.var("c", Sort::Int);
        let f_ = a.var("f", Sort::Int);
        let zero = a.int(0);
        let t3 = a.ne(x, zero);
        let flow = [a.eq(k, x), a.eq(c, f_)];
        let cond = a.and([t1, t2, t3, flow[0], flow[1]]);
        let mut s = solver();
        assert_eq!(s.check(&a, cond), SmtResult::Sat);
    }

    #[test]
    fn constants_fold_to_immediate_answers() {
        let mut a = TermArena::new();
        let t = a.tru();
        let f = a.fls();
        let mut s = solver();
        assert_eq!(s.check(&a, t), SmtResult::Sat);
        assert_eq!(s.check(&a, f), SmtResult::Unsat);
        assert_eq!(s.stats.queries, 2);
    }

    #[test]
    fn boolean_ite_encoded() {
        let mut a = TermArena::new();
        let c = a.var("c", Sort::Bool);
        let p = a.var("p", Sort::Bool);
        let q = a.var("q", Sort::Bool);
        let ite = a.ite(c, p, q);
        // ite(c,p,q) ∧ c ∧ ¬p is unsat.
        let np = a.not(p);
        let f = a.and([ite, c, np]);
        let mut s = solver();
        assert_eq!(s.check(&a, f), SmtResult::Unsat);
        // ite(c,p,q) ∧ ¬c ∧ q is sat.
        let nc = a.not(c);
        let g = a.and([ite, nc, q]);
        assert_eq!(s.check(&a, g), SmtResult::Sat);
    }

    #[test]
    fn deep_conjunction_of_independent_atoms() {
        let mut a = TermArena::new();
        let mut conj = Vec::new();
        for i in 0..50 {
            let x = a.var(format!("x{i}"), Sort::Int);
            let c = a.int(i);
            conj.push(a.eq(x, c));
        }
        let f = a.and(conj);
        let mut s = solver();
        assert_eq!(s.check(&a, f), SmtResult::Sat);
    }

    #[test]
    fn stats_accumulate() {
        let mut a = TermArena::new();
        let p = a.var("p", Sort::Bool);
        let np = a.not(p);
        let f = a.and2(p, np);
        let mut s = solver();
        let _ = s.check(&a, f);
        let _ = s.check(&a, p);
        assert_eq!(s.stats.queries, 2);
        assert_eq!(s.stats.sat, 1);
        assert_eq!(s.stats.unsat, 1);
    }

    #[test]
    fn last_cost_is_per_query() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let zero = a.int(0);
        let ten = a.int(10);
        let five = a.int(5);
        let l = a.lt(x, zero);
        let r = a.gt(x, ten);
        let lr = a.or2(l, r);
        let x5 = a.eq(x, five);
        let hard = a.and2(lr, x5);
        let mut s = solver();
        assert_eq!(s.check(&a, hard), SmtResult::Unsat);
        let hard_cost = s.last_cost;
        assert!(hard_cost.theory_checks > 0);
        assert!(hard_cost.solver_ns > 0);
        // A trivial constant query must reset the snapshot, not accumulate.
        let t = a.tru();
        assert_eq!(s.check(&a, t), SmtResult::Sat);
        assert_eq!(s.last_cost.theory_checks, 0);
        assert_eq!(s.last_cost.decisions, 0);
        // Aggregates keep the totals.
        assert_eq!(s.stats.theory_checks, hard_cost.theory_checks);
    }
}
