//! Incremental SMT sessions: one long-lived solver answering many
//! related queries.
//!
//! [`crate::solver::SmtSolver`] builds a fresh CDCL instance per query,
//! re-encoding and re-learning everything from scratch. Pinpoint's
//! detection stage poses hundreds of queries per source whose conditions
//! share most of their structure (§3.1), so an [`SmtSession`] keeps one
//! Tseitin encoder and one SAT core alive across queries:
//!
//! - every clause in the core is either a Tseitin *definition* (a full
//!   `gate ↔ inputs` equivalence) or a theory lemma (a blocking clause
//!   refuting a theory-inconsistent conjunction of atoms), both globally
//!   valid — so clauses from one query, including everything the CDCL
//!   core *learned*, soundly constrain every later query;
//! - a query root is asserted as an **assumption** literal
//!   ([`crate::sat::SatSolver::solve_assuming`]), never as a permanent
//!   unit clause, so an `Unsat` answer retracts with the assumption
//!   instead of poisoning the instance;
//! - shared subterms encode once: the second query over a re-occurring
//!   guard conjunction reuses its SAT variables and clauses outright.
//!
//! Determinism: given the same sequence of queries over the same arena,
//! a session's answers, models, and statistics are identical — atom
//! scans are ordered by [`TermId`], not hash-map order. The detection
//! stage exploits this by running one session per source, so results are
//! independent of how sources are scheduled across worker threads.

use crate::sat::{Lit, SatResult as CoreResult};
use crate::solver::{BoolModel, Encoder, LastQueryCost, SmtResult, SmtStats};
use crate::term::{Sort, TermArena, TermId, TermKind};
use crate::theory::{check_conjunction, TheoryLit, TheoryVerdict};
use std::collections::HashSet;

/// A persistent, assumption-based incremental SMT solver.
///
/// # Examples
///
/// ```
/// use pinpoint_smt::term::{Sort, TermArena};
/// use pinpoint_smt::session::SmtSession;
/// use pinpoint_smt::solver::SmtResult;
///
/// let mut arena = TermArena::new();
/// let x = arena.var("x", Sort::Int);
/// let zero = arena.int(0);
/// let five = arena.int(5);
/// let pos = arena.lt(zero, x);
/// let neg = arena.lt(x, zero);
/// let x5 = arena.eq(x, five);
/// let q1 = arena.and2(pos, neg);
/// let q2 = arena.and2(pos, x5);
/// let mut s = SmtSession::new();
/// assert_eq!(s.check_assuming(&arena, q1), SmtResult::Unsat);
/// // The session survives the Unsat answer and reuses the encoding of
/// // `pos` for the next query.
/// assert_eq!(s.check_assuming(&arena, q2), SmtResult::Sat);
/// ```
#[derive(Debug)]
pub struct SmtSession {
    enc: Encoder,
    /// Assumption literals established before every check, in push order.
    assumption_lits: Vec<Lit>,
    /// The boolean terms behind `assumption_lits` (their atoms take part
    /// in theory checks alongside the query root's).
    assumption_terms: Vec<TermId>,
    /// Bound on DPLL(T) model-refutation rounds per query; an exceeded
    /// bound conservatively answers `Sat` and sets
    /// [`SmtSession::last_budget_exhausted`].
    pub max_rounds: u32,
    /// Aggregate statistics across the session's queries.
    pub stats: SmtStats,
    /// Cost of the most recent query (zeroed at the start of each check).
    pub last_cost: LastQueryCost,
    /// Whether the most recent query gave up at the round budget; such
    /// conservative `Sat` answers must not be cached as verdicts.
    pub last_budget_exhausted: bool,
}

impl Default for SmtSession {
    fn default() -> Self {
        Self::new()
    }
}

impl SmtSession {
    /// Creates an empty session with the default round limit.
    pub fn new() -> Self {
        Self {
            enc: Encoder::new(),
            assumption_lits: Vec::new(),
            assumption_terms: Vec::new(),
            max_rounds: 10_000,
            stats: SmtStats::default(),
            last_cost: LastQueryCost::default(),
            last_budget_exhausted: false,
        }
    }

    /// Encodes `terms` and establishes them as assumptions for every
    /// subsequent check until [`SmtSession::clear_assumptions`].
    ///
    /// # Panics
    ///
    /// Panics if any term is not of boolean sort.
    pub fn push_assumptions(&mut self, arena: &TermArena, terms: &[TermId]) {
        for &t in terms {
            assert_eq!(arena.sort(t), Sort::Bool, "assumption must be boolean");
            let lit = self.enc.encode(arena, t);
            self.assumption_lits.push(lit);
            self.assumption_terms.push(t);
        }
    }

    /// Retracts all assumptions. The encoding and everything learned
    /// under the assumptions remain (learned clauses are implied by the
    /// clause database alone, never by assumptions).
    pub fn clear_assumptions(&mut self) {
        self.assumption_lits.clear();
        self.assumption_terms.clear();
    }

    /// Number of conflict-derived clauses currently held by the SAT
    /// core — the state an incremental session carries between queries.
    pub fn num_learnt(&self) -> usize {
        self.enc.sat.num_learnt()
    }

    /// Checks satisfiability of `formula` under the pushed assumptions.
    ///
    /// # Panics
    ///
    /// Panics if `formula` is not of boolean sort.
    pub fn check_assuming(&mut self, arena: &TermArena, formula: TermId) -> SmtResult {
        self.check_with_model(arena, formula).0
    }

    /// Like [`SmtSession::check_assuming`], also returning a witness
    /// assignment of the formula's free *boolean* variables when
    /// satisfiable.
    ///
    /// # Panics
    ///
    /// Panics if `formula` is not of boolean sort.
    pub fn check_with_model(
        &mut self,
        arena: &TermArena,
        formula: TermId,
    ) -> (SmtResult, BoolModel) {
        assert_eq!(arena.sort(formula), Sort::Bool, "SMT query must be boolean");
        self.stats.queries += 1;
        self.last_budget_exhausted = false;
        let sat_before = self.enc.sat.stats;
        let theory_checks_before = self.stats.theory_checks;
        let theory_conflicts_before = self.stats.theory_conflicts;
        let started = std::time::Instant::now();
        let (result, model) = self.check_inner(arena, formula);
        let sat_after = self.enc.sat.stats;
        self.last_cost = LastQueryCost {
            solver_ns: started.elapsed().as_nanos() as u64,
            conflicts: sat_after.conflicts - sat_before.conflicts,
            learned: sat_after.learned - sat_before.learned,
            propagations: sat_after.propagations - sat_before.propagations,
            decisions: sat_after.decisions - sat_before.decisions,
            theory_checks: self.stats.theory_checks - theory_checks_before,
            theory_conflicts: self.stats.theory_conflicts - theory_conflicts_before,
        };
        self.stats.conflicts += self.last_cost.conflicts;
        self.stats.learned += self.last_cost.learned;
        self.stats.propagations += self.last_cost.propagations;
        self.stats.decisions += self.last_cost.decisions;
        match result {
            SmtResult::Sat => self.stats.sat += 1,
            SmtResult::Unsat => self.stats.unsat += 1,
        }
        (result, model)
    }

    fn check_inner(&mut self, arena: &TermArena, formula: TermId) -> (SmtResult, BoolModel) {
        if arena.is_false(formula) {
            return (SmtResult::Unsat, Vec::new());
        }
        if arena.is_true(formula) && self.assumption_lits.is_empty() {
            return (SmtResult::Sat, Vec::new());
        }
        if self.enc.sat.is_unsat() {
            // A level-0 contradiction (e.g. conflicting theory lemmas on
            // shared structure) refutes every query.
            return (SmtResult::Unsat, Vec::new());
        }
        let root = self.enc.encode(arena, formula);
        // Theory reasoning is restricted to the atoms this query can see:
        // the root's cone plus the assumptions'. Atoms of *other* queries
        // encoded in this session keep their variables and clauses but do
        // not join the conjunction sent to the theory checker.
        let mut atoms = self.relevant_atoms(arena, formula);
        atoms.sort_unstable();
        let mut assumptions = self.assumption_lits.clone();
        assumptions.push(root);
        let mut rounds = 0u32;
        loop {
            match self.enc.sat.solve_assuming(&assumptions) {
                CoreResult::Unsat => return (SmtResult::Unsat, Vec::new()),
                CoreResult::Sat => {
                    let mut lits: Vec<TheoryLit> = Vec::new();
                    let mut blocking: Vec<Lit> = Vec::new();
                    for &term in &atoms {
                        if matches!(
                            arena.kind(term),
                            TermKind::Eq(..) | TermKind::Lt(..) | TermKind::Le(..)
                        ) {
                            let bvar = self.enc.atom_vars[&term];
                            if let Some(value) = self.enc.sat.value(bvar) {
                                lits.push(TheoryLit {
                                    atom: term,
                                    positive: value,
                                });
                                blocking.push(Lit::new(bvar, !value));
                            }
                        }
                    }
                    self.stats.theory_checks += 1;
                    match check_conjunction(arena, &lits) {
                        TheoryVerdict::Consistent => {
                            let model = self.bool_model(arena, &atoms);
                            return (SmtResult::Sat, model);
                        }
                        TheoryVerdict::Conflict => {
                            self.stats.theory_conflicts += 1;
                            if blocking.is_empty() {
                                return (SmtResult::Unsat, Vec::new());
                            }
                            // A theory lemma: valid regardless of the
                            // query, so it persists in the session.
                            self.enc.sat.add_clause(blocking);
                        }
                    }
                }
            }
            rounds += 1;
            if rounds >= self.max_rounds {
                self.last_budget_exhausted = true;
                return (SmtResult::Sat, Vec::new());
            }
        }
    }

    /// Atoms (theory predicates and free booleans) reachable from the
    /// query root and the current assumptions through boolean gates.
    fn relevant_atoms(&self, arena: &TermArena, formula: TermId) -> Vec<TermId> {
        let mut seen: HashSet<TermId> = HashSet::new();
        let mut atoms: Vec<TermId> = Vec::new();
        let mut stack: Vec<TermId> = vec![formula];
        stack.extend(self.assumption_terms.iter().copied());
        while let Some(t) = stack.pop() {
            if !seen.insert(t) {
                continue;
            }
            match arena.kind(t) {
                TermKind::BoolConst(_) => {}
                TermKind::Not(x) => stack.push(*x),
                TermKind::And(xs) | TermKind::Or(xs) => stack.extend(xs.iter().copied()),
                TermKind::Ite(c, a, b) if arena.sort(t) == Sort::Bool => {
                    stack.push(*c);
                    stack.push(*a);
                    stack.push(*b);
                }
                _ => atoms.push(t),
            }
        }
        atoms
    }

    /// The current assignment of the free boolean variables among
    /// `atoms`, sorted by name.
    fn bool_model(&self, arena: &TermArena, atoms: &[TermId]) -> BoolModel {
        let mut model: BoolModel = atoms
            .iter()
            .filter_map(|&term| match arena.kind(term) {
                TermKind::Var(name, Sort::Bool) => {
                    let bvar = self.enc.atom_vars[&term];
                    self.enc.sat.value(bvar).map(|value| (name.clone(), value))
                }
                _ => None,
            })
            .collect();
        model.sort();
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SmtSolver;

    #[test]
    fn session_matches_fresh_solver_over_query_sequence() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let p = a.var("p", Sort::Bool);
        let zero = a.int(0);
        let ten = a.int(10);
        let five = a.int(5);
        let l = a.lt(x, zero);
        let r = a.gt(x, ten);
        let lr = a.or2(l, r);
        let x5 = a.eq(x, five);
        let queries = [
            a.and2(lr, x5),    // theory-unsat
            a.and2(lr, p),     // sat
            a.and2(l, r),      // theory-unsat
            a.and([lr, p, r]), // sat
            a.tru(),
            a.fls(),
        ];
        let mut session = SmtSession::new();
        for &q in &queries {
            let mut fresh = SmtSolver::new();
            let (want, want_model) = fresh.check_with_model(&a, q);
            let (got, got_model) = session.check_with_model(&a, q);
            assert_eq!(got, want, "verdict mismatch");
            assert_eq!(got_model, want_model, "model mismatch");
        }
    }

    #[test]
    fn unsat_queries_do_not_poison_the_session() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let zero = a.int(0);
        let pos = a.lt(zero, x);
        let neg = a.lt(x, zero);
        let contradiction = a.and2(pos, neg);
        let mut s = SmtSession::new();
        for _ in 0..3 {
            assert_eq!(s.check_assuming(&a, contradiction), SmtResult::Unsat);
            assert_eq!(s.check_assuming(&a, pos), SmtResult::Sat);
        }
        assert_eq!(s.stats.sat, 3);
        assert_eq!(s.stats.unsat, 3);
    }

    #[test]
    fn shared_structure_is_encoded_once() {
        let mut a = TermArena::new();
        let mut guards = Vec::new();
        for i in 0..8 {
            guards.push(a.var(format!("g{i}"), Sort::Bool));
        }
        let base = a.and(guards.clone());
        let s1 = a.var("sink1", Sort::Bool);
        let s2 = a.var("sink2", Sort::Bool);
        let q1 = a.and2(base, s1);
        let q2 = a.and2(base, s2);
        let mut s = SmtSession::new();
        assert_eq!(s.check_assuming(&a, q1), SmtResult::Sat);
        let vars_after_q1 = s.enc.sat.num_vars();
        assert_eq!(s.check_assuming(&a, q2), SmtResult::Sat);
        // Only `sink2` and the new And gate need fresh variables; the
        // eight guards and the shared conjunction are reused.
        let added = s.enc.sat.num_vars() - vars_after_q1;
        assert!(added <= 2, "expected ≤2 fresh vars, got {added}");
    }

    #[test]
    fn assumptions_scope_queries() {
        let mut a = TermArena::new();
        let p = a.var("p", Sort::Bool);
        let np = a.not(p);
        let mut s = SmtSession::new();
        s.push_assumptions(&a, &[np]);
        assert_eq!(s.check_assuming(&a, p), SmtResult::Unsat);
        s.clear_assumptions();
        assert_eq!(s.check_assuming(&a, p), SmtResult::Sat);
    }

    #[test]
    fn theory_lemmas_persist_across_queries() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let zero = a.int(0);
        let five = a.int(5);
        let l = a.lt(x, zero);
        let e = a.eq(x, five);
        let q = a.and2(l, e);
        let mut s = SmtSession::new();
        assert_eq!(s.check_assuming(&a, q), SmtResult::Unsat);
        let lemma_checks = s.stats.theory_checks;
        assert!(lemma_checks > 0);
        // The same contradiction re-queried: the blocking lemma from the
        // first query (or propositional learning) refutes the second
        // without new theory rounds.
        assert_eq!(s.check_assuming(&a, q), SmtResult::Unsat);
        assert_eq!(
            s.stats.theory_checks, lemma_checks,
            "second identical query must not re-enter the theory loop"
        );
    }

    #[test]
    fn model_is_restricted_to_the_current_query() {
        let mut a = TermArena::new();
        let p = a.var("p", Sort::Bool);
        let q = a.var("q", Sort::Bool);
        let mut s = SmtSession::new();
        let (r1, m1) = s.check_with_model(&a, p);
        assert_eq!(r1, SmtResult::Sat);
        assert_eq!(m1, vec![("p".to_string(), true)]);
        // `p` is encoded in the session, but a query over `q` alone must
        // not leak `p` into the witness.
        let (r2, m2) = s.check_with_model(&a, q);
        assert_eq!(r2, SmtResult::Sat);
        assert_eq!(m2, vec![("q".to_string(), true)]);
    }
}
