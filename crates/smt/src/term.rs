//! Hash-consed term representation for path conditions.
//!
//! Every condition manipulated by the analysis — branch conditions, gating
//! conditions of φ-assignments, data-dependence guards, and whole path
//! conditions — is a [`TermId`] pointing into a [`TermArena`]. Terms are
//! *hash-consed*: structurally equal terms are represented by the same id,
//! so equality is `O(1)` and the condition DAG shared across a function's
//! symbolic expression graph is stored exactly once.
//!
//! The term language mirrors what Pinpoint's analysis emits: boolean
//! structure (`and`/`or`/`not`/`ite`), equalities and integer comparisons
//! between symbolic values, and linear integer arithmetic. Anything beyond
//! that (e.g. a product of two variables) is still representable and is
//! treated as an opaque function application by the theory solver.

use std::collections::HashMap;
use std::fmt;

/// Sort (type) of a term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sort {
    /// Boolean sort.
    Bool,
    /// Mathematical integer sort (models program integers and pointers).
    Int,
}

/// Identifier of a hash-consed term inside a [`TermArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(u32);

impl TermId {
    /// Returns the raw index of this term.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `TermId` from a raw index, e.g. when decoding a
    /// persisted arena. The caller is responsible for only using the id
    /// with an arena in which that index is populated.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        TermId(u32::try_from(index).expect("term index overflow"))
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Structure of a term. Children are [`TermId`]s into the same arena.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermKind {
    /// Boolean constant `true`/`false`.
    BoolConst(bool),
    /// Integer constant.
    IntConst(i64),
    /// Free variable (uninterpreted constant) with a name and sort.
    Var(String, Sort),
    /// Logical negation of a boolean term.
    Not(TermId),
    /// N-ary conjunction (flattened, deduplicated, sorted).
    And(Vec<TermId>),
    /// N-ary disjunction (flattened, deduplicated, sorted).
    Or(Vec<TermId>),
    /// If-then-else; condition is boolean, branches share a sort.
    Ite(TermId, TermId, TermId),
    /// Equality between two terms of the same sort (arguments sorted).
    Eq(TermId, TermId),
    /// Strict less-than over integers.
    Lt(TermId, TermId),
    /// Non-strict less-than over integers.
    Le(TermId, TermId),
    /// N-ary integer addition (flattened, sorted).
    Add(Vec<TermId>),
    /// Integer subtraction.
    Sub(TermId, TermId),
    /// Integer multiplication (binary).
    Mul(TermId, TermId),
    /// Integer negation.
    Neg(TermId),
}

/// Arena owning all terms; the sole way to create or inspect terms.
///
/// An arena is either *standalone* (it owns every term) or an *overlay*
/// over a shared, immutable base arena (see [`TermArena::overlay`]): ids
/// below the base length resolve in the base, new terms are appended
/// locally starting at the base length. An overlay therefore behaves
/// exactly like a deep clone of its base — identical ids for identical
/// construction sequences — while sharing the base storage. This is what
/// makes the module-wide term interner practical: the points-to and SEG
/// stages build one shared arena, and each detection worker layers a
/// cheap scratch overlay on top instead of cloning it.
///
/// # Examples
///
/// ```
/// use pinpoint_smt::term::{Sort, TermArena};
///
/// let mut arena = TermArena::new();
/// let x = arena.var("x", Sort::Bool);
/// let not_x = arena.not(x);
/// let not_not_x = arena.not(not_x);
/// // hash-consing + simplification: ¬¬x is the same term as x
/// assert_eq!(x, not_not_x);
/// ```
#[derive(Debug, Default, Clone)]
pub struct TermArena {
    /// Shared immutable base (overlay arenas only).
    base: Option<std::sync::Arc<TermArena>>,
    /// Number of terms owned by `base` (0 for standalone arenas). Local
    /// ids start here.
    base_len: usize,
    terms: Vec<TermKind>,
    sorts: Vec<Sort>,
    consed: HashMap<TermKind, TermId>,
}

impl TermArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scratch overlay over a shared base arena. Every base
    /// term is visible (same ids, same hash-consing), and new terms are
    /// allocated locally from `base.len()` upward — the overlay is
    /// indistinguishable from a deep clone of the base, at O(1) cost.
    pub fn overlay(base: std::sync::Arc<TermArena>) -> Self {
        let base_len = base.len();
        TermArena {
            base: Some(base),
            base_len,
            terms: Vec::new(),
            sorts: Vec::new(),
            consed: HashMap::new(),
        }
    }

    /// Number of distinct terms visible (base + local).
    pub fn len(&self) -> usize {
        self.base_len + self.terms.len()
    }

    /// Returns `true` if no terms are visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the structure of `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` was produced by a different arena.
    pub fn kind(&self, t: TermId) -> &TermKind {
        if t.index() < self.base_len {
            self.base
                .as_ref()
                .expect("ids below base_len require a base")
                .kind(t)
        } else {
            &self.terms[t.index() - self.base_len]
        }
    }

    /// Returns the sort of `t`.
    pub fn sort(&self, t: TermId) -> Sort {
        if t.index() < self.base_len {
            self.base
                .as_ref()
                .expect("ids below base_len require a base")
                .sort(t)
        } else {
            self.sorts[t.index() - self.base_len]
        }
    }

    /// Looks up a structurally equal term anywhere in the base chain or
    /// the local layer.
    fn lookup_consed(&self, kind: &TermKind) -> Option<TermId> {
        if let Some(base) = &self.base {
            if let Some(id) = base.lookup_consed(kind) {
                return Some(id);
            }
        }
        self.consed.get(kind).copied()
    }

    /// Iterates over every term in insertion (id) order as `(kind, sort)`
    /// pairs, base layers first. This is the serialization view of the
    /// arena: replaying the sequence through [`TermArena::push_raw`]
    /// reconstructs a bit-identical arena, because ids are dense indices
    /// assigned in insertion order.
    pub fn kinds(&self) -> impl Iterator<Item = (&TermKind, Sort)> {
        let mut chain: Vec<&TermArena> = Vec::new();
        let mut cur = Some(self);
        while let Some(a) = cur {
            chain.push(a);
            cur = a.base.as_deref();
        }
        chain.reverse();
        chain
            .into_iter()
            .flat_map(|a| a.terms.iter().zip(a.sorts.iter()).map(|(k, &s)| (k, s)))
    }

    /// Appends a term with an explicit structure, for rebuilding an arena
    /// from a persisted [`TermArena::kinds`] stream. Unlike the smart
    /// constructors this performs *no* simplification: the term is stored
    /// exactly as given, so a replayed stream reproduces the original ids.
    ///
    /// Returns an error (leaving the arena untouched) if the term refers
    /// to children at indices not yet populated, or if a structurally
    /// equal term already exists — either would break the hash-consing
    /// invariant that every id has a unique structure.
    pub fn push_raw(&mut self, kind: TermKind, sort: Sort) -> Result<TermId, RawTermError> {
        let len = self.len();
        let ok = |t: TermId| t.index() < len;
        let children_ok = match &kind {
            TermKind::BoolConst(_) | TermKind::IntConst(_) | TermKind::Var(..) => true,
            TermKind::Not(x) | TermKind::Neg(x) => ok(*x),
            TermKind::And(xs) | TermKind::Or(xs) | TermKind::Add(xs) => xs.iter().all(|&x| ok(x)),
            TermKind::Ite(c, a, b) => ok(*c) && ok(*a) && ok(*b),
            TermKind::Eq(a, b)
            | TermKind::Lt(a, b)
            | TermKind::Le(a, b)
            | TermKind::Sub(a, b)
            | TermKind::Mul(a, b) => ok(*a) && ok(*b),
        };
        if !children_ok {
            return Err(RawTermError::ForwardReference);
        }
        if self.lookup_consed(&kind).is_some() {
            return Err(RawTermError::Duplicate);
        }
        let id = TermId(u32::try_from(len).expect("term arena overflow"));
        self.terms.push(kind.clone());
        self.sorts.push(sort);
        self.consed.insert(kind, id);
        Ok(id)
    }

    fn intern(&mut self, kind: TermKind, sort: Sort) -> TermId {
        if let Some(id) = self.lookup_consed(&kind) {
            return id;
        }
        let id = TermId(u32::try_from(self.len()).expect("term arena overflow"));
        self.terms.push(kind.clone());
        self.sorts.push(sort);
        self.consed.insert(kind, id);
        id
    }

    /// The constant `true`.
    pub fn tru(&mut self) -> TermId {
        self.intern(TermKind::BoolConst(true), Sort::Bool)
    }

    /// The constant `false`.
    pub fn fls(&mut self) -> TermId {
        self.intern(TermKind::BoolConst(false), Sort::Bool)
    }

    /// Boolean constant.
    pub fn bool_const(&mut self, b: bool) -> TermId {
        self.intern(TermKind::BoolConst(b), Sort::Bool)
    }

    /// Integer constant.
    pub fn int(&mut self, v: i64) -> TermId {
        self.intern(TermKind::IntConst(v), Sort::Int)
    }

    /// Free variable of the given sort. Two calls with the same name and
    /// sort return the same term.
    pub fn var(&mut self, name: impl Into<String>, sort: Sort) -> TermId {
        self.intern(TermKind::Var(name.into(), sort), sort)
    }

    /// Negation, with simplification: `¬true = false`, `¬¬x = x`.
    pub fn not(&mut self, t: TermId) -> TermId {
        debug_assert_eq!(self.sort(t), Sort::Bool);
        match self.kind(t) {
            TermKind::BoolConst(b) => {
                let b = !b;
                self.bool_const(b)
            }
            TermKind::Not(inner) => *inner,
            _ => self.intern(TermKind::Not(t), Sort::Bool),
        }
    }

    /// N-ary conjunction with flattening, deduplication, unit laws and
    /// complement detection (`x ∧ ¬x = false`).
    pub fn and(&mut self, ts: impl IntoIterator<Item = TermId>) -> TermId {
        let mut flat: Vec<TermId> = Vec::new();
        for t in ts {
            match self.kind(t) {
                TermKind::BoolConst(true) => {}
                TermKind::BoolConst(false) => return self.fls(),
                TermKind::And(children) => flat.extend(children.iter().copied()),
                _ => flat.push(t),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        // x ∧ ¬x = false
        for &t in &flat {
            if let TermKind::Not(inner) = self.kind(t) {
                if flat.binary_search(inner).is_ok() {
                    return self.fls();
                }
            }
        }
        match flat.len() {
            0 => self.tru(),
            1 => flat[0],
            _ => self.intern(TermKind::And(flat), Sort::Bool),
        }
    }

    /// Binary conjunction convenience wrapper over [`TermArena::and`].
    pub fn and2(&mut self, a: TermId, b: TermId) -> TermId {
        self.and([a, b])
    }

    /// N-ary disjunction with flattening, deduplication, unit laws and
    /// complement detection (`x ∨ ¬x = true`).
    pub fn or(&mut self, ts: impl IntoIterator<Item = TermId>) -> TermId {
        let mut flat: Vec<TermId> = Vec::new();
        for t in ts {
            match self.kind(t) {
                TermKind::BoolConst(false) => {}
                TermKind::BoolConst(true) => return self.tru(),
                TermKind::Or(children) => flat.extend(children.iter().copied()),
                _ => flat.push(t),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        for &t in &flat {
            if let TermKind::Not(inner) = self.kind(t) {
                if flat.binary_search(inner).is_ok() {
                    return self.tru();
                }
            }
        }
        match flat.len() {
            0 => self.fls(),
            1 => flat[0],
            _ => self.intern(TermKind::Or(flat), Sort::Bool),
        }
    }

    /// Binary disjunction convenience wrapper over [`TermArena::or`].
    pub fn or2(&mut self, a: TermId, b: TermId) -> TermId {
        self.or([a, b])
    }

    /// Implication `a ⇒ b`, encoded as `¬a ∨ b`.
    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        let na = self.not(a);
        self.or2(na, b)
    }

    /// If-then-else with constant-condition and equal-branch simplification.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not boolean or the branches have different sorts.
    pub fn ite(&mut self, c: TermId, t: TermId, e: TermId) -> TermId {
        assert_eq!(self.sort(c), Sort::Bool, "ite condition must be boolean");
        assert_eq!(self.sort(t), self.sort(e), "ite branches must share a sort");
        match self.kind(c) {
            TermKind::BoolConst(true) => return t,
            TermKind::BoolConst(false) => return e,
            _ => {}
        }
        if t == e {
            return t;
        }
        let sort = self.sort(t);
        self.intern(TermKind::Ite(c, t, e), sort)
    }

    /// Equality with reflexivity and constant folding; arguments are
    /// canonically ordered so `eq(a, b) == eq(b, a)`.
    ///
    /// Boolean equality is expanded structurally into an *iff*
    /// (`(a ∧ b) ∨ (¬a ∧ ¬b)`) so the SAT core reasons through it; only
    /// integer equality becomes a theory atom.
    ///
    /// # Panics
    ///
    /// Panics if the arguments have different sorts.
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        assert_eq!(self.sort(a), self.sort(b), "eq arguments must share a sort");
        if a == b {
            return self.tru();
        }
        if let (TermKind::IntConst(x), TermKind::IntConst(y)) = (self.kind(a), self.kind(b)) {
            let r = x == y;
            return self.bool_const(r);
        }
        if self.sort(a) == Sort::Bool {
            let na = self.not(a);
            let nb = self.not(b);
            let both = self.and2(a, b);
            let neither = self.and2(na, nb);
            return self.or2(both, neither);
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern(TermKind::Eq(a, b), Sort::Bool)
    }

    /// Disequality `a ≠ b`, encoded as `¬(a = b)`.
    pub fn ne(&mut self, a: TermId, b: TermId) -> TermId {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// Strict integer comparison `a < b` with constant folding.
    pub fn lt(&mut self, a: TermId, b: TermId) -> TermId {
        debug_assert_eq!(self.sort(a), Sort::Int);
        debug_assert_eq!(self.sort(b), Sort::Int);
        if a == b {
            return self.fls();
        }
        if let (TermKind::IntConst(x), TermKind::IntConst(y)) = (self.kind(a), self.kind(b)) {
            let r = x < y;
            return self.bool_const(r);
        }
        self.intern(TermKind::Lt(a, b), Sort::Bool)
    }

    /// Non-strict integer comparison `a ≤ b` with constant folding.
    pub fn le(&mut self, a: TermId, b: TermId) -> TermId {
        debug_assert_eq!(self.sort(a), Sort::Int);
        debug_assert_eq!(self.sort(b), Sort::Int);
        if a == b {
            return self.tru();
        }
        if let (TermKind::IntConst(x), TermKind::IntConst(y)) = (self.kind(a), self.kind(b)) {
            let r = x <= y;
            return self.bool_const(r);
        }
        self.intern(TermKind::Le(a, b), Sort::Bool)
    }

    /// Strict integer comparison `a > b`, encoded as `b < a`.
    pub fn gt(&mut self, a: TermId, b: TermId) -> TermId {
        self.lt(b, a)
    }

    /// Non-strict integer comparison `a ≥ b`, encoded as `b ≤ a`.
    pub fn ge(&mut self, a: TermId, b: TermId) -> TermId {
        self.le(b, a)
    }

    /// N-ary integer addition with flattening and constant folding.
    ///
    /// Constants are accumulated exactly (in `i128`): the term algebra
    /// models unbounded integers, matching the linear theory, so a sum
    /// like `i64::MAX + 1` must *not* wrap to `i64::MIN`. When the exact
    /// constant does not fit in one `i64` literal it is kept as several
    /// in-range literals whose exact sum is the accumulated value.
    pub fn add(&mut self, ts: impl IntoIterator<Item = TermId>) -> TermId {
        let mut flat: Vec<TermId> = Vec::new();
        let mut konst: i128 = 0;
        for t in ts {
            match self.kind(t) {
                TermKind::IntConst(v) => konst += i128::from(*v),
                TermKind::Add(children) => {
                    for &c in children {
                        if let TermKind::IntConst(v) = self.kind(c) {
                            konst += i128::from(*v);
                        } else {
                            flat.push(c);
                        }
                    }
                }
                _ => flat.push(t),
            }
        }
        let mut consts: Vec<i64> = Vec::new();
        while konst > i128::from(i64::MAX) {
            consts.push(i64::MAX);
            konst -= i128::from(i64::MAX);
        }
        while konst < i128::from(i64::MIN) {
            consts.push(i64::MIN);
            konst -= i128::from(i64::MIN);
        }
        let rem = konst as i64;
        if rem != 0 || (flat.is_empty() && consts.is_empty()) {
            consts.push(rem);
        }
        for c in consts {
            let k = self.int(c);
            flat.push(k);
        }
        flat.sort_unstable();
        match flat.len() {
            1 => flat[0],
            _ => self.intern(TermKind::Add(flat), Sort::Int),
        }
    }

    /// Binary integer addition.
    pub fn add2(&mut self, a: TermId, b: TermId) -> TermId {
        self.add([a, b])
    }

    /// Integer subtraction with constant folding and `a - a = 0`.
    ///
    /// A constant difference that would leave the `i64` literal range is
    /// left symbolic (the linear theory evaluates it exactly in `i128`)
    /// rather than folded with wraparound.
    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            return self.int(0);
        }
        if let (TermKind::IntConst(x), TermKind::IntConst(y)) = (self.kind(a), self.kind(b)) {
            if let Some(v) = x.checked_sub(*y) {
                return self.int(v);
            }
            return self.intern(TermKind::Sub(a, b), Sort::Int);
        }
        if let TermKind::IntConst(0) = self.kind(b) {
            return a;
        }
        self.intern(TermKind::Sub(a, b), Sort::Int)
    }

    /// Integer multiplication with constant folding and unit/zero laws.
    ///
    /// An out-of-range constant product stays symbolic instead of
    /// wrapping, keeping folds consistent with the theory's exact
    /// arithmetic.
    pub fn mul(&mut self, a: TermId, b: TermId) -> TermId {
        if let (TermKind::IntConst(x), TermKind::IntConst(y)) = (self.kind(a), self.kind(b)) {
            if let Some(v) = x.checked_mul(*y) {
                return self.int(v);
            }
            let (a, b) = if a <= b { (a, b) } else { (b, a) };
            return self.intern(TermKind::Mul(a, b), Sort::Int);
        }
        for (k, other) in [(a, b), (b, a)] {
            match self.kind(k) {
                TermKind::IntConst(0) => return self.int(0),
                TermKind::IntConst(1) => return other,
                _ => {}
            }
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern(TermKind::Mul(a, b), Sort::Int)
    }

    /// Integer negation with folding. `-i64::MIN` has no `i64`
    /// representation and stays symbolic.
    pub fn neg(&mut self, a: TermId) -> TermId {
        match self.kind(a) {
            TermKind::IntConst(v) => match v.checked_neg() {
                Some(v) => self.int(v),
                None => self.intern(TermKind::Neg(a), Sort::Int),
            },
            TermKind::Neg(inner) => *inner,
            _ => self.intern(TermKind::Neg(a), Sort::Int),
        }
    }

    /// Returns `true` if `t` is the constant `true`.
    pub fn is_true(&self, t: TermId) -> bool {
        matches!(self.kind(t), TermKind::BoolConst(true))
    }

    /// Returns `true` if `t` is the constant `false`.
    pub fn is_false(&self, t: TermId) -> bool {
        matches!(self.kind(t), TermKind::BoolConst(false))
    }

    /// Returns `true` if `t` is an *atomic constraint* in the paper's sense
    /// (§3.1.1): a boolean term that is not built from `∧`, `∨`, `¬`.
    pub fn is_atom(&self, t: TermId) -> bool {
        self.sort(t) == Sort::Bool
            && !matches!(
                self.kind(t),
                TermKind::And(_) | TermKind::Or(_) | TermKind::Not(_) | TermKind::BoolConst(_)
            )
    }

    /// Returns a checkpoint mark for [`TermArena::truncate_to`].
    ///
    /// Terms created after `mark()` can be dropped wholesale, restoring
    /// the arena to exactly its current state. This is what lets the
    /// detection stage give every source site a private scratch region in
    /// an otherwise shared arena.
    pub fn mark(&self) -> TermMark {
        TermMark(self.len())
    }

    /// Drops every term created after `mark`, including its hash-consing
    /// entry. Cost is linear in the number of *dropped* terms, not the
    /// arena size.
    ///
    /// # Panics
    ///
    /// Panics if `mark` came from a different (or longer) arena, or if it
    /// would truncate into an overlay's immutable base.
    pub fn truncate_to(&mut self, mark: TermMark) {
        assert!(mark.0 <= self.len(), "mark beyond arena length");
        assert!(
            mark.0 >= self.base_len,
            "mark would truncate into the shared base arena"
        );
        let local = mark.0 - self.base_len;
        for kind in self.terms.drain(local..) {
            self.consed.remove(&kind);
        }
        self.sorts.truncate(local);
    }

    /// Pretty-prints a term as an S-expression.
    pub fn display(&self, t: TermId) -> String {
        let mut s = String::new();
        self.write_sexpr(t, &mut s);
        s
    }

    fn write_sexpr(&self, t: TermId, out: &mut String) {
        use std::fmt::Write;
        match self.kind(t) {
            TermKind::BoolConst(b) => {
                let _ = write!(out, "{b}");
            }
            TermKind::IntConst(v) => {
                let _ = write!(out, "{v}");
            }
            TermKind::Var(name, _) => out.push_str(name),
            TermKind::Not(x) => {
                out.push_str("(not ");
                self.write_sexpr(*x, out);
                out.push(')');
            }
            TermKind::And(xs) => self.write_nary("and", xs, out),
            TermKind::Or(xs) => self.write_nary("or", xs, out),
            TermKind::Add(xs) => self.write_nary("+", xs, out),
            TermKind::Ite(c, a, b) => {
                out.push_str("(ite ");
                self.write_sexpr(*c, out);
                out.push(' ');
                self.write_sexpr(*a, out);
                out.push(' ');
                self.write_sexpr(*b, out);
                out.push(')');
            }
            TermKind::Eq(a, b) => self.write_bin("=", *a, *b, out),
            TermKind::Lt(a, b) => self.write_bin("<", *a, *b, out),
            TermKind::Le(a, b) => self.write_bin("<=", *a, *b, out),
            TermKind::Sub(a, b) => self.write_bin("-", *a, *b, out),
            TermKind::Mul(a, b) => self.write_bin("*", *a, *b, out),
            TermKind::Neg(a) => {
                out.push_str("(- ");
                self.write_sexpr(*a, out);
                out.push(')');
            }
        }
    }

    fn write_nary(&self, op: &str, xs: &[TermId], out: &mut String) {
        out.push('(');
        out.push_str(op);
        for &x in xs {
            out.push(' ');
            self.write_sexpr(x, out);
        }
        out.push(')');
    }

    fn write_bin(&self, op: &str, a: TermId, b: TermId, out: &mut String) {
        out.push('(');
        out.push_str(op);
        out.push(' ');
        self.write_sexpr(a, out);
        out.push(' ');
        self.write_sexpr(b, out);
        out.push(')');
    }
}

/// Opaque checkpoint of a [`TermArena`] (see [`TermArena::mark`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TermMark(usize);

/// Rejection reasons for [`TermArena::push_raw`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawTermError {
    /// The term references a child index that is not yet populated.
    ForwardReference,
    /// A structurally equal term already exists in the arena.
    Duplicate,
}

impl fmt::Display for RawTermError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RawTermError::ForwardReference => write!(f, "term references an unpopulated child"),
            RawTermError::Duplicate => write!(f, "structurally duplicate term"),
        }
    }
}

/// Imports terms from one arena into another, structurally.
///
/// Translation rebuilds each term through the target arena's smart
/// constructors rather than copying raw children: n-ary operators sort
/// their children by [`TermId`], so a term's stored shape is relative to
/// *its* arena's allocation order. Re-running the constructors
/// re-canonicalises against the target's order, which is what makes the
/// parallel pipeline deterministic — per-worker arenas can lay terms out
/// in any order, and the merge still produces one canonical shared arena.
///
/// A memo table makes repeated translation of a shared sub-DAG `O(1)`.
#[derive(Debug, Default)]
pub struct TermTranslator {
    memo: HashMap<TermId, TermId>,
}

impl TermTranslator {
    /// Creates a translator with an empty memo table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Translates `t` from `src` into `dst`, returning the target id.
    pub fn translate(&mut self, src: &TermArena, dst: &mut TermArena, t: TermId) -> TermId {
        if let Some(&done) = self.memo.get(&t) {
            return done;
        }
        let out = match src.kind(t).clone() {
            TermKind::BoolConst(b) => dst.bool_const(b),
            TermKind::IntConst(v) => dst.int(v),
            TermKind::Var(name, sort) => dst.var(name, sort),
            TermKind::Not(x) => {
                let x = self.translate(src, dst, x);
                dst.not(x)
            }
            TermKind::And(xs) => {
                let xs: Vec<TermId> = xs
                    .into_iter()
                    .map(|x| self.translate(src, dst, x))
                    .collect();
                dst.and(xs)
            }
            TermKind::Or(xs) => {
                let xs: Vec<TermId> = xs
                    .into_iter()
                    .map(|x| self.translate(src, dst, x))
                    .collect();
                dst.or(xs)
            }
            TermKind::Ite(c, a, b) => {
                let c = self.translate(src, dst, c);
                let a = self.translate(src, dst, a);
                let b = self.translate(src, dst, b);
                dst.ite(c, a, b)
            }
            TermKind::Eq(a, b) => {
                let a = self.translate(src, dst, a);
                let b = self.translate(src, dst, b);
                dst.eq(a, b)
            }
            TermKind::Lt(a, b) => {
                let a = self.translate(src, dst, a);
                let b = self.translate(src, dst, b);
                dst.lt(a, b)
            }
            TermKind::Le(a, b) => {
                let a = self.translate(src, dst, a);
                let b = self.translate(src, dst, b);
                dst.le(a, b)
            }
            TermKind::Add(xs) => {
                let xs: Vec<TermId> = xs
                    .into_iter()
                    .map(|x| self.translate(src, dst, x))
                    .collect();
                dst.add(xs)
            }
            TermKind::Sub(a, b) => {
                let a = self.translate(src, dst, a);
                let b = self.translate(src, dst, b);
                dst.sub(a, b)
            }
            TermKind::Mul(a, b) => {
                let a = self.translate(src, dst, a);
                let b = self.translate(src, dst, b);
                dst.mul(a, b)
            }
            TermKind::Neg(a) => {
                let a = self.translate(src, dst, a);
                dst.neg(a)
            }
        };
        self.memo.insert(t, out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedups() {
        let mut a = TermArena::new();
        let x1 = a.var("x", Sort::Int);
        let x2 = a.var("x", Sort::Int);
        assert_eq!(x1, x2);
        let y = a.var("y", Sort::Int);
        let e1 = a.eq(x1, y);
        let e2 = a.eq(y, x1);
        assert_eq!(e1, e2, "eq is canonically ordered");
    }

    #[test]
    fn and_simplifies_units_and_complements() {
        let mut a = TermArena::new();
        let p = a.var("p", Sort::Bool);
        let t = a.tru();
        let f = a.fls();
        assert_eq!(a.and([p, t]), p);
        assert_eq!(a.and([p, f]), f);
        let np = a.not(p);
        let contradiction = a.and([p, np]);
        assert!(a.is_false(contradiction));
    }

    #[test]
    fn or_simplifies_units_and_complements() {
        let mut a = TermArena::new();
        let p = a.var("p", Sort::Bool);
        let f = a.fls();
        assert_eq!(a.or([p, f]), p);
        let np = a.not(p);
        let taut = a.or([p, np]);
        assert!(a.is_true(taut));
    }

    #[test]
    fn and_flattens_nested() {
        let mut a = TermArena::new();
        let p = a.var("p", Sort::Bool);
        let q = a.var("q", Sort::Bool);
        let r = a.var("r", Sort::Bool);
        let pq = a.and2(p, q);
        let pqr = a.and2(pq, r);
        match a.kind(pqr) {
            TermKind::And(children) => assert_eq!(children.len(), 3),
            other => panic!("expected flat And, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_folds_constants() {
        let mut a = TermArena::new();
        let two = a.int(2);
        let three = a.int(3);
        assert_eq!(a.add2(two, three), a.int(5));
        assert_eq!(a.mul(two, three), a.int(6));
        assert_eq!(a.sub(three, two), a.int(1));
        let x = a.var("x", Sort::Int);
        assert_eq!(a.sub(x, x), a.int(0));
        let zero = a.int(0);
        assert_eq!(a.mul(zero, x), a.int(0));
        let one = a.int(1);
        assert_eq!(a.mul(one, x), x);
    }

    #[test]
    fn boundary_folds_never_wrap() {
        // The term algebra models unbounded integers (as the linear
        // theory evaluates them); folding must not wrap at the i64
        // literal boundary.
        let mut a = TermArena::new();
        let max = a.int(i64::MAX);
        let min = a.int(i64::MIN);
        let one = a.int(1);
        let two = a.int(2);
        // MAX + 1 stays exact (an Add of in-range literals), not MIN.
        let over = a.add2(max, one);
        assert_ne!(over, min);
        assert!(matches!(a.kind(over), TermKind::Add(_)));
        // MIN - 1 stays symbolic, not MAX.
        let under = a.sub(min, one);
        assert_ne!(under, max);
        assert!(matches!(a.kind(under), TermKind::Sub(..)));
        // MAX * 2 stays symbolic, not -2.
        let dbl = a.mul(max, two);
        assert!(matches!(a.kind(dbl), TermKind::Mul(..)));
        // -MIN stays symbolic, not MIN.
        let negated = a.neg(min);
        assert_ne!(negated, min);
        assert!(matches!(a.kind(negated), TermKind::Neg(_)));
        // In-range folds still happen.
        let m1 = a.int(-1);
        let max_again = a.add2(over, m1);
        assert_eq!(max_again, max);
    }

    #[test]
    fn comparisons_fold() {
        let mut a = TermArena::new();
        let two = a.int(2);
        let three = a.int(3);
        let lt = a.lt(two, three);
        assert!(a.is_true(lt));
        let x = a.var("x", Sort::Int);
        let le_refl = a.le(x, x);
        assert!(a.is_true(le_refl));
        let lt_irrefl = a.lt(x, x);
        assert!(a.is_false(lt_irrefl));
    }

    #[test]
    fn ite_simplifies() {
        let mut a = TermArena::new();
        let c = a.var("c", Sort::Bool);
        let x = a.var("x", Sort::Int);
        let y = a.var("y", Sort::Int);
        let t = a.tru();
        assert_eq!(a.ite(t, x, y), x);
        assert_eq!(a.ite(c, x, x), x);
    }

    #[test]
    fn atoms_are_recognised() {
        let mut a = TermArena::new();
        let p = a.var("p", Sort::Bool);
        let x = a.var("x", Sort::Int);
        let zero = a.int(0);
        let e = a.eq(x, zero);
        assert!(a.is_atom(p));
        assert!(a.is_atom(e));
        let np = a.not(p);
        assert!(!a.is_atom(np));
        let conj = a.and2(p, e);
        assert!(!a.is_atom(conj));
    }

    #[test]
    fn display_is_readable() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let zero = a.int(0);
        let atom = a.ne(x, zero);
        assert_eq!(a.display(atom), "(not (= x 0))");
    }

    #[test]
    fn truncate_restores_exact_state() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let zero = a.int(0);
        let base = a.eq(x, zero);
        let mark = a.mark();
        let len = a.len();
        let y = a.var("y", Sort::Int);
        let _scratch = a.lt(y, zero);
        assert!(a.len() > len);
        a.truncate_to(mark);
        assert_eq!(a.len(), len);
        // Pre-mark terms survive and still hash-cons to the same ids.
        assert_eq!(a.eq(x, zero), base);
        // The dropped var is genuinely gone: re-creating it allocates at
        // the old scratch position, proving the consed entry was removed.
        let y2 = a.var("y", Sort::Int);
        assert_eq!(y2.index(), len);
    }

    #[test]
    fn truncate_is_idempotent_at_mark() {
        let mut a = TermArena::new();
        let _ = a.var("x", Sort::Int);
        let mark = a.mark();
        a.truncate_to(mark);
        a.truncate_to(mark);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn overlay_behaves_like_a_clone() {
        use std::sync::Arc;
        let mut base = TermArena::new();
        let x = base.var("x", Sort::Int);
        let zero = base.int(0);
        let atom = base.eq(x, zero);
        let base_len = base.len();
        let shared = Arc::new(base);

        let mut cloned = (*shared).clone();
        let mut over = TermArena::overlay(Arc::clone(&shared));
        assert_eq!(over.len(), base_len);
        // Base terms hash-cons to their base ids.
        assert_eq!(over.eq(x, zero), atom);
        assert_eq!(over.sort(atom), Sort::Bool);
        // New terms allocate identically to a clone.
        let y_c = cloned.var("y", Sort::Int);
        let y_o = over.var("y", Sort::Int);
        assert_eq!(y_c, y_o);
        let lt_c = cloned.lt(y_c, zero);
        let lt_o = over.lt(y_o, zero);
        assert_eq!(lt_c, lt_o);
        assert_eq!(over.len(), cloned.len());
        assert_eq!(over.display(lt_o), cloned.display(lt_c));
        // kinds() streams base + local in id order.
        let ks: Vec<Sort> = over.kinds().map(|(_, s)| s).collect();
        let kc: Vec<Sort> = cloned.kinds().map(|(_, s)| s).collect();
        assert_eq!(ks, kc);
    }

    #[test]
    fn overlay_truncate_drops_only_local_terms() {
        use std::sync::Arc;
        let mut base = TermArena::new();
        let x = base.var("x", Sort::Int);
        let zero = base.int(0);
        let _ = base.eq(x, zero);
        let shared = Arc::new(base);
        let mut over = TermArena::overlay(Arc::clone(&shared));
        let mark = over.mark();
        let len = over.len();
        let y = over.var("y", Sort::Int);
        let _ = over.lt(y, zero);
        assert!(over.len() > len);
        over.truncate_to(mark);
        assert_eq!(over.len(), len);
        // Dropped local consed entries are gone; base entries survive.
        let y2 = over.var("y", Sort::Int);
        assert_eq!(y2.index(), len);
        assert_eq!(over.var("x", Sort::Int), x);
    }

    #[test]
    #[should_panic(expected = "shared base arena")]
    fn overlay_truncate_into_base_panics() {
        use std::sync::Arc;
        let mut base = TermArena::new();
        let mark = base.mark();
        let _ = base.var("x", Sort::Int);
        let mut over = TermArena::overlay(Arc::new(base));
        over.truncate_to(mark);
    }

    #[test]
    fn translation_rebuilds_canonically() {
        // Build the same conjunction in two arenas with opposite insertion
        // orders; translation into a common target must unify them.
        let mut a1 = TermArena::new();
        let p1 = a1.var("p", Sort::Bool);
        let q1 = a1.var("q", Sort::Bool);
        let and1 = a1.and2(p1, q1);

        let mut a2 = TermArena::new();
        let q2 = a2.var("q", Sort::Bool);
        let p2 = a2.var("p", Sort::Bool);
        let and2 = a2.and2(p2, q2);

        let mut target = TermArena::new();
        let t1 = TermTranslator::new().translate(&a1, &mut target, and1);
        let t2 = TermTranslator::new().translate(&a2, &mut target, and2);
        assert_eq!(t1, t2, "cross-arena structural identity");
    }

    #[test]
    fn translation_memo_reuses_shared_subterms() {
        let mut src = TermArena::new();
        let x = src.var("x", Sort::Int);
        let zero = src.int(0);
        let e = src.eq(x, zero);
        let ne = src.not(e);
        let both = src.and2(e, ne); // folds to false in src already
        let mut dst = TermArena::new();
        let mut tr = TermTranslator::new();
        let t = tr.translate(&src, &mut dst, both);
        assert!(dst.is_false(t));
        let te = tr.translate(&src, &mut dst, e);
        assert_eq!(dst.display(te), "(= x 0)");
    }
}
