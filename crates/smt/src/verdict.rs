//! The verdict table: remembered outcomes of canonical SMT queries.
//!
//! A verdict records what one solver call concluded about one canonical
//! formula fingerprint (see [`crate::canon`]): unsatisfiable, or
//! satisfiable together with the boolean witness expressed over
//! *canonical* variable indices so it can be re-bound to any
//! alpha-equivalent instance of the formula. Conservative answers (the
//! DPLL(T) round budget ran out) are never recorded.
//!
//! The table is consulted before any solver call in the detection stage
//! and persisted through `pinpoint-cache` keyed by
//! `(fingerprint, verdict_config_fp)`, so both warm re-runs and other
//! queries in the same run skip already-solved conditions.

use crate::canon::CANON_VERSION;
use std::collections::HashMap;

/// Outcome of one fully-solved canonical query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The formula is unsatisfiable.
    Unsat,
    /// The formula is satisfiable; the witness assigns the formula's
    /// free *boolean* variables, addressed by canonical variable index
    /// (see [`crate::canon::CanonInfo::vars`]), sorted by index.
    Sat(Vec<(u32, bool)>),
}

/// An in-memory verdict table keyed by canonical formula fingerprint.
///
/// Inserts are first-wins: once a fingerprint has a verdict it is never
/// replaced. Any two correct solvers agree on SAT/UNSAT for the same
/// canonical formula, and keeping the first recorded witness makes merge
/// results independent of insertion order beyond the (deterministic)
/// order the merger chooses.
#[derive(Debug, Default, Clone)]
pub struct VerdictTable {
    map: HashMap<u128, Verdict>,
}

impl VerdictTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of verdicts stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up the verdict for a canonical fingerprint.
    pub fn get(&self, fingerprint: u128) -> Option<&Verdict> {
        self.map.get(&fingerprint)
    }

    /// Records a verdict unless the fingerprint already has one.
    /// Returns `true` if the verdict was newly inserted.
    pub fn insert(&mut self, fingerprint: u128, verdict: Verdict) -> bool {
        use std::collections::hash_map::Entry;
        match self.map.entry(fingerprint) {
            Entry::Occupied(_) => false,
            Entry::Vacant(e) => {
                e.insert(verdict);
                true
            }
        }
    }

    /// Iterates over all `(fingerprint, verdict)` pairs in unspecified
    /// order (persistence sorts by fingerprint for determinism).
    pub fn iter(&self) -> impl Iterator<Item = (&u128, &Verdict)> {
        self.map.iter()
    }
}

/// Fingerprint of the solver configuration a verdict is valid under.
///
/// Persisted verdicts are keyed by this value in addition to the formula
/// fingerprint; a mismatch (different canonicalisation scheme or solver
/// round budget) makes stored verdicts invisible — a warm run degrades
/// to cold, never to a wrong answer.
pub fn verdict_config_fp(max_rounds: u32) -> u64 {
    // FNV-1a 64.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in CANON_VERSION
        .to_le_bytes()
        .into_iter()
        .chain(max_rounds.to_le_bytes())
    {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_is_first_wins() {
        let mut t = VerdictTable::new();
        assert!(t.insert(42, Verdict::Unsat));
        assert!(!t.insert(42, Verdict::Sat(vec![(0, true)])));
        assert_eq!(t.get(42), Some(&Verdict::Unsat));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn config_fp_varies_with_round_budget() {
        assert_ne!(verdict_config_fp(10_000), verdict_config_fp(9_999));
        assert_eq!(verdict_config_fp(10_000), verdict_config_fp(10_000));
    }
}
