//! Canonical formula fingerprinting for cross-query verdict reuse.
//!
//! Pinpoint's §3.1 observation is that path conditions across queries
//! share enormous structure: the same guard conjunctions recur for every
//! sink reached under them, warm runs re-pose exactly the formulas of the
//! cold run, and ≥90% of the UNSAT ones are easy. To pay for a formula
//! once, we need a *name* for it that survives both variable renaming
//! (context cloning appends `|c{id}` suffixes that differ per traversal)
//! and argument reordering (n-ary operators sort children by arena-local
//! [`TermId`], which depends on allocation order).
//!
//! [`canon_info`] computes a 128-bit fingerprint of a boolean term that
//! is invariant under both, in two passes over the hash-consed DAG:
//!
//! 1. **Blinded hashing** — a bottom-up structural hash in which every
//!    variable is reduced to its sort (names blinded) and the children
//!    of commutative operators (`and`/`or`/`+`/`=`/`*`) are combined as
//!    a sorted multiset of child hashes.
//! 2. **Canonical serialization** — a depth-first pre-order walk from
//!    the root in which commutative children are visited in blinded-hash
//!    order, variables are numbered by first occurrence, and shared DAG
//!    nodes are emitted as back-references to their visit number. The
//!    fingerprint is a 128-bit FNV-1a hash of this stream.
//!
//! Equal streams reconstruct isomorphic DAGs with a consistent variable
//! correspondence, so **equal fingerprints imply alpha-equivalence** and
//! therefore equisatisfiability — and a satisfying assignment transfers
//! between the two formulas through the canonical variable indices. The
//! converse is deliberately weaker: blinded-hash ties between *distinct*
//! subterms are broken by arena-local id, so an alpha-equivalent pair can
//! (rarely) fingerprint differently. That direction only costs a cache
//! miss, never a wrong verdict.

use crate::term::{Sort, TermArena, TermId, TermKind};
use std::collections::HashMap;

/// Version of the canonicalisation scheme, mixed into every fingerprint
/// and into the persisted verdict-store key: bumping it invalidates all
/// previously persisted verdicts (stale → cold, never wrong).
pub const CANON_VERSION: u32 = 1;

/// The canonical identity of one boolean formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonInfo {
    /// Order/alpha-invariant 128-bit fingerprint of the formula.
    pub fingerprint: u128,
    /// The formula's free variables by canonical index (first occurrence
    /// in the canonical traversal). A cached model expressed over
    /// canonical indices is rebound to concrete variables through this
    /// table.
    pub vars: Vec<(String, Sort)>,
}

/// 128-bit FNV-1a.
struct Fnv128(u128);

impl Fnv128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

    fn new() -> Self {
        Fnv128(Self::OFFSET)
    }

    fn write_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ u128::from(b)).wrapping_mul(Self::PRIME);
    }

    fn write_u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    fn write_u128(&mut self, v: u128) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    fn finish(&self) -> u128 {
        self.0
    }
}

fn sort_tag(s: Sort) -> u8 {
    match s {
        Sort::Bool => 0,
        Sort::Int => 1,
    }
}

/// Kind tag + whether the children are an unordered multiset.
fn kind_tag(kind: &TermKind) -> (u8, bool) {
    match kind {
        TermKind::BoolConst(_) => (1, false),
        TermKind::IntConst(_) => (2, false),
        TermKind::Var(..) => (3, false),
        TermKind::Not(_) => (4, false),
        TermKind::And(_) => (5, true),
        TermKind::Or(_) => (6, true),
        TermKind::Ite(..) => (7, false),
        TermKind::Eq(..) => (8, true),
        TermKind::Lt(..) => (9, false),
        TermKind::Le(..) => (10, false),
        TermKind::Add(_) => (11, true),
        TermKind::Sub(..) => (12, false),
        TermKind::Mul(..) => (13, true),
        TermKind::Neg(_) => (14, false),
    }
}

fn children_of(kind: &TermKind) -> Vec<TermId> {
    match kind {
        TermKind::BoolConst(_) | TermKind::IntConst(_) | TermKind::Var(..) => Vec::new(),
        TermKind::Not(x) | TermKind::Neg(x) => vec![*x],
        TermKind::And(xs) | TermKind::Or(xs) | TermKind::Add(xs) => xs.clone(),
        TermKind::Ite(c, a, b) => vec![*c, *a, *b],
        TermKind::Eq(a, b)
        | TermKind::Lt(a, b)
        | TermKind::Le(a, b)
        | TermKind::Sub(a, b)
        | TermKind::Mul(a, b) => vec![*a, *b],
    }
}

/// Bottom-up blinded structural hashes over the DAG reachable from
/// `root` (variables reduced to their sort; commutative children hashed
/// as a sorted multiset).
fn blinded_hashes(arena: &TermArena, root: TermId) -> HashMap<TermId, u128> {
    let mut memo: HashMap<TermId, u128> = HashMap::new();
    let mut stack: Vec<(TermId, bool)> = vec![(root, false)];
    while let Some((t, expanded)) = stack.pop() {
        if memo.contains_key(&t) {
            continue;
        }
        let kind = arena.kind(t);
        if !expanded {
            stack.push((t, true));
            for c in children_of(kind) {
                if !memo.contains_key(&c) {
                    stack.push((c, false));
                }
            }
            continue;
        }
        let (tag, commutative) = kind_tag(kind);
        let mut h = Fnv128::new();
        h.write_u8(tag);
        h.write_u8(sort_tag(arena.sort(t)));
        match kind {
            TermKind::BoolConst(b) => h.write_u8(u8::from(*b)),
            TermKind::IntConst(v) => h.write_u64(*v as u64),
            TermKind::Var(..) => {}
            _ => {
                let mut child_hashes: Vec<u128> =
                    children_of(kind).iter().map(|c| memo[c]).collect();
                if commutative {
                    child_hashes.sort_unstable();
                }
                for ch in child_hashes {
                    h.write_u128(ch);
                }
            }
        }
        memo.insert(t, h.finish());
    }
    memo
}

/// Computes the canonical fingerprint and variable table of `root`.
///
/// Cost is linear in the size of the hash-consed DAG under `root` (each
/// node is visited once per pass; shared nodes are emitted as
/// back-references, not re-expanded).
pub fn canon_info(arena: &TermArena, root: TermId) -> CanonInfo {
    let blinded = blinded_hashes(arena, root);
    let mut h = Fnv128::new();
    h.write_u32(CANON_VERSION);
    let mut visit: HashMap<TermId, u32> = HashMap::new();
    let mut vars: Vec<(String, Sort)> = Vec::new();
    let mut var_index: HashMap<TermId, u32> = HashMap::new();
    let mut stack: Vec<TermId> = vec![root];
    while let Some(t) = stack.pop() {
        if let Some(&vi) = visit.get(&t) {
            // Shared DAG node: back-reference by visit number.
            h.write_u8(255);
            h.write_u32(vi);
            continue;
        }
        let vi = u32::try_from(visit.len()).expect("canonical visit overflow");
        visit.insert(t, vi);
        let kind = arena.kind(t);
        let (tag, commutative) = kind_tag(kind);
        h.write_u8(tag);
        h.write_u8(sort_tag(arena.sort(t)));
        match kind {
            TermKind::BoolConst(b) => h.write_u8(u8::from(*b)),
            TermKind::IntConst(v) => h.write_u64(*v as u64),
            TermKind::Var(name, sort) => {
                let idx = *var_index.entry(t).or_insert_with(|| {
                    let idx = u32::try_from(vars.len()).expect("canonical var overflow");
                    vars.push((name.clone(), *sort));
                    idx
                });
                h.write_u32(idx);
            }
            _ => {
                let mut children = children_of(kind);
                if commutative {
                    // Deterministic canonical order: blinded hash first,
                    // arena id as the (arena-local) tie-break.
                    children.sort_unstable_by_key(|c| (blinded[c], *c));
                }
                h.write_u32(u32::try_from(children.len()).expect("arity overflow"));
                // Reverse so the pre-order pop visits them left-to-right.
                for &c in children.iter().rev() {
                    stack.push(c);
                }
            }
        }
    }
    CanonInfo {
        fingerprint: h.finish(),
        vars,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_renaming_preserves_fingerprint() {
        let mut a = TermArena::new();
        let p = a.var("p|c0", Sort::Bool);
        let x = a.var("x|c0", Sort::Int);
        let zero = a.int(0);
        let atom = a.eq(x, zero);
        let f = a.and2(p, atom);
        let fa = canon_info(&a, f);

        let mut b = TermArena::new();
        let q = b.var("p|c7", Sort::Bool);
        let y = b.var("x|c7", Sort::Int);
        let zero_b = b.int(0);
        let atom_b = b.eq(y, zero_b);
        let g = b.and2(q, atom_b);
        let gb = canon_info(&b, g);

        assert_eq!(fa.fingerprint, gb.fingerprint);
        // Canonical variable indices correspond across the renaming.
        let sorts_a: Vec<Sort> = fa.vars.iter().map(|(_, s)| *s).collect();
        let sorts_b: Vec<Sort> = gb.vars.iter().map(|(_, s)| *s).collect();
        assert_eq!(sorts_a, sorts_b);
    }

    #[test]
    fn construction_order_does_not_matter() {
        // Same formula, operands interned in opposite orders, so the
        // arena-sorted And children differ as id sequences.
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let zero = a.int(0);
        let five = a.int(5);
        let lo = a.lt(zero, x);
        let hi = a.lt(x, five);
        let f = a.and2(lo, hi);
        let fa = canon_info(&a, f);

        let mut b = TermArena::new();
        let five_b = b.int(5);
        let x_b = b.var("x", Sort::Int);
        let zero_b = b.int(0);
        let hi_b = b.lt(x_b, five_b);
        let lo_b = b.lt(zero_b, x_b);
        let g = b.and2(hi_b, lo_b);
        let gb = canon_info(&b, g);

        assert_eq!(fa.fingerprint, gb.fingerprint);
    }

    #[test]
    fn distinct_formulas_fingerprint_differently() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let zero = a.int(0);
        let one = a.int(1);
        let f0 = a.eq(x, zero);
        let f1 = a.eq(x, one);
        let lt = a.lt(x, zero);
        let i0 = canon_info(&a, f0);
        let i1 = canon_info(&a, f1);
        let il = canon_info(&a, lt);
        assert_ne!(i0.fingerprint, i1.fingerprint);
        assert_ne!(i0.fingerprint, il.fingerprint);
        // Ordered operators must not be treated as commutative.
        let gt = a.lt(zero, x);
        assert_ne!(canon_info(&a, gt).fingerprint, il.fingerprint);
    }

    #[test]
    fn variables_are_numbered_by_first_occurrence() {
        let mut a = TermArena::new();
        let p = a.var("first", Sort::Bool);
        let q = a.var("second", Sort::Bool);
        let np = a.not(p);
        let f = a.and2(np, q); // canonical order may differ, but indices are 1:1
        let info = canon_info(&a, f);
        assert_eq!(info.vars.len(), 2);
        let names: Vec<&str> = info.vars.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"first") && names.contains(&"second"));
    }

    #[test]
    fn distinct_variable_patterns_distinguish() {
        // and(p, p → q) vs and(p, q → p): same blinded skeleton, but the
        // first-occurrence numbering separates them.
        let mut a = TermArena::new();
        let p = a.var("p", Sort::Bool);
        let q = a.var("q", Sort::Bool);
        let pq = a.implies(p, q);
        let qp = a.implies(q, p);
        let f = a.and2(p, pq);
        let g = a.and2(p, qp);
        assert_ne!(canon_info(&a, f).fingerprint, canon_info(&a, g).fingerprint);
    }

    #[test]
    fn shared_subdags_are_backreferenced_not_reexpanded() {
        // A formula with heavy sharing canonicalises in linear time; the
        // fingerprint must also distinguish sharing patterns only up to
        // semantics-preserving structure, so a clone in a fresh arena
        // matches.
        let mut a = TermArena::new();
        let mut cur = a.var("x", Sort::Bool);
        for i in 0..40 {
            let y = a.var(format!("y{i}"), Sort::Bool);
            let wide = a.or2(cur, y);
            cur = a.and2(wide, cur);
        }
        let i1 = canon_info(&a, cur);
        let b = a.clone();
        let i2 = canon_info(&b, cur);
        assert_eq!(i1.fingerprint, i2.fingerprint);
    }
}
