//! Theory reasoning for the lazy DPLL(T) loop.
//!
//! Two cooperating decision procedures check a conjunction of asserted
//! theory literals for consistency:
//!
//! * **EUF**: congruence closure over the term DAG. Asserted equalities
//!   merge classes; congruent applications (same kind, class-equal
//!   children) are merged transitively; an asserted disequality whose
//!   sides end up in the same class is a conflict.
//! * **Linear integer arithmetic**: atoms are normalised into linear
//!   inequalities `Σ cᵢ·bᵢ ≤ k` over *base* terms (variables and opaque
//!   non-linear subterms) and checked by Fourier–Motzkin elimination over
//!   the rationals, with disequality handling by entailment probing.
//!
//! The combination is deliberately partial (no full Nelson–Oppen equality
//! propagation, rational relaxation of integer constraints): the solver may
//! answer *consistent* for a conjunction that is integer-infeasible in a
//! corner case, which in Pinpoint's setting can only produce a spurious
//! report, never a missed one along an explored path. Both procedures are
//! complete for the conflicts the analysis actually generates (value-flow
//! equalities, branch atoms, null/range comparisons).

use crate::term::{TermArena, TermId, TermKind};
use std::collections::HashMap;

/// An asserted theory literal: an atom and its assigned polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TheoryLit {
    /// The atomic constraint (see [`TermArena::is_atom`]).
    pub atom: TermId,
    /// `true` if asserted positively.
    pub positive: bool,
}

/// Verdict of a theory consistency check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TheoryVerdict {
    /// The conjunction of asserted literals is theory-consistent (up to the
    /// documented incompleteness).
    Consistent,
    /// The conjunction is inconsistent.
    Conflict,
}

// ---------------------------------------------------------------------------
// Congruence closure
// ---------------------------------------------------------------------------

/// Union–find with congruence closure over a slice of relevant terms.
#[derive(Debug)]
struct Congruence {
    parent: HashMap<TermId, TermId>,
}

impl Congruence {
    fn new() -> Self {
        Self {
            parent: HashMap::new(),
        }
    }

    fn find(&mut self, t: TermId) -> TermId {
        let p = *self.parent.get(&t).unwrap_or(&t);
        if p == t {
            return t;
        }
        let root = self.find(p);
        self.parent.insert(t, root);
        root
    }

    fn union(&mut self, a: TermId, b: TermId) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        self.parent.insert(ra, rb);
        true
    }
}

/// Children of a term, for congruence purposes.
fn children(arena: &TermArena, t: TermId) -> Vec<TermId> {
    match arena.kind(t) {
        TermKind::Not(a) | TermKind::Neg(a) => vec![*a],
        TermKind::Eq(a, b)
        | TermKind::Lt(a, b)
        | TermKind::Le(a, b)
        | TermKind::Sub(a, b)
        | TermKind::Mul(a, b) => vec![*a, *b],
        TermKind::Ite(c, a, b) => vec![*c, *a, *b],
        TermKind::And(xs) | TermKind::Or(xs) | TermKind::Add(xs) => xs.clone(),
        TermKind::BoolConst(_) | TermKind::IntConst(_) | TermKind::Var(..) => Vec::new(),
    }
}

/// Structural tag used to detect congruent applications.
fn op_tag(arena: &TermArena, t: TermId) -> Option<u8> {
    match arena.kind(t) {
        TermKind::Not(_) => Some(1),
        TermKind::Neg(_) => Some(2),
        TermKind::Eq(..) => Some(3),
        TermKind::Lt(..) => Some(4),
        TermKind::Le(..) => Some(5),
        TermKind::Sub(..) => Some(6),
        TermKind::Mul(..) => Some(7),
        TermKind::Ite(..) => Some(8),
        TermKind::Add(_) => Some(9),
        TermKind::And(_) => Some(10),
        TermKind::Or(_) => Some(11),
        _ => None,
    }
}

fn collect_subterms(arena: &TermArena, roots: &[TermId], out: &mut Vec<TermId>) {
    let mut seen: HashMap<TermId, ()> = HashMap::new();
    let mut stack: Vec<TermId> = roots.to_vec();
    while let Some(t) = stack.pop() {
        if seen.insert(t, ()).is_some() {
            continue;
        }
        out.push(t);
        stack.extend(children(arena, t));
    }
}

/// Checks EUF consistency of the asserted equalities/disequalities.
fn check_euf(arena: &TermArena, lits: &[TheoryLit]) -> TheoryVerdict {
    let mut eqs: Vec<(TermId, TermId)> = Vec::new();
    let mut neqs: Vec<(TermId, TermId)> = Vec::new();
    let mut roots: Vec<TermId> = Vec::new();
    for l in lits {
        if let TermKind::Eq(a, b) = arena.kind(l.atom) {
            roots.push(*a);
            roots.push(*b);
            if l.positive {
                eqs.push((*a, *b));
            } else {
                neqs.push((*a, *b));
            }
        }
    }
    if eqs.is_empty() {
        // Disequalities alone conflict only via reflexivity, which the
        // arena already folds (eq(a, a) = true); nothing to do.
        return TheoryVerdict::Consistent;
    }
    let mut subterms = Vec::new();
    collect_subterms(arena, &roots, &mut subterms);
    let mut cc = Congruence::new();
    for (a, b) in &eqs {
        cc.union(*a, *b);
    }
    // Distinct integer constants must stay distinct.
    let consts: Vec<TermId> = subterms
        .iter()
        .copied()
        .filter(|t| matches!(arena.kind(*t), TermKind::IntConst(_)))
        .collect();
    // Congruence propagation to fixpoint.
    loop {
        let mut changed = false;
        let mut sig: HashMap<(u8, Vec<TermId>), TermId> = HashMap::new();
        for &t in &subterms {
            if let Some(tag) = op_tag(arena, t) {
                let key: Vec<TermId> = children(arena, t).iter().map(|&c| cc.find(c)).collect();
                match sig.entry((tag, key)) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        if cc.union(t, *e.get()) {
                            changed = true;
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(t);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    for (a, b) in &neqs {
        if cc.find(*a) == cc.find(*b) {
            return TheoryVerdict::Conflict;
        }
    }
    for i in 0..consts.len() {
        for j in (i + 1)..consts.len() {
            if cc.find(consts[i]) == cc.find(consts[j]) {
                return TheoryVerdict::Conflict;
            }
        }
    }
    TheoryVerdict::Consistent
}

// ---------------------------------------------------------------------------
// Linear integer arithmetic (Fourier–Motzkin over rationals)
// ---------------------------------------------------------------------------

/// A linear expression `Σ coeff·base + constant` over opaque base terms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct LinExpr {
    coeffs: Vec<(TermId, i128)>, // sorted by TermId, nonzero coeffs
    constant: i128,
}

impl LinExpr {
    fn constant(v: i128) -> Self {
        LinExpr {
            coeffs: Vec::new(),
            constant: v,
        }
    }

    fn base(t: TermId) -> Self {
        LinExpr {
            coeffs: vec![(t, 1)],
            constant: 0,
        }
    }

    /// Scales by `k` with checked `i128` arithmetic. `None` means the
    /// coefficients left the `i128` range — callers treat that as "give
    /// up, assume feasible" (consistent-biased, like [`FM_LIMIT`]).
    fn scale(&self, k: i128) -> Option<Self> {
        if k == 0 {
            return Some(LinExpr::constant(0));
        }
        let mut coeffs = Vec::with_capacity(self.coeffs.len());
        for &(t, c) in &self.coeffs {
            coeffs.push((t, c.checked_mul(k)?));
        }
        Some(LinExpr {
            coeffs,
            constant: self.constant.checked_mul(k)?,
        })
    }

    /// Adds two expressions with checked `i128` arithmetic.
    fn add(&self, other: &LinExpr) -> Option<Self> {
        let mut out = Vec::with_capacity(self.coeffs.len() + other.coeffs.len());
        let (mut i, mut j) = (0, 0);
        while i < self.coeffs.len() && j < other.coeffs.len() {
            let (ta, ca) = self.coeffs[i];
            let (tb, cb) = other.coeffs[j];
            match ta.cmp(&tb) {
                std::cmp::Ordering::Less => {
                    out.push((ta, ca));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push((tb, cb));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let c = ca.checked_add(cb)?;
                    if c != 0 {
                        out.push((ta, c));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.coeffs[i..]);
        out.extend_from_slice(&other.coeffs[j..]);
        Some(LinExpr {
            coeffs: out,
            constant: self.constant.checked_add(other.constant)?,
        })
    }

    fn sub(&self, other: &LinExpr) -> Option<Self> {
        self.add(&other.scale(-1)?)
    }

    fn is_const(&self) -> bool {
        self.coeffs.is_empty()
    }
}

/// Linearises an integer term; non-linear subterms become opaque bases.
/// A subterm whose exact coefficients overflow `i128` also goes opaque —
/// losing precision (the solver may call an infeasible conjunction
/// feasible), never soundness.
fn linearize(arena: &TermArena, t: TermId) -> LinExpr {
    try_linearize(arena, t).unwrap_or_else(|| LinExpr::base(t))
}

fn try_linearize(arena: &TermArena, t: TermId) -> Option<LinExpr> {
    match arena.kind(t) {
        TermKind::IntConst(v) => Some(LinExpr::constant(i128::from(*v))),
        TermKind::Add(xs) => {
            let mut acc = LinExpr::constant(0);
            for &x in xs {
                acc = acc.add(&linearize(arena, x))?;
            }
            Some(acc)
        }
        TermKind::Sub(a, b) => linearize(arena, *a).sub(&linearize(arena, *b)),
        TermKind::Neg(a) => linearize(arena, *a).scale(-1),
        TermKind::Mul(a, b) => {
            let la = linearize(arena, *a);
            let lb = linearize(arena, *b);
            if la.is_const() {
                lb.scale(la.constant)
            } else if lb.is_const() {
                la.scale(lb.constant)
            } else {
                Some(LinExpr::base(t)) // opaque non-linear product
            }
        }
        _ => Some(LinExpr::base(t)), // Var, Ite, … opaque
    }
}

/// An inequality `expr ≤ 0`.
#[derive(Debug, Clone)]
struct Ineq(LinExpr);

/// Maximum number of constraints Fourier–Motzkin may generate before the
/// check gives up and assumes consistency (documented incompleteness).
const FM_LIMIT: usize = 20_000;

/// Checks `ineqs` (each `e ≤ 0`) for rational feasibility.
fn fm_feasible(mut ineqs: Vec<Ineq>) -> bool {
    loop {
        // Constant constraints: conflict if constant > 0.
        ineqs.retain(|Ineq(e)| {
            if e.is_const() {
                debug_assert!(e.constant <= 0 || e.coeffs.is_empty());
                false
            } else {
                true
            }
        });
        // Re-check constants eagerly below, so first scan:
        // (retain above dropped consistent constants; inconsistent ones
        // must be caught before dropping — do a pre-pass instead.)
        // NOTE: the pre-pass is done by the caller loop below.
        // Pick a variable to eliminate: the one with fewest +/- pairs.
        let mut var: Option<TermId> = None;
        for Ineq(e) in &ineqs {
            if let Some(&(t, _)) = e.coeffs.first() {
                var = Some(t);
                break;
            }
        }
        let Some(v) = var else {
            return true; // no variables left, all constants were ≤ 0
        };
        let mut lower: Vec<LinExpr> = Vec::new(); // e with coeff(v) < 0
        let mut upper: Vec<LinExpr> = Vec::new(); // e with coeff(v) > 0
        let mut rest: Vec<Ineq> = Vec::new();
        for Ineq(e) in ineqs {
            match e.coeffs.iter().find(|&&(t, _)| t == v) {
                Some(&(_, c)) if c > 0 => upper.push(e),
                Some(&(_, c)) if c < 0 => lower.push(e),
                _ => rest.push(Ineq(e)),
            }
        }
        if lower.len() * upper.len() + rest.len() > FM_LIMIT {
            return true; // give up: assume feasible
        }
        for lo in &lower {
            let cl = -coeff_of(lo, v); // > 0
            for up in &upper {
                let cu = coeff_of(up, v); // > 0
                                          // cl*up + cu*lo eliminates v: (cu*lo + cl*up) ≤ 0.
                let Some(combined) = up.scale(cl).and_then(|u| u.add(&lo.scale(cu)?)) else {
                    return true; // coefficient overflow: give up, assume feasible
                };
                debug_assert_eq!(coeff_of(&combined, v), 0);
                if combined.is_const() {
                    if combined.constant > 0 {
                        return false;
                    }
                } else {
                    rest.push(Ineq(combined));
                }
            }
        }
        ineqs = rest;
        // Constant conflict pre-pass for next round.
        if ineqs.iter().any(|Ineq(e)| e.is_const() && e.constant > 0) {
            return false;
        }
        if ineqs.is_empty() {
            return true;
        }
    }
}

fn coeff_of(e: &LinExpr, v: TermId) -> i128 {
    e.coeffs
        .iter()
        .find(|&&(t, _)| t == v)
        .map_or(0, |&(_, c)| c)
}

/// Checks arithmetic consistency of the asserted literals.
fn check_arith(arena: &TermArena, lits: &[TheoryLit]) -> TheoryVerdict {
    let mut ineqs: Vec<Ineq> = Vec::new();
    let mut diseqs: Vec<LinExpr> = Vec::new(); // e ≠ 0
    for l in lits {
        // A literal whose normalisation overflows `i128` is dropped —
        // the conjunction gets weaker, so the verdict can only err
        // toward Consistent (the documented safe direction).
        let _ = (|| -> Option<()> {
            match arena.kind(l.atom) {
                TermKind::Lt(a, b) => {
                    let e = linearize(arena, *a).sub(&linearize(arena, *b))?;
                    if l.positive {
                        // a < b  ⇔  a - b + 1 ≤ 0 (integers)
                        ineqs.push(Ineq(e.add(&LinExpr::constant(1))?));
                    } else {
                        // ¬(a < b) ⇔ b ≤ a ⇔ b - a ≤ 0
                        ineqs.push(Ineq(e.scale(-1)?));
                    }
                }
                TermKind::Le(a, b) => {
                    let e = linearize(arena, *a).sub(&linearize(arena, *b))?;
                    if l.positive {
                        ineqs.push(Ineq(e));
                    } else {
                        // ¬(a ≤ b) ⇔ b < a ⇔ b - a + 1 ≤ 0
                        ineqs.push(Ineq(e.scale(-1)?.add(&LinExpr::constant(1))?));
                    }
                }
                TermKind::Eq(a, b) if arena.sort(*a) == crate::term::Sort::Int => {
                    let e = linearize(arena, *a).sub(&linearize(arena, *b))?;
                    if l.positive {
                        let neg = e.scale(-1)?;
                        ineqs.push(Ineq(e));
                        ineqs.push(Ineq(neg));
                    } else {
                        diseqs.push(e);
                    }
                }
                _ => {}
            }
            Some(())
        })();
    }
    // Constant-only quick conflicts.
    for Ineq(e) in &ineqs {
        if e.is_const() && e.constant > 0 {
            return TheoryVerdict::Conflict;
        }
    }
    for e in &diseqs {
        if e.is_const() && e.constant == 0 {
            return TheoryVerdict::Conflict;
        }
    }
    if !fm_feasible(ineqs.clone()) {
        return TheoryVerdict::Conflict;
    }
    // Disequality handling: e ≠ 0 conflicts iff the inequalities entail
    // e = 0, i.e. both (e ≥ 1) and (e ≤ -1) are infeasible additions.
    for e in &diseqs {
        if e.is_const() {
            continue; // already handled
        }
        // e ≥ 1 ⇔ 1 - e ≤ 0; e ≤ -1 ⇔ e + 1 ≤ 0. Overflow while
        // building either probe means: skip it, assume consistent.
        let (Some(ge_one), Some(le_neg_one)) =
            (LinExpr::constant(1).sub(e), e.add(&LinExpr::constant(1)))
        else {
            continue;
        };
        let mut with_pos = ineqs.clone();
        with_pos.push(Ineq(ge_one));
        let mut with_neg = ineqs.clone();
        with_neg.push(Ineq(le_neg_one));
        if !fm_feasible(with_pos) && !fm_feasible(with_neg) {
            return TheoryVerdict::Conflict;
        }
    }
    TheoryVerdict::Consistent
}

/// Checks the conjunction of `lits` for consistency in EUF + linear
/// integer arithmetic.
///
/// # Examples
///
/// ```
/// use pinpoint_smt::term::{Sort, TermArena};
/// use pinpoint_smt::theory::{check_conjunction, TheoryLit, TheoryVerdict};
///
/// let mut arena = TermArena::new();
/// let x = arena.var("x", Sort::Int);
/// let y = arena.var("y", Sort::Int);
/// let lt = arena.lt(x, y);
/// let gt = arena.lt(y, x);
/// let lits = [
///     TheoryLit { atom: lt, positive: true },
///     TheoryLit { atom: gt, positive: true },
/// ];
/// assert_eq!(check_conjunction(&arena, &lits), TheoryVerdict::Conflict);
/// ```
pub fn check_conjunction(arena: &TermArena, lits: &[TheoryLit]) -> TheoryVerdict {
    if check_euf(arena, lits) == TheoryVerdict::Conflict {
        return TheoryVerdict::Conflict;
    }
    check_arith(arena, lits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sort;

    fn pos(atom: TermId) -> TheoryLit {
        TheoryLit {
            atom,
            positive: true,
        }
    }

    fn neg(atom: TermId) -> TheoryLit {
        TheoryLit {
            atom,
            positive: false,
        }
    }

    #[test]
    fn euf_transitivity_conflict() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let y = a.var("y", Sort::Int);
        let z = a.var("z", Sort::Int);
        let xy = a.eq(x, y);
        let yz = a.eq(y, z);
        let xz = a.eq(x, z);
        let lits = [pos(xy), pos(yz), neg(xz)];
        assert_eq!(check_conjunction(&a, &lits), TheoryVerdict::Conflict);
    }

    #[test]
    fn euf_congruence_conflict() {
        // x = y ∧ x+1 ≠ y+1 is a congruence conflict.
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let y = a.var("y", Sort::Int);
        let one = a.int(1);
        let x1 = a.add2(x, one);
        let y1 = a.add2(y, one);
        let xy = a.eq(x, y);
        let fx_fy = a.eq(x1, y1);
        let lits = [pos(xy), neg(fx_fy)];
        assert_eq!(check_conjunction(&a, &lits), TheoryVerdict::Conflict);
    }

    #[test]
    fn distinct_constants_conflict() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let zero = a.int(0);
        let one = a.int(1);
        let e0 = a.eq(x, zero);
        let e1 = a.eq(x, one);
        let lits = [pos(e0), pos(e1)];
        assert_eq!(check_conjunction(&a, &lits), TheoryVerdict::Conflict);
    }

    #[test]
    fn arith_cycle_conflict() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let y = a.var("y", Sort::Int);
        let lt = a.lt(x, y);
        let gt = a.lt(y, x);
        assert_eq!(
            check_conjunction(&a, &[pos(lt), pos(gt)]),
            TheoryVerdict::Conflict
        );
    }

    #[test]
    fn arith_bounds_consistent() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let zero = a.int(0);
        let ten = a.int(10);
        let lo = a.le(zero, x);
        let hi = a.le(x, ten);
        assert_eq!(
            check_conjunction(&a, &[pos(lo), pos(hi)]),
            TheoryVerdict::Consistent
        );
    }

    #[test]
    fn arith_bounds_conflict() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let zero = a.int(0);
        let ten = a.int(10);
        let hi = a.lt(x, zero);
        let lo = a.lt(ten, x);
        assert_eq!(
            check_conjunction(&a, &[pos(lo), pos(hi)]),
            TheoryVerdict::Conflict
        );
    }

    #[test]
    fn diseq_squeeze_conflict() {
        // 0 ≤ x ∧ x ≤ 0 ∧ x ≠ 0 is a conflict.
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let zero = a.int(0);
        let lo = a.le(zero, x);
        let hi = a.le(x, zero);
        let eq = a.eq(x, zero);
        let lits = [pos(lo), pos(hi), neg(eq)];
        assert_eq!(check_conjunction(&a, &lits), TheoryVerdict::Conflict);
    }

    #[test]
    fn diseq_alone_consistent() {
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let zero = a.int(0);
        let eq = a.eq(x, zero);
        assert_eq!(check_conjunction(&a, &[neg(eq)]), TheoryVerdict::Consistent);
    }

    #[test]
    fn equality_chain_feeds_arith() {
        // x = y ∧ y = 5 ∧ x < 3: arithmetic must see the chain.
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let y = a.var("y", Sort::Int);
        let five = a.int(5);
        let three = a.int(3);
        let xy = a.eq(x, y);
        let y5 = a.eq(y, five);
        let x3 = a.lt(x, three);
        let lits = [pos(xy), pos(y5), pos(x3)];
        assert_eq!(check_conjunction(&a, &lits), TheoryVerdict::Conflict);
    }

    #[test]
    fn negated_le_is_strict_gt() {
        // ¬(x ≤ 5) ∧ x ≤ 5 → conflict (checks both polarities wired right).
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let five = a.int(5);
        let le = a.le(x, five);
        assert_eq!(
            check_conjunction(&a, &[pos(le), neg(le)]),
            TheoryVerdict::Conflict
        );
    }

    #[test]
    fn integer_strictness_used() {
        // x < y ∧ y < x+2 ∧ x ≠ ... fine; but x < y ∧ y < x+1 is an
        // integer conflict that the +1 encoding catches.
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let y = a.var("y", Sort::Int);
        let one = a.int(1);
        let x1 = a.add2(x, one);
        let l1 = a.lt(x, y);
        let l2 = a.lt(y, x1);
        assert_eq!(
            check_conjunction(&a, &[pos(l1), pos(l2)]),
            TheoryVerdict::Conflict
        );
    }

    #[test]
    fn empty_conjunction_consistent() {
        let a = TermArena::new();
        assert_eq!(check_conjunction(&a, &[]), TheoryVerdict::Consistent);
    }

    #[test]
    fn nonlinear_products_are_opaque() {
        // x*y = 1 ∧ x*y = 2 conflicts via the opaque base (same product).
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let y = a.var("y", Sort::Int);
        let xy = a.mul(x, y);
        let one = a.int(1);
        let two = a.int(2);
        let e1 = a.eq(xy, one);
        let e2 = a.eq(xy, two);
        assert_eq!(
            check_conjunction(&a, &[pos(e1), pos(e2)]),
            TheoryVerdict::Conflict
        );
    }
}

#[cfg(test)]
mod chain_tests {
    use super::*;
    use crate::term::{Sort, TermArena};

    fn pos(atom: crate::term::TermId) -> TheoryLit {
        TheoryLit {
            atom,
            positive: true,
        }
    }

    #[test]
    fn long_strict_chain_cycle_conflicts() {
        // x0 < x1 < … < x9 < x0 is a conflict FM must find after
        // eliminating nine variables.
        let mut a = TermArena::new();
        let xs: Vec<_> = (0..10).map(|i| a.var(format!("x{i}"), Sort::Int)).collect();
        let mut lits = Vec::new();
        for w in xs.windows(2) {
            let l = a.lt(w[0], w[1]);
            lits.push(pos(l));
        }
        let back = a.lt(xs[9], xs[0]);
        lits.push(pos(back));
        assert_eq!(check_conjunction(&a, &lits), TheoryVerdict::Conflict);
    }

    #[test]
    fn long_chain_without_cycle_is_consistent() {
        let mut a = TermArena::new();
        let xs: Vec<_> = (0..10).map(|i| a.var(format!("x{i}"), Sort::Int)).collect();
        let lits: Vec<TheoryLit> = xs
            .windows(2)
            .map(|w| {
                let l = a.lt(w[0], w[1]);
                pos(l)
            })
            .collect();
        assert_eq!(check_conjunction(&a, &lits), TheoryVerdict::Consistent);
    }

    #[test]
    fn coefficient_scaling_conflict() {
        // 2x ≤ y ∧ y ≤ x ∧ 1 ≤ x conflicts (forces x ≤ 0 and x ≥ 1).
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let y = a.var("y", Sort::Int);
        let two = a.int(2);
        let one = a.int(1);
        let tx = a.mul(two, x);
        let l1 = a.le(tx, y);
        let l2 = a.le(y, x);
        let l3 = a.le(one, x);
        let lits = [pos(l1), pos(l2), pos(l3)];
        assert_eq!(check_conjunction(&a, &lits), TheoryVerdict::Conflict);
    }

    #[test]
    fn sum_constraint_propagates() {
        // x + y ≤ 1 ∧ 1 ≤ x ∧ 1 ≤ y conflicts.
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let y = a.var("y", Sort::Int);
        let one = a.int(1);
        let s = a.add2(x, y);
        let l1 = a.le(s, one);
        let l2 = a.le(one, x);
        let l3 = a.le(one, y);
        let lits = [pos(l1), pos(l2), pos(l3)];
        assert_eq!(check_conjunction(&a, &lits), TheoryVerdict::Conflict);
    }

    #[test]
    fn boundary_add_is_exact_not_wrapped() {
        // x = i64::MAX + 1 ∧ x ≤ i64::MAX must conflict: the sum is the
        // exact integer 2^63, not a wrapped i64::MIN (which would make
        // the conjunction satisfiable).
        let mut a = TermArena::new();
        let x = a.var("x", Sort::Int);
        let max = a.int(i64::MAX);
        let one = a.int(1);
        let over = a.add2(max, one);
        let eq = a.eq(x, over);
        let le = a.le(x, max);
        assert_eq!(
            check_conjunction(&a, &[pos(eq), pos(le)]),
            TheoryVerdict::Conflict
        );
        // …and x = MAX + 1 ∧ MAX ≤ x is fine.
        let ge = a.le(max, x);
        assert_eq!(
            check_conjunction(&a, &[pos(eq), pos(ge)]),
            TheoryVerdict::Consistent
        );
    }

    #[test]
    fn boundary_sub_is_exact_not_wrapped() {
        // y = i64::MIN - 1 ∧ MIN ≤ y conflicts; wrapped folding would
        // have made y = i64::MAX and the conjunction satisfiable.
        let mut a = TermArena::new();
        let y = a.var("y", Sort::Int);
        let min = a.int(i64::MIN);
        let one = a.int(1);
        let under = a.sub(min, one);
        let eq = a.eq(y, under);
        let ge = a.le(min, y);
        assert_eq!(
            check_conjunction(&a, &[pos(eq), pos(ge)]),
            TheoryVerdict::Conflict
        );
    }

    #[test]
    fn boundary_neg_is_exact_not_wrapped() {
        // -i64::MIN is the exact 2^63: it is > 0 (consistent) and ≠ MIN
        // (conflict if equated). Wrapped folding said -MIN = MIN < 0.
        let mut a = TermArena::new();
        let min = a.int(i64::MIN);
        let zero = a.int(0);
        let negated = a.neg(min);
        let gt = a.lt(zero, negated);
        assert_eq!(check_conjunction(&a, &[pos(gt)]), TheoryVerdict::Consistent);
        let eq = a.eq(negated, min);
        assert_eq!(check_conjunction(&a, &[pos(eq)]), TheoryVerdict::Conflict);
    }

    #[test]
    fn boundary_mul_is_exact_not_wrapped() {
        // i64::MAX * 2 = 2^64 - 2 exactly, which is positive; the
        // wrapped fold said -2.
        let mut a = TermArena::new();
        let max = a.int(i64::MAX);
        let two = a.int(2);
        let zero = a.int(0);
        let dbl = a.mul(max, two);
        let neg_claim = a.lt(dbl, zero);
        assert_eq!(
            check_conjunction(&a, &[pos(neg_claim)]),
            TheoryVerdict::Conflict
        );
    }

    #[test]
    fn ite_terms_handled_opaquely_by_euf() {
        // ite(c, x, y) = z ∧ ite(c, x, y) ≠ z is a direct EUF conflict
        // even though the solver gives the ite no arithmetic meaning.
        let mut a = TermArena::new();
        let c = a.var("c", Sort::Bool);
        let x = a.var("x", Sort::Int);
        let y = a.var("y", Sort::Int);
        let z = a.var("z", Sort::Int);
        let ite = a.ite(c, x, y);
        let eq = a.eq(ite, z);
        let lits = [
            pos(eq),
            TheoryLit {
                atom: eq,
                positive: false,
            },
        ];
        assert_eq!(check_conjunction(&a, &lits), TheoryVerdict::Conflict);
    }
}
