//! Property test: the smart constructors' simplifications (unit laws,
//! complement folding, flattening, constant folding, boolean-equality
//! expansion) are semantics-preserving. A reference evaluator interprets
//! the *intended* formula; the arena-built term is evaluated under the
//! same assignment; the two must agree for every random assignment.

use pinpoint_smt::{Sort, TermArena, TermId, TermKind};
use std::collections::HashMap;

/// Minimal SplitMix64 so the property loops below are deterministic
/// without an external PRNG dependency.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }

    fn bool4(&mut self) -> [bool; 4] {
        std::array::from_fn(|_| self.below(2) == 1)
    }

    fn ints4(&mut self) -> [i64; 4] {
        std::array::from_fn(|_| self.int_in(-3, 4))
    }
}

/// Intended formulas, interpreted directly (no simplification).
#[derive(Debug, Clone)]
enum Formula {
    BVar(u8),
    IVarCmp(u8, i64, CmpOp), // x_i ⋈ k
    Not(Box<Formula>),
    And(Vec<Formula>),
    Or(Vec<Formula>),
    BoolConst(bool),
    IffVars(u8, u8), // b_i = b_j (boolean equality)
}

#[derive(Debug, Clone, Copy)]
enum CmpOp {
    Eq,
    Lt,
    Le,
}

fn random_leaf(rng: &mut Mix) -> Formula {
    match rng.below(4) {
        0 => Formula::BVar(rng.below(4) as u8),
        1 => {
            let v = rng.below(4) as u8;
            let k = rng.int_in(-3, 4);
            let op = [CmpOp::Eq, CmpOp::Lt, CmpOp::Le][rng.below(3) as usize];
            Formula::IVarCmp(v, k, op)
        }
        2 => Formula::BoolConst(rng.below(2) == 1),
        _ => Formula::IffVars(rng.below(4) as u8, rng.below(4) as u8),
    }
}

fn random_formula(rng: &mut Mix, depth: u32) -> Formula {
    if depth == 0 || rng.below(3) == 0 {
        return random_leaf(rng);
    }
    match rng.below(3) {
        0 => Formula::Not(Box::new(random_formula(rng, depth - 1))),
        1 => Formula::And(
            (0..1 + rng.below(3))
                .map(|_| random_formula(rng, depth - 1))
                .collect(),
        ),
        _ => Formula::Or(
            (0..1 + rng.below(3))
                .map(|_| random_formula(rng, depth - 1))
                .collect(),
        ),
    }
}

/// Direct interpretation of the intended formula.
fn eval_formula(f: &Formula, bools: &[bool; 4], ints: &[i64; 4]) -> bool {
    match f {
        Formula::BVar(i) => bools[*i as usize],
        Formula::IVarCmp(i, k, op) => {
            let x = ints[*i as usize];
            match op {
                CmpOp::Eq => x == *k,
                CmpOp::Lt => x < *k,
                CmpOp::Le => x <= *k,
            }
        }
        Formula::Not(inner) => !eval_formula(inner, bools, ints),
        Formula::And(xs) => xs.iter().all(|x| eval_formula(x, bools, ints)),
        Formula::Or(xs) => xs.iter().any(|x| eval_formula(x, bools, ints)),
        Formula::BoolConst(b) => *b,
        Formula::IffVars(a, b) => bools[*a as usize] == bools[*b as usize],
    }
}

/// Builds the term through the simplifying constructors.
fn build_term(arena: &mut TermArena, f: &Formula) -> TermId {
    match f {
        Formula::BVar(i) => arena.var(format!("b{i}"), Sort::Bool),
        Formula::IVarCmp(i, k, op) => {
            let x = arena.var(format!("x{i}"), Sort::Int);
            let kk = arena.int(*k);
            match op {
                CmpOp::Eq => arena.eq(x, kk),
                CmpOp::Lt => arena.lt(x, kk),
                CmpOp::Le => arena.le(x, kk),
            }
        }
        Formula::Not(inner) => {
            let t = build_term(arena, inner);
            arena.not(t)
        }
        Formula::And(xs) => {
            let ts: Vec<TermId> = xs.iter().map(|x| build_term(arena, x)).collect();
            arena.and(ts)
        }
        Formula::Or(xs) => {
            let ts: Vec<TermId> = xs.iter().map(|x| build_term(arena, x)).collect();
            arena.or(ts)
        }
        Formula::BoolConst(b) => arena.bool_const(*b),
        Formula::IffVars(a, b) => {
            let ta = arena.var(format!("b{a}"), Sort::Bool);
            let tb = arena.var(format!("b{b}"), Sort::Bool);
            arena.eq(ta, tb)
        }
    }
}

/// Evaluates a built term under an assignment.
fn eval_term(
    arena: &TermArena,
    t: TermId,
    bools: &[bool; 4],
    ints: &[i64; 4],
    cache: &mut HashMap<TermId, i64>,
) -> i64 {
    if let Some(&v) = cache.get(&t) {
        return v;
    }
    let v: i64 = match arena.kind(t) {
        TermKind::BoolConst(b) => i64::from(*b),
        TermKind::IntConst(k) => *k,
        TermKind::Var(name, sort) => {
            let idx: usize = name[1..].parse().expect("test var name");
            match sort {
                Sort::Bool => i64::from(bools[idx]),
                Sort::Int => ints[idx],
            }
        }
        TermKind::Not(a) => {
            let va = eval_term(arena, *a, bools, ints, cache);
            i64::from(va == 0)
        }
        TermKind::And(xs) => i64::from(
            xs.iter()
                .all(|&x| eval_term(arena, x, bools, ints, cache) != 0),
        ),
        TermKind::Or(xs) => i64::from(
            xs.iter()
                .any(|&x| eval_term(arena, x, bools, ints, cache) != 0),
        ),
        TermKind::Ite(c, a, b) => {
            if eval_term(arena, *c, bools, ints, cache) != 0 {
                eval_term(arena, *a, bools, ints, cache)
            } else {
                eval_term(arena, *b, bools, ints, cache)
            }
        }
        TermKind::Eq(a, b) => i64::from(
            eval_term(arena, *a, bools, ints, cache) == eval_term(arena, *b, bools, ints, cache),
        ),
        TermKind::Lt(a, b) => i64::from(
            eval_term(arena, *a, bools, ints, cache) < eval_term(arena, *b, bools, ints, cache),
        ),
        TermKind::Le(a, b) => i64::from(
            eval_term(arena, *a, bools, ints, cache) <= eval_term(arena, *b, bools, ints, cache),
        ),
        TermKind::Add(xs) => xs
            .iter()
            .map(|&x| eval_term(arena, x, bools, ints, cache))
            .fold(0i64, i64::wrapping_add),
        TermKind::Sub(a, b) => eval_term(arena, *a, bools, ints, cache)
            .wrapping_sub(eval_term(arena, *b, bools, ints, cache)),
        TermKind::Mul(a, b) => eval_term(arena, *a, bools, ints, cache)
            .wrapping_mul(eval_term(arena, *b, bools, ints, cache)),
        TermKind::Neg(a) => eval_term(arena, *a, bools, ints, cache).wrapping_neg(),
    };
    cache.insert(t, v);
    v
}

#[test]
fn simplification_preserves_semantics() {
    let mut rng = Mix(0x51A9);
    for _ in 0..512 {
        let formula = random_formula(&mut rng, 4);
        let bools = rng.bool4();
        let ints = rng.ints4();
        let mut arena = TermArena::new();
        let term = build_term(&mut arena, &formula);
        let expected = eval_formula(&formula, &bools, &ints);
        let mut cache = HashMap::new();
        let got = eval_term(&arena, term, &bools, &ints, &mut cache) != 0;
        assert_eq!(got, expected, "formula {formula:?}");
    }
}

/// The SMT solver is a decision procedure for these formulas: if any
/// of a sample of assignments satisfies the formula, the solver must
/// say Sat; if the solver says Unsat, no sampled assignment may
/// satisfy it.
#[test]
fn solver_agrees_with_sampled_assignments() {
    use pinpoint_smt::{SmtResult, SmtSolver};
    let mut rng = Mix(0x501E);
    for _ in 0..256 {
        let formula = random_formula(&mut rng, 4);
        let samples: Vec<([bool; 4], [i64; 4])> =
            (0..8).map(|_| (rng.bool4(), rng.ints4())).collect();
        let mut arena = TermArena::new();
        let term = build_term(&mut arena, &formula);
        let mut solver = SmtSolver::new();
        let verdict = solver.check(&arena, term);
        let any_model = samples.iter().any(|(b, i)| eval_formula(&formula, b, i));
        if any_model {
            assert_eq!(verdict, SmtResult::Sat, "witnessed: {formula:?}");
        }
        if verdict == SmtResult::Unsat {
            assert!(!any_model, "solver unsat but model sampled: {formula:?}");
        }
    }
}
