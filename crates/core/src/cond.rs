//! Path-condition construction (§3.2.2, §3.3.1).
//!
//! Given a global value-flow path, the detector must build the *efficient
//! path condition* of Equations (1)–(3): for each vertex the control
//! dependence `CD(·)`, for each edge the flow equality, the edge label,
//! and the data-dependence closure `DD(·)` of the label, and at every
//! function boundary the parameter/return bindings (the bold parts of
//! Eq. 2 and Eq. 3).
//!
//! Context-sensitivity follows the cloning approach (§3.3.1(2)): each
//! calling context is an interned [`CtxId`]; cloning a term under a
//! context renames every variable with a `|c<id>` suffix, so constraints
//! from two instantiations of the same callee never collide. The return
//! -value constraints of a callee (`DD(v@s)^P_∅` — the **RV summary**) are
//! computed once in the callee's own namespace (memoised in
//! [`pinpoint_pta::Symbols`]' term cache) and instantiated per context by
//! cloning plus formal/actual binding, exactly as the paper's Example 3.10.
//!
//! All construction happens against the worker's [`TermArena`], which is
//! an O(1) *overlay* of the module-wide interner built during the PTA and
//! SEG stages: every build-time condition is visible by its original
//! interned id, and the ids this module mints extend that shared space.
//! Downstream, each finished condition is canonically fingerprinted and
//! checked against the cross-run verdict table before any solver call
//! (see DESIGN.md "Cross-query condition reuse").

use crate::seg::ModuleSeg;
use pinpoint_ir::{intrinsics, BlockId, FuncId, Inst, InstId, Module, ValueId};
use pinpoint_pta::Symbols;
use pinpoint_smt::{TermArena, TermId, TermKind};
use std::collections::{HashMap, HashSet};

/// An interned calling context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CtxId(pub u32);

/// The root context: terms are used in their original namespace.
pub const ROOT: CtxId = CtxId(0);

/// Interner for calling contexts.
///
/// A context is either the root, a callee frame entered from a call site
/// (`CalleeOf`), or a caller frame entered by unwinding past the root
/// function of the query (`CallerOf`).
#[derive(Debug, Default)]
pub struct CtxInterner {
    keys: HashMap<(CtxId, FuncId, InstId, bool), CtxId>,
    count: u32,
}

impl CtxInterner {
    /// Creates an interner holding only [`ROOT`].
    pub fn new() -> Self {
        CtxInterner {
            keys: HashMap::new(),
            count: 1,
        }
    }

    /// The context entered by descending from `parent` through `site`
    /// (in function `caller`) into a callee.
    pub fn callee_of(&mut self, parent: CtxId, caller: FuncId, site: InstId) -> CtxId {
        self.intern((parent, caller, site, true))
    }

    /// The context of a caller frame reached by ascending out of `child`
    /// through `site` of `caller`.
    pub fn caller_of(&mut self, child: CtxId, caller: FuncId, site: InstId) -> CtxId {
        self.intern((child, caller, site, false))
    }

    fn intern(&mut self, key: (CtxId, FuncId, InstId, bool)) -> CtxId {
        if let Some(&id) = self.keys.get(&key) {
            return id;
        }
        let id = CtxId(self.count);
        self.count += 1;
        self.keys.insert(key, id);
        id
    }

    /// Number of contexts created (root included).
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Never empty: the root always exists.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Tunables of condition construction.
#[derive(Debug, Clone, Copy)]
pub struct CondConfig {
    /// Maximum closure recursion depth across function boundaries
    /// (the paper's experiments use six nested levels).
    pub max_depth: u32,
    /// Hard cap on accumulated constraints per query.
    pub max_constraints: usize,
}

impl Default for CondConfig {
    fn default() -> Self {
        CondConfig {
            max_depth: 6,
            max_constraints: 4_000,
        }
    }
}

/// Accumulates the constraints of one candidate path.
#[derive(Debug)]
pub struct CondBuilder<'a> {
    module: &'a Module,
    segs: &'a ModuleSeg,
    symbols: &'a mut Symbols,
    arena: &'a mut TermArena,
    ctxs: &'a mut CtxInterner,
    config: CondConfig,
    acc: Vec<TermId>,
    acc_set: HashSet<TermId>,
    visited_values: HashSet<(FuncId, ValueId, CtxId)>,
    visited_cd: HashSet<(FuncId, BlockId, CtxId)>,
    clone_cache: HashMap<(TermId, CtxId), TermId>,
    leaves_cache: HashMap<TermId, Vec<TermId>>,
    truncated: bool,
}

impl<'a> CondBuilder<'a> {
    /// Creates a builder for one query.
    pub fn new(
        module: &'a Module,
        segs: &'a ModuleSeg,
        symbols: &'a mut Symbols,
        arena: &'a mut TermArena,
        ctxs: &'a mut CtxInterner,
        config: CondConfig,
    ) -> Self {
        CondBuilder {
            module,
            segs,
            symbols,
            arena,
            ctxs,
            config,
            acc: Vec::new(),
            acc_set: HashSet::new(),
            visited_values: HashSet::new(),
            visited_cd: HashSet::new(),
            clone_cache: HashMap::new(),
            leaves_cache: HashMap::new(),
            truncated: false,
        }
    }

    /// The conjunction of everything accumulated so far.
    pub fn condition(&mut self) -> TermId {
        self.arena.and(self.acc.clone())
    }

    /// Number of accumulated constraint conjuncts.
    pub fn len(&self) -> usize {
        self.acc.len()
    }

    /// `true` if nothing has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.acc.is_empty()
    }

    /// `true` if the constraint cap was hit (condition is then an
    /// under-approximation: solving it may report an infeasible path).
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    fn push(&mut self, t: TermId) {
        if self.acc.len() >= self.config.max_constraints {
            self.truncated = true;
            return;
        }
        if self.acc_set.insert(t) {
            self.acc.push(t);
        }
    }

    /// Clones `t` into context `ctx` by renaming every variable.
    pub fn clone_term(&mut self, t: TermId, ctx: CtxId) -> TermId {
        if ctx == ROOT {
            return t;
        }
        if let Some(&c) = self.clone_cache.get(&(t, ctx)) {
            return c;
        }
        let cloned = match self.arena.kind(t).clone() {
            TermKind::Var(name, sort) => self.arena.var(format!("{name}|c{}", ctx.0), sort),
            TermKind::BoolConst(_) | TermKind::IntConst(_) => t,
            TermKind::Not(x) => {
                let cx = self.clone_term(x, ctx);
                self.arena.not(cx)
            }
            TermKind::Neg(x) => {
                let cx = self.clone_term(x, ctx);
                self.arena.neg(cx)
            }
            TermKind::And(xs) => {
                let cs: Vec<TermId> = xs.iter().map(|&x| self.clone_term(x, ctx)).collect();
                self.arena.and(cs)
            }
            TermKind::Or(xs) => {
                let cs: Vec<TermId> = xs.iter().map(|&x| self.clone_term(x, ctx)).collect();
                self.arena.or(cs)
            }
            TermKind::Add(xs) => {
                let cs: Vec<TermId> = xs.iter().map(|&x| self.clone_term(x, ctx)).collect();
                self.arena.add(cs)
            }
            TermKind::Ite(c, a, b) => {
                let cc = self.clone_term(c, ctx);
                let ca = self.clone_term(a, ctx);
                let cb = self.clone_term(b, ctx);
                self.arena.ite(cc, ca, cb)
            }
            TermKind::Eq(a, b) => {
                let ca = self.clone_term(a, ctx);
                let cb = self.clone_term(b, ctx);
                self.arena.eq(ca, cb)
            }
            TermKind::Lt(a, b) => {
                let ca = self.clone_term(a, ctx);
                let cb = self.clone_term(b, ctx);
                self.arena.lt(ca, cb)
            }
            TermKind::Le(a, b) => {
                let ca = self.clone_term(a, ctx);
                let cb = self.clone_term(b, ctx);
                self.arena.le(ca, cb)
            }
            TermKind::Sub(a, b) => {
                let ca = self.clone_term(a, ctx);
                let cb = self.clone_term(b, ctx);
                self.arena.sub(ca, cb)
            }
            TermKind::Mul(a, b) => {
                let ca = self.clone_term(a, ctx);
                let cb = self.clone_term(b, ctx);
                self.arena.mul(ca, cb)
            }
        };
        self.clone_cache.insert((t, ctx), cloned);
        cloned
    }

    /// The opaque variable leaves of `t` (memoised).
    fn leaves(&mut self, t: TermId) -> Vec<TermId> {
        if let Some(l) = self.leaves_cache.get(&t) {
            return l.clone();
        }
        let mut out = Vec::new();
        let mut stack = vec![t];
        let mut seen = HashSet::new();
        while let Some(x) = stack.pop() {
            if !seen.insert(x) {
                continue;
            }
            match self.arena.kind(x) {
                TermKind::Var(..) => out.push(x),
                TermKind::Not(a) | TermKind::Neg(a) => stack.push(*a),
                TermKind::And(xs) | TermKind::Or(xs) | TermKind::Add(xs) => {
                    stack.extend(xs.iter().copied())
                }
                TermKind::Ite(c, a, b) => stack.extend([*c, *a, *b]),
                TermKind::Eq(a, b)
                | TermKind::Lt(a, b)
                | TermKind::Le(a, b)
                | TermKind::Sub(a, b)
                | TermKind::Mul(a, b) => stack.extend([*a, *b]),
                _ => {}
            }
        }
        self.leaves_cache.insert(t, out.clone());
        out
    }

    /// Adds the data-dependence closure of every opaque leaf of `t`
    /// (which is a term of function `fid`, instantiated under `ctx`).
    pub fn add_term_closure(&mut self, fid: FuncId, t: TermId, ctx: CtxId, depth: u32) {
        for leaf in self.leaves(t) {
            if let Some((ofid, ov)) = self.symbols.origin(leaf) {
                debug_assert_eq!(ofid, fid, "terms never mix functions before cloning");
                self.add_value_closure(fid, ov, ctx, depth);
            }
        }
    }

    /// Adds `DD(v)` (Example 3.7): the constraints that define the opaque
    /// variable of `v`, recursively, stopping at function parameters
    /// (whose constraints are added when a boundary is crossed — the
    /// `P`-set of `PC(·)^P_∅`).
    pub fn add_value_closure(&mut self, fid: FuncId, v: ValueId, ctx: CtxId, depth: u32) {
        if !self.visited_values.insert((fid, v, ctx)) {
            return;
        }
        let f = self.module.func(fid);
        let term = self.symbols.value_term(self.arena, fid, f, v);
        let Some(def) = f.value(v).def else {
            return; // parameter: boundary crossing resolves it
        };
        match f.inst(def).clone() {
            // Structural definitions: close the leaves of the term.
            Inst::Const { .. } | Inst::Copy { .. } | Inst::Bin { .. } | Inst::Un { .. } => {
                // Avoid self-recursion on the defining value itself.
                for leaf in self.leaves(term) {
                    if let Some((ofid, ov)) = self.symbols.origin(leaf) {
                        if ov != v {
                            self.add_value_closure(ofid, ov, ctx, depth);
                        }
                    }
                }
            }
            // φ and loads: guarded equalities over the SEG in-edges.
            Inst::Phi { .. } | Inst::Load { .. } => {
                let edges: Vec<crate::seg::SegEdge> = self.segs.seg(fid).preds(v).to_vec();
                for e in edges {
                    let src_term = self.symbols.value_term(self.arena, fid, f, e.src);
                    let eq = self.arena.eq(term, src_term);
                    let implied = self.arena.implies(e.cond, eq);
                    let cloned = self.clone_term(implied, ctx);
                    self.push(cloned);
                    self.add_term_closure(fid, e.cond, ctx, depth);
                    self.add_value_closure(fid, e.src, ctx, depth);
                }
            }
            // Call receivers: instantiate the callee's RV summary (Eq. 2).
            Inst::Call { callee, args, dsts } => {
                if depth == 0 || intrinsics::is_intrinsic(&callee) {
                    return;
                }
                let Some(gid) = self.module.func_by_name(&callee) else {
                    return;
                };
                let idx = dsts.iter().position(|&d| d == v).unwrap_or(0);
                let g = self.module.func(gid);
                let rets = g.return_values().to_vec();
                let Some(&ret) = rets.get(idx) else { return };
                let child = self.ctxs.callee_of(ctx, fid, def);
                // ① receiver = return value.
                let ret_term = self.symbols.value_term(self.arena, gid, g, ret);
                let lhs = self.clone_term(term, ctx);
                let rhs = self.clone_term(ret_term, child);
                let eq = self.arena.eq(lhs, rhs);
                self.push(eq);
                // ② the callee's return-value constraints.
                self.add_value_closure(gid, ret, child, depth - 1);
                self.add_term_closure(gid, ret_term, child, depth - 1);
                // ③ formal/actual bindings.
                self.bind_params(fid, ctx, gid, child, &args, depth - 1);
            }
            Inst::Alloc { .. } | Inst::GlobalAddr { .. } | Inst::Store { .. } => {}
        }
    }

    /// Adds `formal = actual` equalities plus the actuals' closures
    /// (the bold part of Eq. 3).
    pub fn bind_params(
        &mut self,
        caller: FuncId,
        caller_ctx: CtxId,
        callee: FuncId,
        callee_ctx: CtxId,
        args: &[ValueId],
        depth: u32,
    ) {
        let cf = self.module.func(caller);
        let gf = self.module.func(callee);
        let params = gf.params.clone();
        for (&a, &p) in args.iter().zip(params.iter()) {
            let p_term = self.symbols.value_term(self.arena, callee, gf, p);
            let a_term = self.symbols.value_term(self.arena, caller, cf, a);
            let lhs = self.clone_term(p_term, callee_ctx);
            let rhs = self.clone_term(a_term, caller_ctx);
            let eq = self.arena.eq(lhs, rhs);
            self.push(eq);
            self.add_term_closure(caller, a_term, caller_ctx, depth);
            self.add_value_closure(caller, a, caller_ctx, depth);
        }
    }

    /// Adds `CD(block)` (Example 3.8): the chained control-dependence
    /// constraints of a block, with the `DD` closure of every branch
    /// condition on the chain.
    pub fn add_control_deps(&mut self, fid: FuncId, block: BlockId, ctx: CtxId, depth: u32) {
        if !self.visited_cd.insert((fid, block, ctx)) {
            return;
        }
        let deps: Vec<(ValueId, bool)> = self.segs.seg(fid).control_deps[block.0 as usize].clone();
        let f = self.module.func(fid);
        for (cv, pol) in deps {
            let t = self.symbols.value_term(self.arena, fid, f, cv);
            let lit = if pol { t } else { self.arena.not(t) };
            let cloned = self.clone_term(lit, ctx);
            self.push(cloned);
            self.add_term_closure(fid, t, ctx, depth);
            self.add_value_closure(fid, cv, ctx, depth);
            // Transitive: the branch variable's own defining block.
            if let Some(def) = f.value(cv).def {
                self.add_control_deps(fid, def.block, ctx, depth);
            }
        }
    }

    /// Adds a raw (already-built) constraint term of function `fid` under
    /// `ctx`, plus the closure of its leaves.
    pub fn add_constraint(&mut self, fid: FuncId, t: TermId, ctx: CtxId, depth: u32) {
        let cloned = self.clone_term(t, ctx);
        self.push(cloned);
        self.add_term_closure(fid, t, ctx, depth);
    }

    /// Adds the flow equality `dst = src` across (possibly different)
    /// functions/contexts.
    pub fn add_flow_equality(
        &mut self,
        dst_fid: FuncId,
        dst: ValueId,
        dst_ctx: CtxId,
        src_fid: FuncId,
        src: ValueId,
        src_ctx: CtxId,
    ) {
        let df = self.module.func(dst_fid);
        let sf = self.module.func(src_fid);
        let dt = self.symbols.value_term(self.arena, dst_fid, df, dst);
        let st = self.symbols.value_term(self.arena, src_fid, sf, src);
        let lhs = self.clone_term(dt, dst_ctx);
        let rhs = self.clone_term(st, src_ctx);
        let eq = self.arena.eq(lhs, rhs);
        self.push(eq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seg::ModuleSeg;
    use pinpoint_ir::compile;
    use pinpoint_pta::analyze_module;
    use pinpoint_smt::{SmtResult, SmtSolver};

    struct Fixture {
        module: Module,
        segs: ModuleSeg,
        symbols: Symbols,
        arena: TermArena,
    }

    fn fixture(src: &str) -> Fixture {
        let mut module = compile(src).unwrap();
        let mut analysis = analyze_module(&mut module);
        let mut arena = std::mem::take(&mut analysis.arena);
        let mut symbols = std::mem::take(&mut analysis.symbols);
        let segs = ModuleSeg::build(&module, &mut arena, &mut symbols, &analysis.pta);
        Fixture {
            module,
            segs,
            symbols,
            arena,
        }
    }

    #[test]
    fn context_interner_dedups() {
        let mut ctxs = CtxInterner::new();
        let site = InstId {
            block: BlockId(0),
            index: 0,
        };
        let a = ctxs.callee_of(ROOT, FuncId(0), site);
        let b = ctxs.callee_of(ROOT, FuncId(0), site);
        assert_eq!(a, b);
        let c = ctxs.caller_of(ROOT, FuncId(0), site);
        assert_ne!(a, c);
        assert_eq!(ctxs.len(), 3);
    }

    #[test]
    fn clone_renames_variables() {
        let mut fx = fixture("fn f(x: int) -> bool { let t: bool = x != 0; return t; }");
        let fid = fx.module.func_by_name("f").unwrap();
        let f = fx.module.func(fid);
        let ret = f.return_values()[0];
        let t = fx.symbols.value_term(&mut fx.arena, fid, f, ret);
        let mut ctxs = CtxInterner::new();
        let mut cb = CondBuilder::new(
            &fx.module,
            &fx.segs,
            &mut fx.symbols,
            &mut fx.arena,
            &mut ctxs,
            CondConfig::default(),
        );
        let ctx = cb.ctxs.callee_of(
            ROOT,
            fid,
            InstId {
                block: BlockId(0),
                index: 0,
            },
        );
        let cloned = cb.clone_term(t, ctx);
        assert_ne!(t, cloned);
        let printed = cb.arena.display(cloned);
        assert!(printed.contains("|c1"), "renamed: {printed}");
        // Cloning under ROOT is the identity.
        assert_eq!(cb.clone_term(t, ROOT), t);
    }

    #[test]
    fn phi_closure_adds_guarded_equalities() {
        let mut fx = fixture(
            "fn f(c: bool) -> int {
                let x: int = 0;
                if (c) { x = 1; } else { x = 2; }
                return x;
            }",
        );
        let fid = fx.module.func_by_name("f").unwrap();
        let f = fx.module.func(fid);
        let ret = f.return_values()[0];
        let mut ctxs = CtxInterner::new();
        let mut cb = CondBuilder::new(
            &fx.module,
            &fx.segs,
            &mut fx.symbols,
            &mut fx.arena,
            &mut ctxs,
            CondConfig::default(),
        );
        cb.add_value_closure(fid, ret, ROOT, 6);
        assert!(cb.len() >= 2, "two guarded equalities for the φ");
        // The closure + x = 1 must be satisfiable; + x = 3 unsatisfiable.
        let x_term = {
            let f = fx.module.func(fid);
            cb.symbols.value_term(cb.arena, fid, f, ret)
        };
        let one = cb.arena.int(1);
        let three = cb.arena.int(3);
        let cond = cb.condition();
        let eq1 = cb.arena.eq(x_term, one);
        let eq3 = cb.arena.eq(x_term, three);
        let sat_case = cb.arena.and2(cond, eq1);
        let unsat_case = cb.arena.and2(cond, eq3);
        let mut solver = SmtSolver::new();
        assert_eq!(solver.check(&fx.arena, sat_case), SmtResult::Sat);
        assert_eq!(solver.check(&fx.arena, unsat_case), SmtResult::Unsat);
    }

    #[test]
    fn rv_summary_instantiation() {
        // Example 3.10's shape: t = test(c) where test returns (e != 0).
        let mut fx = fixture(
            "fn test(e: int*) -> bool {
                let f: bool = e != null;
                return f;
            }
            fn foo(c: int*) -> bool {
                let t: bool = test(c);
                return t;
            }",
        );
        let foo = fx.module.func_by_name("foo").unwrap();
        let f = fx.module.func(foo);
        let ret = f.return_values()[0];
        let mut ctxs = CtxInterner::new();
        let mut cb = CondBuilder::new(
            &fx.module,
            &fx.segs,
            &mut fx.symbols,
            &mut fx.arena,
            &mut ctxs,
            CondConfig::default(),
        );
        cb.add_value_closure(foo, ret, ROOT, 6);
        // t must now be constrained: t ∧ (c = 0) is unsatisfiable because
        // t = (e ≠ 0) ∧ e = c.
        let f = fx.module.func(foo);
        let t_term = cb.symbols.value_term(cb.arena, foo, f, ret);
        let c_term = cb.symbols.value_term(cb.arena, foo, f, f.params[0]);
        let zero = cb.arena.int(0);
        let c_is_null = cb.arena.eq(c_term, zero);
        let closure = cb.condition();
        let query = cb.arena.and([closure, t_term, c_is_null]);
        let mut solver = SmtSolver::new();
        assert_eq!(
            solver.check(&fx.arena, query),
            SmtResult::Unsat,
            "t ⇒ c ≠ null through the RV summary"
        );
    }

    #[test]
    fn control_deps_chain_transitively() {
        // Example 3.8's shape: a statement controlled by θ4 which is
        // itself only evaluated under ¬θ3.
        let mut fx = fixture(
            "fn f(t3: bool, p: int*) {
                if (t3) { print(p); }
                else {
                    let t4: bool = nondet_bool();
                    if (t4) { free(p); }
                }
                return;
            }",
        );
        let fid = fx.module.func_by_name("f").unwrap();
        let f = fx.module.func(fid);
        let free_block = f
            .iter_insts()
            .find_map(|(id, i)| match i {
                Inst::Call { callee, .. } if callee == "free" => Some(id.block),
                _ => None,
            })
            .unwrap();
        let mut ctxs = CtxInterner::new();
        let mut cb = CondBuilder::new(
            &fx.module,
            &fx.segs,
            &mut fx.symbols,
            &mut fx.arena,
            &mut ctxs,
            CondConfig::default(),
        );
        cb.add_control_deps(fid, free_block, ROOT, 6);
        let cond = cb.condition();
        // The chained CD must contain ¬t3: conjoining t3 is unsatisfiable.
        let f = fx.module.func(fid);
        let t3 = cb.symbols.value_term(cb.arena, fid, f, f.params[0]);
        let with_t3 = cb.arena.and2(cond, t3);
        let mut solver = SmtSolver::new();
        assert_eq!(solver.check(&fx.arena, with_t3), SmtResult::Unsat);
        assert_eq!(solver.check(&fx.arena, cond), SmtResult::Sat);
    }

    #[test]
    fn constraint_cap_truncates() {
        let mut fx = fixture(
            "fn f(c: bool) -> int {
                let x: int = 0;
                if (c) { x = 1; } else { x = 2; }
                return x;
            }",
        );
        let fid = fx.module.func_by_name("f").unwrap();
        let ret = fx.module.func(fid).return_values()[0];
        let mut ctxs = CtxInterner::new();
        let mut cb = CondBuilder::new(
            &fx.module,
            &fx.segs,
            &mut fx.symbols,
            &mut fx.arena,
            &mut ctxs,
            CondConfig {
                max_depth: 6,
                max_constraints: 1,
            },
        );
        cb.add_value_closure(fid, ret, ROOT, 6);
        assert!(cb.is_truncated());
        assert_eq!(cb.len(), 1);
    }
}
