//! Whole-program interface summaries and the summary-based `check_all`
//! engine (§3.3.2 materialised bottom-up).
//!
//! The demand-driven detector answers every query by ascending from each
//! source through the virtual global SEG. This module materialises the
//! paper's per-function value-flow summaries *once per (function,
//! property)* instead, walking the call-graph condensation bottom-up —
//! independent SCCs of one condensation level in parallel — and then
//! answers the whole-program question "can this source ever meet a sink?"
//! by composing interface edges at call sites:
//!
//! * **VF1 (param → ret)** — a formal parameter reaches a return
//!   position: recorded as a per-value bitset of reachable return
//!   indices, composed at call sites as a pseudo-edge from the actual
//!   argument to the call's receiver.
//! * **VF2 (source → ret)** — any value (sources included) reaching a
//!   return position: the same bitset, read at the source's value.
//! * **VF3 (param → source)** — a dangerous formal parameter maps back
//!   to caller actuals: recorded as a per-value bitset of the function's
//!   own formal indices, expanded upward through caller argument lists.
//! * **VF4 (param → sink)** — a parameter reaches a property sink
//!   (directly or through callees): a per-value flag, composed through
//!   call sites so callers inherit it at their actuals.
//!
//! A source whose upward closure over these edges never reaches a sink
//! (or a global store, which can feed any load) is *gated*: the detector
//! emits an empty outcome for it without searching. A source that
//! passes the gate runs the unchanged demand-driven search — including
//! its path-condition construction in the shared term interner, so the
//! verdict table applies exactly as before. Because the gate closure is
//! a strict superset of the demand search's reachability (it ignores
//! context-depth limits, dominance filters, and vertex budgets), gating
//! never suppresses a report, and non-gated sources are searched by the
//! very same code — reports are byte-identical to the demand engine at
//! any thread count, by construction.
//!
//! Summaries persist through the artifact cache as the `"vfsum"` stage,
//! keyed by the function's transitive cone fingerprint
//! ([`pinpoint_cache::module_keys`]) combined with a structural property
//! fingerprint. The transitive keys fold callee fingerprints over the
//! condensation, so an edit automatically re-keys the edited functions
//! *and* every SCC above them — exactly the invalidation the bottom-up
//! computation needs. A corrupt or stale record decodes to a miss and
//! the summary is recomputed cold, never wrong.

use crate::seg::{EdgeKind, ModuleSeg};
use crate::spec::{self, Spec};
use pinpoint_cache::CacheStore;
use pinpoint_ir::{CallGraph, FuncId, Module, ValueId};
use std::collections::HashMap;
use std::fmt;

/// Which whole-program engine answers a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Demand-driven per-source search (the reference implementation).
    Demand,
    /// Bottom-up interface summaries gate the sources; survivors run the
    /// same demand-driven search. Byte-identical reports, less work.
    Summary,
}

impl Engine {
    /// Parses a CLI-facing engine name.
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "demand" => Some(Engine::Demand),
            "summary" => Some(Engine::Summary),
            _ => None,
        }
    }

    /// The CLI-facing engine name.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Demand => "demand",
            Engine::Summary => "summary",
        }
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Value reaches a property sink (in this function or through callees).
pub(crate) const SINK: u8 = 1;
/// Value reaches a global store (escapes into a module-wide channel).
pub(crate) const GLOBAL: u8 = 1 << 1;
/// Interface index ≥ 63 involved somewhere below — treated as "may
/// reach anything" instead of widening the bitsets (vanishingly rare).
pub(crate) const OVERFLOW: u8 = 1 << 2;

/// One function's interface summary for one property: per-value class
/// bits over the function's SSA values.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FuncSummary {
    /// Per-value [`SINK`] | [`GLOBAL`] | [`OVERFLOW`] flags.
    pub(crate) flags: Vec<u8>,
    /// Per-value bitset of the function's own return indices the value
    /// reaches (VF1/VF2; bits 0..63).
    pub(crate) rets: Vec<u64>,
    /// Per-value bitset of the function's own formal-parameter indices
    /// the value covers (VF3; bits 0..63).
    pub(crate) params: Vec<u64>,
}

impl FuncSummary {
    /// Number of values summarised (must equal the function's value
    /// count for the summary to be valid).
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// `true` when the function has no values.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }
}

fn iter_bits(mut bits: u64) -> impl Iterator<Item = usize> {
    std::iter::from_fn(move || {
        if bits == 0 {
            return None;
        }
        let k = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        Some(k)
    })
}

/// Structural fingerprint of the property parts the summaries depend on
/// (sources, sinks, transform traversal — detection budgets deliberately
/// excluded: the bits are budget-independent).
pub(crate) fn summary_fingerprint(spec: &Spec) -> u128 {
    use pinpoint_ir::fingerprint::Fnv128;
    let mut h = Fnv128::new();
    h.write_u32(1); // codec/schema version
    match &spec.source {
        spec::SourceSpec::CallReceiver(names) => {
            h.write_u32(0);
            h.write_u64(names.len() as u64);
            for n in names {
                h.write_str(n);
            }
        }
        spec::SourceSpec::FreeArgument => h.write_u32(1),
        spec::SourceSpec::NullConstant => h.write_u32(2),
    }
    match &spec.sink {
        spec::SinkSpec::DerefsAndFrees => h.write_u32(0),
        spec::SinkSpec::Derefs => h.write_u32(1),
        spec::SinkSpec::Calls(names) => {
            h.write_u32(2);
            h.write_u64(names.len() as u64);
            for n in names {
                h.write_str(n);
            }
        }
    }
    h.write_u32(spec.traverses_transforms as u32);
    h.finish()
}

/// Cache key of one function's summary: transitive cone key × property
/// fingerprint.
fn summary_key(func_key: u128, sum_fp: u128) -> u128 {
    use pinpoint_ir::fingerprint::Fnv128;
    let mut h = Fnv128::new();
    h.write_u128(func_key);
    h.write_u128(sum_fp);
    h.finish()
}

/// Fingerprint of the artefact's whole per-function key vector — the
/// validity stamp for an in-memory [`ModuleSummaries`]: keys fold callee
/// fingerprints over the call-graph condensation, so any edit that could
/// change any function's summary changes this value.
pub(crate) fn keys_fingerprint(keys: &[u128]) -> u128 {
    use pinpoint_ir::fingerprint::Fnv128;
    let mut h = Fnv128::new();
    h.write_u64(keys.len() as u64);
    for &k in keys {
        h.write_u128(k);
    }
    h.finish()
}

/// The cache stage summaries persist under.
pub(crate) const STAGE: &str = "vfsum";

/// Every function's interface summary for one property, plus build
/// accounting.
#[derive(Debug, PartialEq, Eq)]
pub struct ModuleSummaries {
    funcs: Vec<FuncSummary>,
    /// Functions whose summary was computed cold this build.
    pub built: u64,
    /// Functions whose summary was loaded from the persistent store (or
    /// replayed from an in-memory copy by the caller).
    pub reused: u64,
    /// Interface edges composed at call sites while building (VF1–VF4
    /// compositions applied by the cold computations).
    pub composed: u64,
}

impl ModuleSummaries {
    /// Builds (or loads) every function's summary for `spec`,
    /// bottom-up over the call-graph condensation, processing the
    /// independent SCCs of each level in parallel on scoped threads.
    ///
    /// With `persist`, each function is first looked up in the store
    /// under its transitive-cone × property key; hits (validated against
    /// the function's value count) are reused, misses computed and
    /// stored. Results are a pure function of `(module, segs, spec)` —
    /// identical for any thread count and any cache state.
    pub fn build(
        module: &Module,
        segs: &ModuleSeg,
        spec: &Spec,
        threads: usize,
        persist: Option<(&mut CacheStore, &[u128])>,
    ) -> Self {
        let cg = CallGraph::new(module);
        Self::build_with_graph(module, segs, spec, threads, persist, &cg)
    }

    /// [`ModuleSummaries::build`] with a caller-supplied call graph —
    /// callers answering several properties over one artefact build the
    /// condensation once and amortise it across specs.
    pub fn build_with_graph(
        module: &Module,
        segs: &ModuleSeg,
        spec: &Spec,
        threads: usize,
        mut persist: Option<(&mut CacheStore, &[u128])>,
        cg: &CallGraph,
    ) -> Self {
        let n = module.funcs.len();
        let sum_fp = summary_fingerprint(spec);
        let mut funcs: Vec<Option<FuncSummary>> = vec![None; n];
        let mut reused = 0u64;
        if let Some((store, keys)) = persist.as_mut() {
            for (fid, f) in module.iter_funcs() {
                let Some(&fk) = keys.get(fid.0 as usize) else {
                    continue;
                };
                let loaded = store.load_with(STAGE, summary_key(fk, sum_fp), |bytes| {
                    crate::cache_io::decode_func_summary(bytes).ok()
                });
                if let Some(s) = loaded {
                    if s.len() == f.values.len() {
                        funcs[fid.0 as usize] = Some(s);
                        reused += 1;
                    }
                }
            }
        }
        let levels = cg.scc_levels();
        let mut built = 0u64;
        let mut composed = 0u64;
        let mut fresh: Vec<FuncId> = Vec::new();
        for level in &levels {
            // An SCC's members form one fixpoint: if any member is
            // missing, recompute the whole component (dropping partial
            // loads from the reuse count).
            let mut pending: Vec<&[FuncId]> = Vec::new();
            for &scc in level {
                let members = cg.sccs[scc].as_slice();
                if members.iter().any(|f| funcs[f.0 as usize].is_none()) {
                    for &f in members {
                        if funcs[f.0 as usize].take().is_some() {
                            reused -= 1;
                        }
                    }
                    pending.push(members);
                }
            }
            if pending.is_empty() {
                continue;
            }
            // Scoped threads cost more than a small level's fixpoints
            // (one component solves in microseconds): only fan out when
            // the level has enough independent SCCs to keep every spawn
            // busy. The cut-off cannot change output — results are
            // merged in pending order either way.
            let results: Vec<(FuncId, FuncSummary, u64)> =
                if threads <= 1 || pending.len() < 64 * threads {
                    pending
                        .iter()
                        .flat_map(|m| compute_scc(module, segs, spec, m, &funcs))
                        .collect()
                } else {
                    let chunk = pending.len().div_ceil(threads);
                    let funcs_ref = &funcs;
                    std::thread::scope(|sc| {
                        let handles: Vec<_> = pending
                            .chunks(chunk)
                            .map(|ch| {
                                sc.spawn(move || {
                                    ch.iter()
                                        .flat_map(|m| compute_scc(module, segs, spec, m, funcs_ref))
                                        .collect::<Vec<_>>()
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .flat_map(|h| h.join().expect("summary worker panicked"))
                            .collect()
                    })
                };
            for (fid, s, c) in results {
                built += 1;
                composed += c;
                fresh.push(fid);
                funcs[fid.0 as usize] = Some(s);
            }
        }
        if let Some((store, keys)) = persist.as_mut() {
            for &fid in &fresh {
                let Some(&fk) = keys.get(fid.0 as usize) else {
                    continue;
                };
                let s = funcs[fid.0 as usize].as_ref().expect("just built");
                store.store(
                    STAGE,
                    summary_key(fk, sum_fp),
                    &crate::cache_io::encode_func_summary(s),
                );
            }
        }
        ModuleSummaries {
            funcs: funcs
                .into_iter()
                .map(|s| s.expect("every function summarised"))
                .collect(),
            built,
            reused,
            composed,
        }
    }

    /// One function's summary.
    pub fn func(&self, f: FuncId) -> &FuncSummary {
        &self.funcs[f.0 as usize]
    }

    /// Number of functions summarised.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// `true` for an empty module.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// The whole-program gate: `true` when the source's upward closure
    /// over interface edges may reach a sink — i.e. the demand-driven
    /// search *could* produce a candidate, so it must run. `false` is a
    /// proof that the search would find nothing: the closure follows a
    /// superset of the search's transitions (local SEG edges, call-site
    /// compositions, unmatched return ascents, parameter ascents, global
    /// channels) with none of its depth, budget, or ordering limits.
    ///
    /// The source's own frame is walked locally (not through the
    /// per-value bits) so the search's source-statement skip — a sink at
    /// exactly the source site never fires — applies: without it, every
    /// `free`-argument source would gate in through its own `free`.
    /// Frames reached upward use the conservative summary bits, which
    /// fold all sink sites together (including the source's own on a
    /// re-entry) — over-approximate, never under.
    pub fn source_fruitful(
        &self,
        module: &Module,
        segs: &ModuleSeg,
        spec: &Spec,
        source_func: FuncId,
        source: crate::spec::SourceSite,
    ) -> bool {
        let f = module.func(source_func);
        let seg = segs.seg(source_func);
        let n = f.values.len();
        // Sink sites and global-store values of the source frame,
        // re-derived so the source-site skip can be applied per site.
        let mut sink_sites: HashMap<ValueId, Vec<pinpoint_ir::InstId>> = HashMap::new();
        for s in spec::spec_sinks(spec, f) {
            sink_sites.entry(s.value).or_default().push(s.site);
        }
        let mut gvals: std::collections::HashSet<ValueId> = std::collections::HashSet::new();
        for entries in segs.global_stores.values() {
            for &(gf, v, _) in entries {
                if gf == source_func {
                    gvals.insert(v);
                }
            }
        }
        // Interface pairs escaping the source frame, closed over the
        // summary bits below.
        let mut wl: Vec<(FuncId, ValueId)> = Vec::new();
        let push_ascents = |k: Option<usize>, j: Option<usize>, wl: &mut Vec<(FuncId, ValueId)>| {
            let Some(callers) = segs.callers.get(&source_func) else {
                return;
            };
            for &(caller, site) in callers {
                if caller == source_func {
                    continue; // direct recursion: summary-free (§4.2)
                }
                let Some((_, args, dsts)) = segs.seg(caller).call_sites.get(&site) else {
                    continue;
                };
                if let Some(k) = k {
                    if let Some(&recv) = dsts.get(k) {
                        wl.push((caller, recv));
                    }
                }
                if let Some(j) = j {
                    if let Some(&actual) = args.get(j) {
                        wl.push((caller, actual));
                    }
                }
            }
        };
        // Local forward walk of the source frame.
        let mut local_seen: std::collections::HashSet<ValueId> = std::collections::HashSet::new();
        let mut local = vec![source.value];
        while let Some(v) = local.pop() {
            if !local_seen.insert(v) {
                continue;
            }
            if v.0 as usize >= n {
                return true; // out-of-range value: conservatively fruitful
            }
            if sink_sites
                .get(&v)
                .is_some_and(|sites| sites.iter().any(|&site| site != source.site))
            {
                return true;
            }
            if gvals.contains(&v) {
                return true;
            }
            if let Some(uses) = seg.arg_uses.get(&v) {
                for au in uses {
                    let Some(gid) = module.func_by_name(&au.callee) else {
                        continue; // the search cannot descend into it either
                    };
                    if gid == source_func {
                        continue; // direct recursion: summary-free (§4.2)
                    }
                    let Some(&formal) = module.func(gid).params.get(au.index) else {
                        continue;
                    };
                    let Some(cs) = self.funcs.get(gid.0 as usize) else {
                        return true;
                    };
                    let fi = formal.0 as usize;
                    let Some(&cf) = cs.flags.get(fi) else {
                        return true;
                    };
                    if cf & (SINK | GLOBAL | OVERFLOW) != 0 {
                        return true;
                    }
                    let crets = cs.rets.get(fi).copied().unwrap_or(0);
                    if crets != 0 {
                        if let Some((_, _, dsts)) = seg.call_sites.get(&au.site) {
                            for k in iter_bits(crets) {
                                if let Some(&dst) = dsts.get(k) {
                                    local.push(dst);
                                }
                            }
                        }
                    }
                }
            }
            if let Some(&k) = seg.ret_index.get(&v) {
                push_ascents(Some(k), None, &mut wl);
            }
            if let Some(j) = f.params.iter().position(|&p| p == v) {
                push_ascents(None, Some(j), &mut wl);
            }
            for e in seg.succs(v) {
                if e.kind == EdgeKind::Transform && !spec.traverses_transforms {
                    continue;
                }
                local.push(e.dst);
            }
        }
        // Upward closure over the per-value summary bits.
        let mut seen: std::collections::HashSet<(FuncId, ValueId)> =
            std::collections::HashSet::new();
        while let Some((fid, v)) = wl.pop() {
            if !seen.insert((fid, v)) {
                continue;
            }
            let Some(fs) = self.funcs.get(fid.0 as usize) else {
                return true; // unknown function: conservatively fruitful
            };
            let i = v.0 as usize;
            let Some(&flags) = fs.flags.get(i) else {
                return true; // out-of-range value: conservatively fruitful
            };
            if flags & (SINK | GLOBAL | OVERFLOW) != 0 {
                return true;
            }
            let rets = fs.rets[i];
            let params = fs.params[i];
            if rets == 0 && params == 0 {
                continue;
            }
            let Some(callers) = segs.callers.get(&fid) else {
                continue;
            };
            for &(caller, site) in callers {
                if caller == fid {
                    continue; // direct recursion: summary-free (§4.2)
                }
                let Some((_, args, dsts)) = segs.seg(caller).call_sites.get(&site) else {
                    continue;
                };
                for k in iter_bits(rets) {
                    if let Some(&recv) = dsts.get(k) {
                        wl.push((caller, recv));
                    }
                }
                for j in iter_bits(params) {
                    if let Some(&actual) = args.get(j) {
                        wl.push((caller, actual));
                    }
                }
            }
        }
        false
    }
}

/// Fixpoint over one SCC's members (singleton SCCs converge in one
/// round; mutual recursion iterates until the monotone bits stabilise).
/// Returns each member's summary and the interface-edge compositions its
/// final computation applied.
fn compute_scc(
    module: &Module,
    segs: &ModuleSeg,
    spec: &Spec,
    members: &[FuncId],
    done: &[Option<FuncSummary>],
) -> Vec<(FuncId, FuncSummary, u64)> {
    let mut local: HashMap<FuncId, (FuncSummary, u64)> = HashMap::new();
    loop {
        let mut changed = false;
        for &fid in members {
            let (s, c) = compute_one(module, segs, spec, fid, &local, done);
            match local.get(&fid) {
                Some((prev, _)) if *prev == s => {}
                _ => changed = true,
            }
            local.insert(fid, (s, c));
        }
        if !changed {
            break;
        }
    }
    members
        .iter()
        .map(|&fid| {
            let (s, c) = local.remove(&fid).expect("member computed");
            (fid, s, c)
        })
        .collect()
}

/// One function's summary, given its callees' summaries: seed the
/// interface values (sinks, global stores, returns, formals) plus the
/// call-site compositions, then propagate backward over the function's
/// SEG to a local fixpoint.
fn compute_one(
    module: &Module,
    segs: &ModuleSeg,
    spec: &Spec,
    fid: FuncId,
    local: &HashMap<FuncId, (FuncSummary, u64)>,
    done: &[Option<FuncSummary>],
) -> (FuncSummary, u64) {
    let lookup = |g: FuncId| -> Option<&FuncSummary> {
        local
            .get(&g)
            .map(|(s, _)| s)
            .or_else(|| done.get(g.0 as usize).and_then(Option::as_ref))
    };
    let f = module.func(fid);
    let seg = segs.seg(fid);
    let n = f.values.len();
    let mut flags = vec![0u8; n];
    let mut rets = vec![0u64; n];
    let mut params = vec![0u64; n];
    let mut composed = 0u64;
    let set = |slot: &mut Vec<u64>, v: ValueId, idx: usize, flags: &mut Vec<u8>| {
        let i = v.0 as usize;
        if i >= n {
            return;
        }
        if idx < 63 {
            slot[i] |= 1u64 << idx;
        } else {
            flags[i] |= OVERFLOW;
        }
    };
    // Interface seeds.
    for s in spec::spec_sinks(spec, f) {
        if let Some(fl) = flags.get_mut(s.value.0 as usize) {
            *fl |= SINK;
        }
    }
    for entries in segs.global_stores.values() {
        for &(gf, v, _) in entries {
            if gf == fid {
                if let Some(fl) = flags.get_mut(v.0 as usize) {
                    *fl |= GLOBAL;
                }
            }
        }
    }
    for (&v, &k) in &seg.ret_index {
        set(&mut rets, v, k, &mut flags);
    }
    for (j, &p) in f.params.iter().enumerate() {
        set(&mut params, p, j, &mut flags);
    }
    // Call-site compositions: the actual argument inherits the callee
    // formal's sink/global reach (VF4, and VF2 via deeper returns), and
    // each callee return index the formal reaches becomes a pseudo-edge
    // to the call's receiver (VF1), continued locally.
    let mut extra_preds: HashMap<ValueId, Vec<ValueId>> = HashMap::new();
    for (&v, uses) in &seg.arg_uses {
        if v.0 as usize >= n {
            continue;
        }
        for au in uses {
            let Some(gid) = module.func_by_name(&au.callee) else {
                continue; // the search cannot descend into it either
            };
            if gid == fid {
                continue; // direct recursion: summary-free (§4.2)
            }
            let Some(&formal) = module.func(gid).params.get(au.index) else {
                continue;
            };
            let Some(cs) = lookup(gid) else {
                continue; // same-SCC member before its first round
            };
            let fi = formal.0 as usize;
            let inherited = cs.flags.get(fi).copied().unwrap_or(0) & (SINK | GLOBAL | OVERFLOW);
            if inherited != 0 {
                flags[v.0 as usize] |= inherited;
                composed += 1;
            }
            let crets = cs.rets.get(fi).copied().unwrap_or(0);
            if crets != 0 {
                if let Some((_, _, dsts)) = seg.call_sites.get(&au.site) {
                    for k in iter_bits(crets) {
                        if let Some(&dst) = dsts.get(k) {
                            extra_preds.entry(dst).or_default().push(v);
                            composed += 1;
                        }
                    }
                }
            }
        }
    }
    // Backward propagation to a local fixpoint: a value inherits
    // everything its successors (local SEG edges and composition
    // pseudo-edges) reach.
    let mut wl: Vec<ValueId> = (0..n)
        .filter(|&i| flags[i] != 0 || rets[i] != 0 || params[i] != 0)
        .map(|i| ValueId(i as u32))
        .collect();
    while let Some(w) = wl.pop() {
        let wi = w.0 as usize;
        let (wf, wr, wp) = (flags[wi], rets[wi], params[wi]);
        for e in seg.preds(w) {
            if e.kind == EdgeKind::Transform && !spec.traverses_transforms {
                continue;
            }
            let pi = e.src.0 as usize;
            if pi >= n {
                continue;
            }
            let (nf, nr, np) = (flags[pi] | wf, rets[pi] | wr, params[pi] | wp);
            if nf != flags[pi] || nr != rets[pi] || np != params[pi] {
                flags[pi] = nf;
                rets[pi] = nr;
                params[pi] = np;
                wl.push(e.src);
            }
        }
        if let Some(srcs) = extra_preds.get(&w) {
            for &p in srcs {
                let pi = p.0 as usize;
                let (nf, nr, np) = (flags[pi] | wf, rets[pi] | wr, params[pi] | wp);
                if nf != flags[pi] || nr != rets[pi] || np != params[pi] {
                    flags[pi] = nf;
                    rets[pi] = nr;
                    params[pi] = np;
                    wl.push(p);
                }
            }
        }
    }
    (
        FuncSummary {
            flags,
            rets,
            params,
        },
        composed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CheckerKind;

    fn artefact(src: &str) -> (Module, ModuleSeg) {
        let mut module = pinpoint_ir::compile(src).unwrap();
        let mut analysis = pinpoint_pta::analyze_module(&mut module);
        let mut arena = std::mem::take(&mut analysis.arena);
        let mut symbols = std::mem::take(&mut analysis.symbols);
        let segs = ModuleSeg::build(&module, &mut arena, &mut symbols, &analysis.pta);
        (module, segs)
    }

    const WRAPPED_UAF: &str = "fn sinker(p: int*) { let x: int = *p; print(x); return; }
         fn wrapper(p: int*) { sinker(p); return; }
         fn idfn(p: int*) -> int* { return p; }
         fn harmless(v: int) { print(v); return; }
         fn main() {
             let p: int* = malloc();
             free(p);
             wrapper(p);
             let q: int* = idfn(p);
             let y: int = *q;
             print(y);
             let c: int = 3;
             harmless(c);
             return;
         }";

    #[test]
    fn interface_bits_compose_through_wrappers() {
        let (m, segs) = artefact(WRAPPED_UAF);
        let spec = CheckerKind::UseAfterFree.spec();
        let sums = ModuleSummaries::build(&m, &segs, &spec, 1, None);
        let sinker = m.func_by_name("sinker").unwrap();
        let wrapper = m.func_by_name("wrapper").unwrap();
        let idfn = m.func_by_name("idfn").unwrap();
        let harmless = m.func_by_name("harmless").unwrap();
        // VF4 at the dereferencing callee, inherited by the wrapper (VF4
        // composed through one level).
        let p_sinker = m.func(sinker).params[0];
        assert_ne!(sums.func(sinker).flags[p_sinker.0 as usize] & SINK, 0);
        let p_wrapper = m.func(wrapper).params[0];
        assert_ne!(sums.func(wrapper).flags[p_wrapper.0 as usize] & SINK, 0);
        // VF1: identity's parameter reaches return index 0.
        let p_id = m.func(idfn).params[0];
        assert_eq!(sums.func(idfn).rets[p_id.0 as usize] & 1, 1);
        // The taint-free helper has no interface reach at all.
        let p_h = m.func(harmless).params[0];
        assert_eq!(sums.func(harmless).flags[p_h.0 as usize], 0);
        assert_eq!(sums.func(harmless).rets[p_h.0 as usize], 0);
        assert!(sums.built > 0 && sums.reused == 0);
        assert!(sums.composed > 0, "wrapper/idfn call sites compose");
    }

    #[test]
    fn summaries_are_thread_count_invariant() {
        let (m, segs) = artefact(WRAPPED_UAF);
        let spec = CheckerKind::UseAfterFree.spec();
        let one = ModuleSummaries::build(&m, &segs, &spec, 1, None);
        let four = ModuleSummaries::build(&m, &segs, &spec, 4, None);
        assert_eq!(one.funcs, four.funcs);
        assert_eq!(one.composed, four.composed);
    }

    #[test]
    fn gate_admits_fruitful_and_rejects_fruitless_sources() {
        let src = "fn deref(p: int*) { let x: int = *p; print(x); return; }
             fn main() {
                 let a: int* = malloc();
                 free(a);
                 deref(a);
                 let b: int* = malloc();
                 free(b);
                 return;
             }";
        let (m, segs) = artefact(src);
        let spec = CheckerKind::UseAfterFree.spec();
        let sums = ModuleSummaries::build(&m, &segs, &spec, 1, None);
        let main = m.func_by_name("main").unwrap();
        let sources = spec::spec_sources(&spec, m.func(main));
        assert_eq!(sources.len(), 2, "two freed pointers");
        let verdicts: Vec<bool> = sources
            .iter()
            .map(|&s| sums.source_fruitful(&m, &segs, &spec, main, s))
            .collect();
        assert_eq!(
            verdicts,
            vec![true, false],
            "a is dereferenced after free, b's only sink is its own free site"
        );
    }

    #[test]
    fn gate_follows_return_composition_upward() {
        // The source value only reaches a sink through VF1 composition:
        // free(p) in a callee, dereference of the identity's return in
        // the caller.
        let src = "fn idfn(p: int*) -> int* { return p; }
             fn freer(p: int*) { free(p); return; }
             fn main() {
                 let a: int* = malloc();
                 freer(a);
                 let b: int* = idfn(a);
                 let x: int = *b;
                 print(x);
                 return;
             }";
        let (m, segs) = artefact(src);
        let spec = CheckerKind::UseAfterFree.spec();
        let sums = ModuleSummaries::build(&m, &segs, &spec, 1, None);
        // The source is free's argument — a formal parameter of `freer`,
        // whose only path to the dereference is a VF3 parameter ascent
        // into main followed by local flow through idfn's VF1 edge.
        let freer = m.func_by_name("freer").unwrap();
        let sources = spec::spec_sources(&spec, m.func(freer));
        assert_eq!(sources.len(), 1);
        assert!(sums.source_fruitful(&m, &segs, &spec, freer, sources[0]));
    }

    #[test]
    fn global_escape_is_fruitful() {
        let src = "global cell: int*;
             fn stash(p: int*) { *cell = p; return; }
             fn main() { let p: int* = malloc(); free(p); stash(p); return; }";
        let (m, segs) = artefact(src);
        let spec = CheckerKind::UseAfterFree.spec();
        let sums = ModuleSummaries::build(&m, &segs, &spec, 1, None);
        let main = m.func_by_name("main").unwrap();
        let sources = spec::spec_sources(&spec, m.func(main));
        assert_eq!(sources.len(), 1);
        assert!(
            sums.source_fruitful(&m, &segs, &spec, main, sources[0]),
            "the freed pointer escapes through a global store — never gate it"
        );
    }

    #[test]
    fn engine_names_roundtrip() {
        for e in [Engine::Demand, Engine::Summary] {
            assert_eq!(Engine::parse(e.name()), Some(e));
        }
        assert_eq!(Engine::parse("warp"), None);
    }
}
