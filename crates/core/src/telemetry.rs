//! Live telemetry for the serving layer.
//!
//! [`ServerTelemetry`] bundles the observability surfaces a long-running
//! [`Server`](crate::Server) exposes while it is serving:
//!
//! * a [`FlightRecorder`] of structured scheduling events (accepted /
//!   started / completed / shed, session lifecycle, worker panics,
//!   slow queries);
//! * rolling-window latency histograms, keyed per operation kind and per
//!   session ([`RollingSet`]), for "what are latencies like right now";
//! * cumulative per-op latency histograms in a [`MetricsRegistry`],
//!   which the Prometheus exposition scrapes.
//!
//! Everything here is designed to be read *without* the worker pool:
//! the recorder and the rolling state sit behind their own short-hold
//! mutexes, so `status`/`metrics` requests are answered on the
//! transport thread even when every worker is busy and the queue is
//! saturated — an overloaded server stays inspectable.
//!
//! The **slow-query log** threads through here too: a request whose
//! wall-clock duration reaches [`TelemetryConfig::slow_query_ns`] has
//! its per-query solver attribution captured as the detail payload of a
//! [`FlightEventKind::SlowQuery`] event, so "why was that slow" is
//! answerable after the fact from the flight tail.

use pinpoint_obs::json::Obj;
use pinpoint_obs::{prometheus_text, FlightRecorder, FlightSample, MetricsRegistry, RollingSet};
use std::sync::Mutex;

/// Telemetry construction parameters.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Flight-recorder capacity in events (0 disables the recorder).
    pub flight_capacity: usize,
    /// Wall-clock threshold at which a request is logged as a slow
    /// query, in nanoseconds. `u64::MAX` disables the slow-query log;
    /// 0 logs every request (useful to force coverage in smoke tests).
    pub slow_query_ns: u64,
    /// Width of one rolling-window slot in nanoseconds.
    pub rolling_slot_ns: u64,
    /// Number of rolling-window slots (window = slots × slot width).
    pub rolling_slots: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            flight_capacity: 256,
            slow_query_ns: u64::MAX,
            rolling_slot_ns: 1_000_000_000, // 1 s slots…
            rolling_slots: 10,              // …over a 10 s window
        }
    }
}

#[derive(Debug)]
struct RollingState {
    per_op: RollingSet,
    per_session: RollingSet,
    /// Cumulative latency histograms (`server.latency_ns`,
    /// `server.latency_ns.<op>`) for the Prometheus exposition.
    latency: MetricsRegistry,
}

/// The serving layer's live-telemetry hub (see the [module docs](self)).
#[derive(Debug)]
pub struct ServerTelemetry {
    flight: FlightRecorder,
    slow_query_ns: u64,
    rolling: Mutex<RollingState>,
}

impl ServerTelemetry {
    /// Builds the hub from its configuration.
    pub fn new(config: &TelemetryConfig) -> Self {
        ServerTelemetry {
            flight: FlightRecorder::new(config.flight_capacity),
            slow_query_ns: config.slow_query_ns,
            rolling: Mutex::new(RollingState {
                per_op: RollingSet::new(config.rolling_slot_ns, config.rolling_slots),
                per_session: RollingSet::new(config.rolling_slot_ns, config.rolling_slots),
                latency: MetricsRegistry::new(),
            }),
        }
    }

    /// The flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The slow-query threshold in nanoseconds.
    pub fn slow_query_ns(&self) -> u64 {
        self.slow_query_ns
    }

    /// Nanoseconds since the telemetry hub (and therefore the server)
    /// started — the clock the flight recorder and rolling windows use.
    pub fn now_ns(&self) -> u64 {
        self.flight.now_ns()
    }

    /// Records one flight event.
    pub fn record(&self, sample: FlightSample) {
        self.flight.record(sample);
    }

    /// Records one completed request's latency into the rolling windows
    /// (per-op and per-session) and the cumulative histograms.
    pub fn observe_latency(&self, op: &str, session: &str, duration_ns: u64) {
        let now = self.now_ns();
        let mut r = self.lock();
        r.per_op.record(op, now, duration_ns);
        r.per_session.record(session, now, duration_ns);
        r.latency.hist_record("server.latency_ns", duration_ns);
        r.latency
            .hist_record(&format!("server.latency_ns.{op}"), duration_ns);
    }

    /// The `"rolling"` JSON object:
    /// `{"window_ns":N,"per_op":{...},"per_session":{...}}`, each entry
    /// a `{count,sum,p50,p95,p99,max}` summary over the current window.
    pub fn rolling_json(&self, canonical: bool) -> String {
        let now = self.now_ns();
        let r = self.lock();
        let mut o = Obj::new();
        o.u64(
            "window_ns",
            if canonical { 0 } else { r.per_op.window_ns() },
        )
        .raw("per_op", &r.per_op.summary_json(now, canonical))
        .raw("per_session", &r.per_session.summary_json(now, canonical));
        o.finish()
    }

    /// Folds the cumulative latency histograms into `m` (the registry a
    /// Prometheus scrape renders).
    pub fn fold_latency_into(&self, m: &mut MetricsRegistry) {
        m.merge(&self.lock().latency);
    }

    /// The `"flight"` JSON object: ring totals plus the newest `tail`
    /// events, oldest first. Canonical zeroes per-event times (see
    /// [`FlightRecorder::tail_json`]).
    pub fn flight_json(&self, tail: usize, canonical: bool) -> String {
        let mut o = Obj::new();
        o.u64("capacity", self.flight.capacity() as u64)
            .u64("recorded", self.flight.recorded())
            .u64("dropped", self.flight.dropped())
            .raw("tail", &self.flight.tail_json(tail, canonical));
        o.finish()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RollingState> {
        self.rolling
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Renders `m` (server counters/gauges plus folded latency histograms)
/// as Prometheus text exposition. Thin re-export point so transports
/// need not depend on `pinpoint-obs` directly.
pub fn render_prometheus(m: &MetricsRegistry) -> String {
    prometheus_text(m)
}

// Re-exported for transports that build flight samples themselves.
pub use pinpoint_obs::flight::FlightEvent;

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_obs::FlightEventKind;

    #[test]
    fn latency_lands_in_rolling_and_cumulative() {
        let t = ServerTelemetry::new(&TelemetryConfig::default());
        t.observe_latency("check", "alice", 1_000);
        t.observe_latency("check", "alice", 2_000);
        t.observe_latency("open", "bob", 8_000);
        let json = t.rolling_json(false);
        assert!(
            json.contains("\"per_op\":{\"check\":{\"count\":2"),
            "{json}"
        );
        assert!(json.contains("\"open\":{\"count\":1"), "{json}");
        assert!(
            json.contains("\"per_session\":{\"alice\":{\"count\":2"),
            "{json}"
        );
        let mut m = MetricsRegistry::new();
        t.fold_latency_into(&mut m);
        assert_eq!(m.histogram("server.latency_ns").unwrap().count(), 3);
        assert_eq!(m.histogram("server.latency_ns.open").unwrap().count(), 1);
    }

    #[test]
    fn flight_json_wraps_ring_totals() {
        let t = ServerTelemetry::new(&TelemetryConfig {
            flight_capacity: 2,
            ..TelemetryConfig::default()
        });
        for _ in 0..3 {
            t.record(FlightSample::of(FlightEventKind::Accepted));
        }
        let json = t.flight_json(8, true);
        assert!(json.contains("\"capacity\":2"), "{json}");
        assert!(json.contains("\"recorded\":3"), "{json}");
        assert!(json.contains("\"dropped\":1"), "{json}");
        assert!(json.contains("\"kind\":\"accepted\""), "{json}");
    }
}
